//! # stkde — Parallel Space-Time Kernel Density Estimation
//!
//! A Rust implementation of *Parallel Space-Time Kernel Density
//! Estimation* (Saule, Panchananam, Hohl, Tang, Delmelle — ICPP 2017,
//! arXiv:1705.09366): the point-based STKDE algorithms (`PB`, `PB-DISK`,
//! `PB-BAR`, `PB-SYM`), the voxel-based baselines (`VB`, `VB-DEC`), and
//! the four parallelization strategies (`PB-SYM-DR`, `-DD`, `-PD`,
//! `-PD-SCHED`, `-PD-REP`), together with the substrates they need:
//! dense voxel grids, subdomain decompositions, stencil-graph coloring,
//! critical-path analysis, list scheduling, and a dependency-driven task
//! executor.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`stkde_grid`] | domain geometry, [`Grid3`](stkde_grid::Grid3), decompositions, shared disjoint writes |
//! | [`stkde_kernels`] | separable space-time kernels (Epanechnikov default) |
//! | [`stkde_data`] | point sets, synthetic datasets, the Table 2 instance catalog, CSV I/O, binning |
//! | [`stkde_sched`] | coloring, task DAGs, critical paths, list scheduling, executor |
//! | [`stkde_comm`] | SPMD message passing — in-process and multi-process backends, chunked wire codec, traffic accounting (distributed extension) |
//! | [`stkde_core`] | the twelve STKDE algorithms, the [`Stkde`](stkde_core::Stkde) engine, and the sparse / incremental / distributed extensions |
//!
//! ## Quick start
//!
//! ```
//! use stkde::prelude::*;
//! use stkde::ResultExt;
//!
//! // A 64×64×32-voxel space-time cube with a synthetic disease outbreak.
//! let domain = Domain::from_dims(GridDims::new(64, 64, 32));
//! let points = DatasetKind::Dengue.generate(2_000, domain.extent(), 42);
//!
//! let result = Stkde::new(domain, Bandwidth::new(6.0, 4.0))
//!     .algorithm(Algorithm::PbSymPdSched { decomp: Decomp::cubic(4) })
//!     .threads(2)
//!     .compute::<f32>(&points)
//!     .expect("computation succeeds");
//!
//! let stats = stkde::grid_stats(result.grid());
//! assert!(stats.max > 0.0);
//! println!("peak density {:.3e}, {}", stats.max, result.timings);
//! ```

pub mod rank;

pub use stkde_comm as comm;
pub use stkde_core as core;
pub use stkde_data as data;
pub use stkde_grid as grid;
pub use stkde_kernels as kernels;
pub use stkde_sched as sched;

pub use stkde_core::{Algorithm, PhaseTimings, Problem, Stkde, StkdeError};
pub use stkde_core::{IncrementalStkde, SlidingWindowStkde, SparseResult};
pub use stkde_data::{DatasetKind, Instance, Point, PointSet};
pub use stkde_grid::{Bandwidth, Decomp, Domain, Extent, Grid3, GridDims, Resolution};
pub use stkde_grid::{SharedSparseGrid, SparseGrid3};

/// Summary statistics of a density grid (re-export of
/// [`stkde_grid::stats::stats`]).
pub fn grid_stats<S: stkde_grid::Scalar>(grid: &Grid3<S>) -> stkde_grid::stats::GridStats {
    stkde_grid::stats::stats(grid)
}

/// Everything needed for typical use.
pub mod prelude {
    pub use stkde_core::{Algorithm, Stkde, StkdeError};
    pub use stkde_data::{DatasetKind, Point, PointSet};
    pub use stkde_grid::{Bandwidth, Decomp, Domain, Extent, Grid3, GridDims, Resolution};
    pub use stkde_kernels::{Epanechnikov, SpaceTimeKernel};
}

/// Convenience accessors on results.
pub trait ResultExt<S> {
    /// The computed density grid.
    fn grid(&self) -> &Grid3<S>;
}

impl<S> ResultExt<S> for stkde_core::StkdeResult<S> {
    fn grid(&self) -> &Grid3<S> {
        &self.grid
    }
}
