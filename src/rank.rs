//! Rank-process entry points for the multi-process distributed backend.
//!
//! The `stkde-rank` binary is what a
//! [`ProcessWorld`](stkde_comm::process::ProcessWorld) spawns, once per
//! rank. It carries no CLI surface of its own: everything arrives
//! through the environment — the transport variables documented in
//! [`stkde_comm::process`] plus [`PROGRAM_ENV`] naming one of the
//! registered *rank programs* below. Parent-side helpers for launching
//! distributed STKDE runs against that binary live here too, so tests
//! and tools share one driver.
//!
//! # Rank programs
//!
//! | name | behaviour |
//! |---|---|
//! | `distmem` | the real payload: one rank of a [`DistSpec`] STKDE run |
//! | `ring` | smoke test: pass rank ids around a ring |
//! | `exit_early` | rank [`FAIL_RANK_ENV`] dies post-mesh; others must error |
//! | `stall` | rank [`FAIL_RANK_ENV`] sleeps forever; others must time out |

#![cfg(unix)]

use std::path::Path;
use std::time::Duration;
use stkde_comm::process::child_main;
use stkde_comm::{CommError, ProcessWorld, RankBoot, WorldComm};
use stkde_core::distmem::spec::DistSpec;
use stkde_core::distmem::{DistMsg, DistResult};
use stkde_grid::Grid3;

/// Env var selecting the rank program to run.
pub const PROGRAM_ENV: &str = "STKDE_RANK_PROGRAM";

/// Env var naming the rank that misbehaves in the failure-injection
/// programs (`exit_early`, `stall`).
pub const FAIL_RANK_ENV: &str = "STKDE_RANK_FAIL_RANK";

/// Env var naming a file path; when set, [`run_distmem_process`] writes
/// the per-rank comm statistics of the run there in Prometheus text
/// format (the same `stkde_comm_*` families `/metrics` serves). CI's
/// distmem job sets this and uploads the dump as a job artifact.
pub const METRICS_DUMP_ENV: &str = "STKDE_METRICS_DUMP";

/// Rank-process entry: if this process was spawned as a rank, run the
/// requested program and return its exit code; otherwise `None` (the
/// caller is a normal invocation).
pub fn dispatch() -> Option<i32> {
    let boot = match RankBoot::from_env() {
        Ok(Some(boot)) => boot,
        Ok(None) => return None,
        Err(e) => {
            eprintln!("stkde-rank: bad rank environment: {e}");
            return Some(1);
        }
    };
    let program = match std::env::var(PROGRAM_ENV) {
        Ok(p) => p,
        Err(_) => {
            eprintln!("stkde-rank: {PROGRAM_ENV} not set");
            return Some(1);
        }
    };
    let code = match program.as_str() {
        "distmem" => child_main::<DistMsg<f64>, _>(&boot, |comm| {
            let spec = DistSpec::from_env().map_err(CommError::Protocol)?;
            spec.run_rank(comm)
        }),
        "ring" => child_main::<u64, _>(&boot, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            comm.send(right, 0, comm.rank() as u64)?;
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let got = comm.recv(left, 0)?;
            Ok(got.to_le_bytes().to_vec())
        }),
        "exit_early" => {
            if boot.rank == fail_rank() {
                // Connect so the mesh completes, then vanish without a
                // word — the worst-behaved peer short of corruption.
                let comm = boot.connect::<u64>().expect("mesh connects");
                drop(comm);
                std::process::exit(7);
            }
            child_main::<u64, _>(&boot, |comm| {
                let v = comm.recv(fail_rank(), 0)?; // never arrives
                Ok(v.to_le_bytes().to_vec())
            })
        }
        "stall" => {
            if boot.rank == fail_rank() {
                let _comm = boot.connect::<u64>().expect("mesh connects");
                std::thread::sleep(Duration::from_secs(3600));
                std::process::exit(0);
            }
            child_main::<u64, _>(&boot, |comm| {
                let v = comm.recv(fail_rank(), 0)?; // peer is asleep
                Ok(v.to_le_bytes().to_vec())
            })
        }
        other => {
            eprintln!("stkde-rank: unknown rank program {other:?}");
            1
        }
    };
    Some(code)
}

fn fail_rank() -> usize {
    std::env::var(FAIL_RANK_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Parent-side driver: run a [`DistSpec`] on the multi-process backend
/// (spawning `exe`, which must be the `stkde-rank` binary or equivalent)
/// and assemble the same [`DistResult`] the in-process
/// [`distmem::run`](stkde_core::distmem::run) returns.
///
/// # Errors
/// Any launch or communication failure, or a malformed rank report.
pub fn run_distmem_process(
    exe: &Path,
    spec: &DistSpec,
    ranks: usize,
    configure: impl FnOnce(ProcessWorld) -> ProcessWorld,
) -> Result<DistResult<f64>, CommError> {
    let world = configure(
        ProcessWorld::new(ranks, exe)
            .env(PROGRAM_ENV, "distmem")
            .env(stkde_core::distmem::spec::SPEC_ENV, spec.to_env_value()),
    );
    let out = world.launch()?;
    let mut grid: Option<Grid3<f64>> = None;
    let mut compute_secs = Vec::with_capacity(ranks);
    let mut processed = Vec::with_capacity(ranks);
    for (rank, bytes) in out.outputs.iter().enumerate() {
        let report = spec
            .decode_report(bytes)
            .map_err(|e| CommError::Protocol(format!("rank {rank} report: {e}")))?;
        if report.grid.is_some() {
            grid = Some(
                spec.grid_from_report(&report)
                    .map_err(CommError::Protocol)?,
            );
        }
        compute_secs.push(report.compute_secs);
        processed.push(report.processed);
    }
    if let Ok(path) = std::env::var(METRICS_DUMP_ENV) {
        if !path.is_empty() {
            if let Err(e) = dump_rank_metrics(Path::new(&path), &out.stats) {
                eprintln!("stkde-rank: cannot write {METRICS_DUMP_ENV}={path}: {e}");
            }
        }
    }
    Ok(DistResult {
        grid: grid.ok_or_else(|| CommError::Protocol("no rank reported a grid".to_string()))?,
        ranks,
        strategy: spec.strategy,
        compute_secs,
        processed,
        stats: out.stats,
    })
}

/// Render the run's per-rank [`RankStats`](stkde_comm::RankStats) as
/// Prometheus text and write them to `path`. A fresh registry is used so
/// the dump holds exactly this run's frames/bytes — not whatever else
/// the process-global registry accumulated.
fn dump_rank_metrics(path: &Path, stats: &[stkde_comm::RankStats]) -> std::io::Result<()> {
    let registry = stkde_obs::Registry::new();
    stkde_comm::record_rank_stats(&registry, stats);
    std::fs::write(path, registry.render())
}
