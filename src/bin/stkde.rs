//! `stkde` — command-line space-time kernel density estimation.
//!
//! ```sh
//! # Generate synthetic events imitating one of the paper's datasets:
//! stkde synth --dataset dengue --n 10000 --out events.csv
//!
//! # Inspect a point file:
//! stkde info --input events.csv
//!
//! # Compute a density cube and export the peak time slice:
//! stkde compute --input events.csv --sres 100 --tres 1 --hs 1000 --ht 7 \
//!               --algorithm pd-sched --threads 8 --out-prefix out/density
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use stkde::prelude::*;
use stkde::ResultExt;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "synth" => cmd_synth(rest),
        "info" => cmd_info(rest),
        "compute" => cmd_compute(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "stkde — space-time kernel density estimation (Saule et al., ICPP 2017)

commands:
  synth    --dataset dengue|pollen|flu|ebird --n N [--seed S]
           [--extent x0,y0,t0,x1,y1,t1] --out FILE.csv
  info     --input FILE.csv
  compute  --input FILE.csv --sres S --tres T --hs H --ht H
           [--algorithm pb-sym|vb|dr|dd|pd|pd-sched|pd-sched-rep|auto]
           [--decomp K] [--threads N] [--adaptive] [--sparse]
           [--out-prefix PATH] [--slices peak|t1,t2,...]
           [--format pgm|csv] [--vtk FILE.vtk]

--sparse uses the block-sparse grid backend (memory and init cost scale
with the touched volume, not the domain — best for sparse instances).
--vtk exports the whole cube as VTK STRUCTURED_POINTS for ParaView.";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{a}`"))?;
        // Boolean flags take no value.
        if key == "adaptive" || key == "sparse" {
            map.insert(key.to_string(), "true".to_string());
            continue;
        }
        let val = it
            .next()
            .ok_or_else(|| format!("missing value for --{key}"))?;
        map.insert(key.to_string(), val.clone());
    }
    Ok(map)
}

fn req<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{key}"))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad {what} `{s}`: {e}"))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let kind = match req(&flags, "dataset")? {
        "dengue" => DatasetKind::Dengue,
        "pollen" => DatasetKind::PollenUs,
        "flu" => DatasetKind::Flu,
        "ebird" => DatasetKind::EBird,
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let n: usize = parse_num(req(&flags, "n")?, "--n")?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "--seed"))
        .transpose()?
        .unwrap_or(42);
    let extent = match flags.get("extent") {
        Some(spec) => {
            let vals: Vec<f64> = spec
                .split(',')
                .map(|v| parse_num(v.trim(), "--extent component"))
                .collect::<Result<_, _>>()?;
            if vals.len() != 6 {
                return Err("--extent needs x0,y0,t0,x1,y1,t1".into());
            }
            Extent::new([vals[0], vals[1], vals[2]], [vals[3], vals[4], vals[5]])
        }
        None => Extent::new([0.0, 0.0, 0.0], [10_000.0, 10_000.0, 365.0]),
    };
    let out = PathBuf::from(req(&flags, "out")?);
    let points = kind.generate(n, extent, seed);
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    stkde::data::csv::save(&points, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} synthetic {kind} events to {}",
        points.len(),
        out.display()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let input = PathBuf::from(req(&flags, "input")?);
    let mut points = stkde::data::csv::load(&input).map_err(|e| e.to_string())?;
    let dropped = points.retain_finite();
    println!("file:    {}", input.display());
    println!(
        "events:  {} ({} non-finite rows dropped)",
        points.len(),
        dropped
    );
    if let Some(b) = points.bounds() {
        println!(
            "extent:  x [{:.3}, {:.3}]  y [{:.3}, {:.3}]  t [{:.3}, {:.3}]",
            b.min[0], b.max[0], b.min[1], b.max[1], b.min[2], b.max[2]
        );
    }
    Ok(())
}

fn cmd_compute(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let input = PathBuf::from(req(&flags, "input")?);
    let mut points = stkde::data::csv::load(&input).map_err(|e| e.to_string())?;
    let dropped = points.retain_finite();
    if dropped > 0 {
        eprintln!("note: dropped {dropped} non-finite rows");
    }
    if points.is_empty() {
        return Err("no events in input".into());
    }

    let sres: f64 = parse_num(req(&flags, "sres")?, "--sres")?;
    let tres: f64 = parse_num(req(&flags, "tres")?, "--tres")?;
    let hs: f64 = parse_num(req(&flags, "hs")?, "--hs")?;
    let ht: f64 = parse_num(req(&flags, "ht")?, "--ht")?;
    let threads: usize = flags
        .get("threads")
        .map(|s| parse_num(s, "--threads"))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let k: usize = flags
        .get("decomp")
        .map(|s| parse_num(s, "--decomp"))
        .transpose()?
        .unwrap_or(16);

    // Domain: event bounding box padded by one bandwidth.
    let b = points.bounds().expect("non-empty");
    let extent = Extent::new(
        [b.min[0] - hs, b.min[1] - hs, b.min[2] - ht],
        [b.max[0] + hs, b.max[1] + hs, b.max[2] + ht],
    );
    let domain = Domain::from_extent(extent, Resolution::new(sres, tres));
    let bw = Bandwidth::new(hs, ht);
    println!(
        "grid {} ({:.1} MiB of f32), n = {}, threads = {threads}",
        domain.dims(),
        domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0),
        points.len()
    );

    let decomp = Decomp::cubic(k);
    let (grid, timings, alg_name): (Grid3<f32>, _, String) = if flags.contains_key("sparse") {
        if flags.contains_key("adaptive") {
            return Err("--sparse and --adaptive cannot be combined".into());
        }
        let r = Stkde::new(domain, bw)
            .threads(threads)
            .compute_sparse::<f32>(&points)
            .map_err(|e| e.to_string())?;
        println!(
                "sparse backend: {} of {} bricks allocated ({:.1}% occupancy, {:.1} MiB vs {:.1} MiB dense)",
                r.grid.allocated_bricks(),
                r.grid.table_len(),
                100.0 * r.occupancy(),
                r.grid.allocated_bytes() as f64 / (1024.0 * 1024.0),
                domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0),
            );
        let name = if threads > 1 {
            "PB-SYM-SPARSE-PAR"
        } else {
            "PB-SYM-SPARSE"
        };
        // Exports below need the dense cube; materialize it.
        (r.grid.to_dense(), r.timings, name.to_string())
    } else if flags.contains_key("adaptive") {
        // Adaptive bandwidth (paper's future-work extension).
        let bws = stkde::core::adaptive::silverman_bandwidths(
            &domain,
            bw,
            &Epanechnikov,
            points.as_slice(),
            stkde::core::adaptive::AdaptiveParams::default(),
        );
        let (grid, timings) = stkde::core::adaptive::run_parallel(
            &domain,
            &Epanechnikov,
            points.as_slice(),
            &bws,
            decomp,
            threads,
        )
        .map_err(|e| e.to_string())?;
        (grid, timings, "ADAPTIVE-PD-SCHED".to_string())
    } else {
        let algorithm = match flags.get("algorithm").map(String::as_str).unwrap_or("auto") {
            "vb" => Algorithm::Vb,
            "vb-dec" => Algorithm::VbDec,
            "pb" => Algorithm::Pb,
            "pb-sym" => Algorithm::PbSym,
            "dr" => Algorithm::PbSymDr,
            "dd" => Algorithm::PbSymDd { decomp },
            "pd" => Algorithm::PbSymPd { decomp },
            "pd-sched" => Algorithm::PbSymPdSched { decomp },
            "pd-rep" => Algorithm::PbSymPdRep { decomp },
            "pd-sched-rep" => Algorithm::PbSymPdSchedRep { decomp },
            "auto" => Algorithm::Auto,
            other => return Err(format!("unknown algorithm `{other}`")),
        };
        let result = Stkde::new(domain, bw)
            .algorithm(algorithm)
            .threads(threads)
            .compute::<f32>(&points)
            .map_err(|e| e.to_string())?;
        let name = result.algorithm.to_string();
        (result.grid().clone(), result.timings, name)
    };

    println!("algorithm {alg_name}: {timings}");
    let stats = stkde::grid_stats(&grid);
    println!(
        "density: max {:.3e}, mean {:.3e}, occupancy {:.1}%",
        stats.max,
        stats.mean(),
        100.0 * stats.occupancy()
    );

    // Optional whole-cube VTK export (ParaView/VisIt volume rendering).
    if let Some(vtk_path) = flags.get("vtk") {
        let path = PathBuf::from(vtk_path);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        let f = std::io::BufWriter::new(std::fs::File::create(&path).map_err(|e| e.to_string())?);
        stkde::grid::io::write_vtk(&grid, domain.voxel_center(0, 0, 0), [sres, sres, tres], f)
            .map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }

    // Optional slice export.
    if let Some(prefix) = flags.get("out-prefix") {
        let format = flags.get("format").map(String::as_str).unwrap_or("pgm");
        let slices: Vec<usize> = match flags.get("slices").map(String::as_str) {
            None | Some("peak") => {
                let ((_, _, t), _) = stkde::grid::stats::top_k(&grid, 1)[0];
                vec![t]
            }
            Some(spec) => spec
                .split(',')
                .map(|s| parse_num(s.trim(), "--slices entry"))
                .collect::<Result<_, _>>()?,
        };
        let prefix = PathBuf::from(prefix);
        if let Some(dir) = prefix.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        for t in slices {
            if t >= domain.dims().gt {
                return Err(format!(
                    "slice {t} out of range (Gt = {})",
                    domain.dims().gt
                ));
            }
            let path = PathBuf::from(format!("{}_t{t}.{format}", prefix.display()));
            match format {
                "pgm" => stkde::grid::io::write_slice_pgm(&grid, t, stats.max, &path)
                    .map_err(|e| e.to_string())?,
                "csv" => {
                    let f = std::fs::File::create(&path).map_err(|e| e.to_string())?;
                    stkde::grid::io::write_slice_csv(&grid, t, f).map_err(|e| e.to_string())?;
                }
                other => return Err(format!("unknown format `{other}`")),
            }
            println!("wrote {}", path.display());
        }
    }
    Ok(())
}
