//! The rank executable `ProcessWorld` spawns — one process per rank of a
//! distributed STKDE run. Not meant to be invoked by hand: it reads its
//! identity, transport, and program from the environment (see
//! `stkde_comm::process` for the protocol and `stkde::rank` for the
//! program registry).

fn main() -> std::process::ExitCode {
    #[cfg(unix)]
    match stkde::rank::dispatch() {
        Some(code) => std::process::ExitCode::from(code.clamp(0, 255) as u8),
        None => {
            eprintln!(
                "stkde-rank: no rank environment found; this binary is spawned by \
                 ProcessWorld (see stkde_comm::process), not run directly"
            );
            std::process::ExitCode::from(2)
        }
    }
    #[cfg(not(unix))]
    {
        eprintln!("stkde-rank: the multi-process backend requires Unix-domain sockets");
        std::process::ExitCode::from(2)
    }
}
