//! `stkde-serve` — the long-running STKDE density daemon.
//!
//! ```sh
//! # Serve a 64×64×32 cube with a 32-time-unit sliding window:
//! stkde-serve --dims 64x64x32 --hs 6 --ht 4 --window 32 --port 7171
//!
//! # Ingest and query over HTTP:
//! curl -X POST localhost:7171/events -d '{"x":31.5,"y":30.2,"t":4.0}'
//! curl 'localhost:7171/density?x=31&y=30&t=4'
//!
//! # Probe a running daemon (used by CI), then stop it:
//! stkde-serve check 127.0.0.1:7171 --shutdown
//! ```

use std::process::ExitCode;
use std::time::Duration;
use stkde_server::json::Json;
use stkde_server::{Client, ServerConfig, StkdeServer, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("check") => cmd_check(&args[1..]),
        _ => cmd_serve(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let config = ServerConfig::parse(args)?;
    let dims = config.dims;
    let server = StkdeServer::start(
        config.bind_addr().as_str(),
        config.threads,
        config.service_config(),
    )
    .map_err(|e| format!("cannot bind {}: {e}", config.bind_addr()))?;

    // CI and scripts parse this line to find an ephemeral port.
    println!("stkde-serve listening on {}", server.addr());
    println!(
        "cube {dims} · hs {} · ht {} · window {} · {} http threads",
        config.hs, config.ht, config.window, config.threads
    );

    // Daemon loop: serve until a client POSTs /shutdown.
    while !server.service().shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested, draining");
    server.shutdown();
    println!("bye");
    Ok(())
}

/// Probe every read endpoint of a running daemon with the in-tree
/// client; any non-2xx answer (or transport failure) is an error.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let addr = args
        .first()
        .ok_or_else(|| format!("check needs an ADDR (host:port)\n\n{USAGE}"))?;
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;

    let expect_2xx = |what: &str, r: Result<(u16, Json), stkde_server::ClientError>| {
        let (status, body) = r.map_err(|e| format!("{what}: {e}"))?;
        if (200..300).contains(&status) {
            println!("ok  {what} -> {status}");
            Ok(body)
        } else {
            Err(format!("{what} answered {status}: {}", body.encode()))
        }
    };

    let counter = |stats: &Json, key: &str| -> Result<u64, String> {
        stats
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("/stats lacks a numeric `{key}`"))
    };

    // Everything the writer does with an event lands in exactly one of
    // these counters; their sum is the settled total.
    let settled_of = |stats: &Json| -> Result<u64, String> {
        Ok(counter(stats, "events_applied")?
            + counter(stats, "events_stale")?
            + counter(stats, "events_aged_in_batch")?)
    };
    let dropped_of = |stats: &Json| -> Result<u64, String> {
        Ok(counter(stats, "events_stale")? + counter(stats, "events_aged_in_batch")?)
    };

    expect_2xx("GET /healthz", client.get("/healthz"))?;
    let before = expect_2xx("GET /stats", client.get("/stats"))?;
    expect_2xx(
        "POST /events",
        client.post_json(
            "/events",
            &Json::parse(r#"{"x":1.0,"y":1.0,"t":1.0}"#).expect("static JSON"),
        ),
    )?;
    // Wait for the writer to settle the probe event (applied, or — on a
    // daemon that already holds newer events — dropped as stale).
    let mut dropped_delta = 0;
    let mut settled_delta = 0;
    for _ in 0..100 {
        let stats = expect_2xx("GET /stats", client.get("/stats"))?;
        settled_delta = settled_of(&stats)?.saturating_sub(settled_of(&before)?);
        dropped_delta = dropped_of(&stats)?.saturating_sub(dropped_of(&before)?);
        if settled_delta > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if settled_delta == 0 {
        return Err("ingested event was never applied nor dropped".into());
    }
    let density = expect_2xx("GET /density", client.get("/density?x=1&y=1&t=1"))?;
    let d = density
        .get("density")
        .and_then(Json::as_f64)
        .ok_or("density response lacks a numeric `density`")?;
    // Only demand a positive read-back when nothing was dropped while the
    // probe settled: with zero drops, the probe itself must have been
    // applied. Under concurrent traffic (or a live window head ahead of
    // the probe's t=1.0) the drop may have been ours, so the read-back is
    // inconclusive — the 200s above already prove the serve path.
    if dropped_delta == 0 {
        if d <= 0.0 {
            return Err(format!(
                "density at the ingested event is {d}, expected > 0"
            ));
        }
    } else {
        println!("note: events were dropped while the probe settled (stale or aged); skipping the read-back assertion");
    }
    expect_2xx("GET /region", client.get("/region"))?;
    expect_2xx("GET /slice", client.get("/slice?t=0"))?;

    if shutdown {
        expect_2xx("POST /shutdown", client.post_json("/shutdown", &Json::Null))?;
    }
    println!("all probes passed");
    Ok(())
}
