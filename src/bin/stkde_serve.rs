//! `stkde-serve` — the long-running STKDE density daemon.
//!
//! ```sh
//! # Serve a 64×64×32 cube with a 32-time-unit sliding window:
//! stkde-serve --dims 64x64x32 --hs 6 --ht 4 --window 32 --port 7171
//!
//! # Ingest and query over HTTP:
//! curl -X POST localhost:7171/events -d '{"x":31.5,"y":30.2,"t":4.0}'
//! curl 'localhost:7171/density?x=31&y=30&t=4'
//!
//! # Probe a running daemon (used by CI), then stop it:
//! stkde-serve check 127.0.0.1:7171 --shutdown
//!
//! # Watch ingest/query rates of a running daemon (scrapes /metrics):
//! stkde-serve top 127.0.0.1:7171 --interval 2
//! ```

use std::process::ExitCode;
use std::time::Duration;
use stkde_obs::scrape::{self, Sample};
use stkde_server::json::Json;
use stkde_server::{Client, ServerConfig, StkdeServer, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            Ok(())
        }
        Some("check") => cmd_check(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        _ => cmd_serve(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let config = ServerConfig::parse(args)?;
    let dims = config.dims;
    let server = StkdeServer::start(
        config.bind_addr().as_str(),
        config.threads,
        config.service_config(),
    )
    .map_err(|e| format!("cannot bind {}: {e}", config.bind_addr()))?;

    // CI and scripts parse this line to find an ephemeral port.
    println!("stkde-serve listening on {}", server.addr());
    println!(
        "cube {dims} · hs {} · ht {} · window {} · {} http threads",
        config.hs, config.ht, config.window, config.threads
    );

    // Daemon loop: serve until a client POSTs /shutdown.
    while !server.service().shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("shutdown requested, draining");
    server.shutdown();
    println!("bye");
    Ok(())
}

/// Probe every read endpoint of a running daemon with the in-tree
/// client; any non-2xx answer (or transport failure) is an error.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let addr = args
        .first()
        .ok_or_else(|| format!("check needs an ADDR (host:port)\n\n{USAGE}"))?;
    let shutdown = args.iter().any(|a| a == "--shutdown");
    let client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;

    let expect_2xx = |what: &str, r: Result<(u16, Json), stkde_server::ClientError>| {
        let (status, body) = r.map_err(|e| format!("{what}: {e}"))?;
        if (200..300).contains(&status) {
            println!("ok  {what} -> {status}");
            Ok(body)
        } else {
            Err(format!("{what} answered {status}: {}", body.encode()))
        }
    };

    let counter = |stats: &Json, key: &str| -> Result<u64, String> {
        stats
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("/stats lacks a numeric `{key}`"))
    };

    // Everything the writer does with an event lands in exactly one of
    // these counters; their sum is the settled total.
    let settled_of = |stats: &Json| -> Result<u64, String> {
        Ok(counter(stats, "events_applied")?
            + counter(stats, "events_stale")?
            + counter(stats, "events_aged_in_batch")?)
    };
    let dropped_of = |stats: &Json| -> Result<u64, String> {
        Ok(counter(stats, "events_stale")? + counter(stats, "events_aged_in_batch")?)
    };

    expect_2xx("GET /healthz", client.get("/healthz"))?;
    let before = expect_2xx("GET /stats", client.get("/stats"))?;
    expect_2xx(
        "POST /events",
        client.post_json(
            "/events",
            &Json::parse(r#"{"x":1.0,"y":1.0,"t":1.0}"#).expect("static JSON"),
        ),
    )?;
    // Wait for the writer to settle the probe event (applied, or — on a
    // daemon that already holds newer events — dropped as stale).
    let mut dropped_delta = 0;
    let mut settled_delta = 0;
    for _ in 0..100 {
        let stats = expect_2xx("GET /stats", client.get("/stats"))?;
        settled_delta = settled_of(&stats)?.saturating_sub(settled_of(&before)?);
        dropped_delta = dropped_of(&stats)?.saturating_sub(dropped_of(&before)?);
        if settled_delta > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if settled_delta == 0 {
        return Err("ingested event was never applied nor dropped".into());
    }
    let density = expect_2xx("GET /density", client.get("/density?x=1&y=1&t=1"))?;
    let d = density
        .get("density")
        .and_then(Json::as_f64)
        .ok_or("density response lacks a numeric `density`")?;
    // Only demand a positive read-back when nothing was dropped while the
    // probe settled: with zero drops, the probe itself must have been
    // applied. Under concurrent traffic (or a live window head ahead of
    // the probe's t=1.0) the drop may have been ours, so the read-back is
    // inconclusive — the 200s above already prove the serve path.
    if dropped_delta == 0 {
        if d <= 0.0 {
            return Err(format!(
                "density at the ingested event is {d}, expected > 0"
            ));
        }
    } else {
        println!("note: events were dropped while the probe settled (stale or aged); skipping the read-back assertion");
    }
    expect_2xx("GET /region", client.get("/region"))?;
    let approx = expect_2xx("GET /region?max_err=0.5", client.get("/region?max_err=0.5"))?;
    if approx.get("error_bound").and_then(Json::as_f64).is_none() {
        return Err("approximate region response lacks a numeric `error_bound`".into());
    }
    expect_2xx("GET /slice", client.get("/slice?t=0"))?;

    if shutdown {
        expect_2xx("POST /shutdown", client.post_json("/shutdown", &Json::Null))?;
    }
    println!("all probes passed");
    Ok(())
}

/// Poll `/metrics` on a running daemon and print a compact dashboard:
/// per-interval rates for the counter families, gauge snapshots, and
/// latency quantiles estimated from the cumulative histogram buckets.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let addr = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("top needs an ADDR (host:port)\n\n{USAGE}"))?;
    let mut interval = 2.0f64;
    let mut count = 0usize; // 0 = until interrupted
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => {
                let v = it.next().ok_or("missing value for --interval")?;
                interval = v.parse().map_err(|e| format!("bad --interval: {e}"))?;
            }
            "--count" => {
                let v = it.next().ok_or("missing value for --count")?;
                count = v.parse().map_err(|e| format!("bad --count: {e}"))?;
            }
            other => return Err(format!("unknown top flag `{other}`\n\n{USAGE}")),
        }
    }
    if !(interval > 0.0 && interval.is_finite()) {
        return Err("--interval must be positive".into());
    }

    let client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
    let mut prev: Option<(std::time::Instant, Vec<Sample>)> = None;
    let mut polls = 0usize;
    loop {
        let (status, text) = client
            .get_text("/metrics")
            .map_err(|e| format!("GET /metrics: {e}"))?;
        if status != 200 {
            return Err(format!("GET /metrics answered {status}"));
        }
        let now = std::time::Instant::now();
        let samples = scrape::parse_text(&text);
        print_top_frame(
            addr,
            prev.as_ref().map(|(t, s)| (*t, s.as_slice(), now)),
            &samples,
        );
        prev = Some((now, samples));
        polls += 1;
        if count > 0 && polls >= count {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

/// Sum of every sample of a family (collapses labels, e.g. per-worker).
fn total(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// Cumulative `(le, count)` buckets of a histogram, labels collapsed.
fn buckets(samples: &[Sample], name: &str) -> Vec<(f64, u64)> {
    let bucket_name = format!("{name}_bucket");
    let mut by_le: Vec<(f64, f64)> = Vec::new();
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let Some(le) = s.label("le").and_then(scrape::parse_le) else {
            continue;
        };
        match by_le.iter_mut().find(|(b, _)| b.total_cmp(&le).is_eq()) {
            Some((_, c)) => *c += s.value,
            None => by_le.push((le, s.value)),
        }
    }
    by_le.sort_by(|a, b| a.0.total_cmp(&b.0));
    by_le.into_iter().map(|(le, c)| (le, c as u64)).collect()
}

fn fmt_rate(delta: f64, dt: f64) -> String {
    if dt > 0.0 {
        format!("{:.1}/s", delta / dt)
    } else {
        "-".into()
    }
}

fn fmt_secs(s: Option<f64>) -> String {
    match s {
        Some(v) if v < 1e-3 => format!("{:.0}µs", v * 1e6),
        Some(v) if v < 1.0 => format!("{:.2}ms", v * 1e3),
        Some(v) => format!("{v:.2}s"),
        None => "-".into(),
    }
}

/// How a frame turns a metric name into the number it displays:
/// cumulative total on the first poll, inter-poll delta afterwards.
type DeltaFn<'a> = Box<dyn Fn(&str) -> f64 + 'a>;

fn print_top_frame(
    addr: &str,
    prev: Option<(std::time::Instant, &[Sample], std::time::Instant)>,
    cur: &[Sample],
) {
    let (dt, delta): (f64, DeltaFn) = match prev {
        Some((t0, old, t1)) => {
            let dt = (t1 - t0).as_secs_f64();
            let old: Vec<Sample> = old.to_vec();
            (
                dt,
                Box::new(move |name| total(cur, name) - total(&old, name)),
            )
        }
        // First poll: report cumulative totals over the daemon's uptime.
        None => (
            total(cur, "stkde_uptime_seconds").max(1e-9),
            Box::new(|name| total(cur, name)),
        ),
    };
    let kind = if prev.is_some() {
        "interval"
    } else {
        "since start"
    };
    let http_p =
        |q: f64| scrape::quantile_from_buckets(&buckets(cur, "stkde_http_request_seconds"), q);
    let hits = total(cur, "stkde_cache_hits_total");
    let misses = total(cur, "stkde_cache_misses_total");
    let hit_pct = if hits + misses > 0.0 {
        format!("{:.1}%", 100.0 * hits / (hits + misses))
    } else {
        "-".into()
    };
    let written = total(cur, "stkde_scatter_voxels_written_total");
    let boxed = total(cur, "stkde_scatter_box_voxels_total");
    let skip_pct = if boxed > 0.0 {
        format!("{:.0}%", 100.0 * (1.0 - written / boxed))
    } else {
        "-".into()
    };

    println!("stkde-serve top — {addr} ({kind}, dt {dt:.1}s)");
    println!(
        "  ingest   recv {:>10}  applied {:>10}  queue {:>6.0}  coalesce {:>5.1}",
        fmt_rate(delta("stkde_ingest_events_received_total"), dt),
        fmt_rate(delta("stkde_ingest_events_total"), dt),
        total(cur, "stkde_ingest_queue_depth"),
        total(cur, "stkde_ingest_last_coalesce_ratio"),
    );
    println!(
        "  cube     gen {:>9.0}  live {:>11.0}  bytes {:>9.1} MiB  rebuilds {:.0}",
        total(cur, "stkde_cube_generation"),
        total(cur, "stkde_cube_live_events"),
        total(cur, "stkde_cube_bytes") / (1024.0 * 1024.0),
        total(cur, "stkde_ingest_rebuilds_total"),
    );
    println!(
        "  http     req {:>10}  p50 {:>8}  p90 {:>8}  p99 {:>8}  (cumulative quantiles)",
        fmt_rate(delta("stkde_http_requests_total"), dt),
        fmt_secs(http_p(0.50)),
        fmt_secs(http_p(0.90)),
        fmt_secs(http_p(0.99)),
    );
    println!(
        "  cache    hit {hit_pct:>10}  entries {:>8.0}",
        total(cur, "stkde_cache_entries")
    );
    println!(
        "  approx   q {:>12}  pyramid {:>7.1} MiB  build {:>8}  levels {}",
        fmt_rate(delta("stkde_approx_queries_total"), dt),
        total(cur, "stkde_approx_pyramid_bytes") / (1024.0 * 1024.0),
        fmt_secs(scrape::quantile_from_buckets(
            &buckets(cur, "stkde_approx_pyramid_build_seconds"),
            0.50,
        )),
        approx_levels(cur),
    );
    println!(
        "  scatter  pts {:>10}  voxels {:>9}  skipped-zero {skip_pct}",
        fmt_rate(delta("stkde_scatter_points_total"), dt),
        fmt_rate(delta("stkde_scatter_voxels_written_total"), dt),
    );
    println!(
        "  pool     steals {:>7}  failed {:>9}  parks {:>8}  wakes {:>8}",
        fmt_rate(delta("stkde_pool_steals_total"), dt),
        fmt_rate(delta("stkde_pool_steal_failures_total"), dt),
        fmt_rate(delta("stkde_pool_parks_total"), dt),
        fmt_rate(delta("stkde_pool_wakes_total"), dt),
    );
    print_shard_columns(cur);
    println!();
}

/// Per-level breakdown of approximate answers, `level:count` ascending
/// (`0` = the error budget missed every pyramid level and the query was
/// served exactly). `-` until the first `max_err` query arrives.
fn approx_levels(cur: &[Sample]) -> String {
    let mut by_level: Vec<(usize, f64)> = cur
        .iter()
        .filter(|s| s.name == "stkde_approx_queries_total")
        .filter_map(|s| Some((s.label("level")?.parse().ok()?, s.value)))
        .collect();
    if by_level.is_empty() {
        return "-".into();
    }
    by_level.sort_by_key(|&(l, _)| l);
    by_level
        .iter()
        .map(|(l, c)| format!("{l}:{c:.0}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One `shards` line per live shard: slab width, content epoch, ingest
/// ops, and publishes — the at-a-glance view of shard balance. Only
/// labels below the live `stkde_shard_count` are shown, so stale series
/// left over from a smaller post-reshard layout don't resurface.
fn print_shard_columns(cur: &[Sample]) {
    let live = total(cur, "stkde_shard_count") as usize;
    if live == 0 {
        return;
    }
    let of = |name: &str, shard: &str| -> f64 {
        cur.iter()
            .filter(|s| s.name == name && s.label("shard") == Some(shard))
            .map(|s| s.value)
            .sum()
    };
    for shard in 0..live {
        let label = shard.to_string();
        println!(
            "  shard {shard:>2}  layers {:>5.0}  epoch {:>9.0}  ops {:>12.0}  publishes {:>9.0}",
            of("stkde_shard_layers", &label),
            of("stkde_shard_epoch", &label),
            of("stkde_shard_ingest_events_total", &label),
            of("stkde_shard_publishes_total", &label),
        );
    }
}
