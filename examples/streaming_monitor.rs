//! Streaming surveillance over the wire: run the density *server*
//! in-process, replay a year of synthetic dengue reports through
//! `POST /events`, and watch the live "last 30 days" cube through the
//! query endpoints — the same ingest-then-query split a deployed
//! `stkde-serve` daemon exposes.
//!
//! The paper's motivation is near real-time monitoring of infectious
//! disease; a surveillance system does not recompute the cube from
//! scratch per case report — the server folds each report in
//! (`Θ(Hs²·Ht)` per event, batches coalesced per write-lock
//! acquisition) and evicts reports that age out of the window, while
//! dashboards poll `/slice` and `/density` concurrently.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use stkde::prelude::*;
use stkde_server::json::Json;
use stkde_server::{Client, ServiceConfig, StkdeServer};

/// JSON for one `POST /events` batch.
fn events_body(chunk: &[Point]) -> Json {
    Json::obj([(
        "events",
        Json::Arr(
            chunk
                .iter()
                .map(|p| {
                    Json::obj([
                        ("x", Json::from(p.x)),
                        ("y", Json::from(p.y)),
                        ("t", Json::from(p.t)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn main() {
    // A 8 km × 8 km city over 365 days, 200 m / 1 day resolution.
    let extent = Extent::new([0.0, 0.0, 0.0], [8_000.0, 8_000.0, 365.0]);
    let domain = Domain::from_extent(extent, Resolution::new(200.0, 1.0));
    let bw = Bandwidth::new(800.0, 7.0);
    let window_days = 30.0;

    // The server owns the sliding-window cube; this process is only a
    // client from here on.
    let mut config = ServiceConfig::new(domain, bw, window_days);
    config.auto_rebuild_every = Some(4096); // drift hygiene, f64 cube
    let server = StkdeServer::start("127.0.0.1:0", 4, config).expect("bind ephemeral port");
    let client = Client::new(server.addr());
    println!("density server listening on {}", server.addr());

    // A year of synthetic dengue reports, replayed in time order.
    let mut feed = DatasetKind::Dengue.generate(20_000, extent, 11).into_vec();
    feed.sort_by(|a, b| a.t.total_cmp(&b.t));
    println!(
        "feed: {} events over {:.0} days; window: {window_days} days\n",
        feed.len(),
        extent.size(2)
    );

    let start = std::time::Instant::now();
    let mut sent = 0usize;
    let mut next_report = 60.0; // print a status line every 60 days
    for chunk in feed.chunks(512) {
        let (status, _) = client
            .post_json("/events", &events_body(chunk))
            .expect("POST /events");
        assert_eq!(status, 202);
        sent += chunk.len();

        let day = chunk.last().expect("non-empty chunk").t;
        if day >= next_report {
            next_report += 60.0;
            // Wait for the writer to drain (the wire way: poll /stats).
            let stats = loop {
                let (_, stats) = client.get("/stats").expect("GET /stats");
                let settled = stats.get("events_applied").unwrap().as_u64().unwrap()
                    + stats.get("events_stale").unwrap().as_u64().unwrap()
                    + stats.get("events_aged_in_batch").unwrap().as_u64().unwrap();
                if settled == sent as u64 {
                    break stats;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            };
            // Hotspot of the freshest time plane, via GET /slice.
            let t = (day as usize).min(domain.dims().gt - 1);
            let (_, slice) = client.get(&format!("/slice?t={t}")).expect("GET /slice");
            let values = slice.get("values").unwrap().as_array().unwrap();
            let gx = domain.dims().gx;
            let (i, peak) = values
                .iter()
                .enumerate()
                .map(|(i, v)| (i, v.as_f64().unwrap()))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty slice");
            println!(
                "day {day:>5.0}: {:>5} live events, hotspot at ({:>4.0} m, {:>4.0} m) (f̂ = {peak:.3e})",
                stats.get("live_events").unwrap().as_u64().unwrap(),
                (i % gx) as f64 * 200.0,
                (i / gx) as f64 * 200.0,
            );
        }
    }
    let elapsed = start.elapsed();
    println!(
        "\nstreamed {sent} events over HTTP in {elapsed:.2?} — {:.0} events/s sustained",
        sent as f64 / elapsed.as_secs_f64()
    );

    // Verify the wire path end to end: server voxel reads must match a
    // batch PB-SYM recomputation over the surviving events.
    server.service().wait_drained();
    let survivors: Vec<Point> = server.service().live_points();
    println!("window now holds {} events", survivors.len());
    let reference = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&PointSet::from_vec(survivors))
        .expect("batch recomputation")
        .grid;
    let mut worst: f64 = 0.0;
    for &((x, y, t), want) in stkde::grid::stats::top_k(&reference, 8).iter() {
        let (_, d) = client
            .get(&format!("/density?x={x}&y={y}&t={t}"))
            .expect("GET /density");
        let got = d.get("density").unwrap().as_f64().unwrap();
        worst = worst.max((got - want).abs() / want.abs().max(1e-300));
    }
    println!("server vs batch recomputation, top-8 hotspots: max rel diff = {worst:.2e}");
    assert!(worst < 1e-6, "serve path diverges from batch recomputation");

    let (_, stats) = client.get("/stats").expect("GET /stats");
    println!(
        "ingest batches: {} (coalesced from {} POSTs), cache hits: {}, generation: {}",
        stats.get("ingest_batches").unwrap().as_u64().unwrap(),
        feed.len().div_ceil(512),
        stats.get("cache_hits").unwrap().as_u64().unwrap(),
        stats.get("generation").unwrap().as_u64().unwrap(),
    );

    // Graceful stop, over the wire like any operator would.
    let (status, _) = client
        .post_json("/shutdown", &Json::Null)
        .expect("POST /shutdown");
    assert_eq!(status, 200);
    server.shutdown();
    println!("server drained and stopped");
}
