//! Streaming surveillance: maintain a live "last 30 days" density cube
//! under a time-ordered event feed using the incremental STKDE extension.
//!
//! The paper's motivation is near real-time monitoring of infectious
//! disease; a surveillance system does not recompute the cube from
//! scratch per case report — it folds each report in (`Θ(Hs²·Ht)` per
//! event) and evicts reports that age out of the window. This example
//! replays a year-long synthetic epidemic day by day, tracks the hottest
//! location of the trailing 30-day window, and shows that the live cube
//! matches a batch recomputation.
//!
//! ```sh
//! cargo run --release --example streaming_monitor
//! ```

use stkde::prelude::*;
use stkde::SlidingWindowStkde;

fn main() {
    // A 8 km × 8 km city over 365 days, 200 m / 1 day resolution.
    let extent = Extent::new([0.0, 0.0, 0.0], [8_000.0, 8_000.0, 365.0]);
    let domain = Domain::from_extent(extent, Resolution::new(200.0, 1.0));
    let bw = Bandwidth::new(800.0, 7.0);

    // A year of synthetic dengue reports, replayed in time order.
    let mut feed = DatasetKind::Dengue.generate(20_000, extent, 11).into_vec();
    feed.sort_by(|a, b| a.t.total_cmp(&b.t));
    println!(
        "feed: {} events over {:.0} days; window: 30 days",
        feed.len(),
        extent.size(2)
    );

    let mut window = SlidingWindowStkde::<f32>::new(domain, bw, 30.0);
    let mut evicted_total = 0usize;
    let mut next_report = 60.0; // print a status line every 60 days

    let start = std::time::Instant::now();
    for &event in &feed {
        evicted_total += window.push(event);
        if event.t >= next_report {
            next_report += 60.0;
            let snap = window.cube().snapshot();
            let ((x, y, t), peak) = stkde::grid::stats::top_k(&snap, 1)[0];
            println!(
                "day {:>5.0}: {:>5} live events, hotspot at ({:>4.0} m, {:>4.0} m) day {} (f̂ = {:.3e})",
                event.t,
                window.len(),
                x as f64 * 200.0,
                y as f64 * 200.0,
                t,
                peak
            );
        }
    }
    let elapsed = start.elapsed();
    println!(
        "\nstreamed {} events ({} evictions) in {:.2?} — {:.0} events/s sustained",
        feed.len(),
        evicted_total,
        elapsed,
        feed.len() as f64 / elapsed.as_secs_f64()
    );

    // Verify: the live cube equals a batch PB-SYM over the survivors.
    let survivors: PointSet = PointSet::from_vec(window.points().copied().collect());
    let newest = feed.last().expect("non-empty feed").t;
    println!(
        "window now holds {} events from day {:.0} on",
        survivors.len(),
        newest - 30.0
    );
    let live = window.cube().snapshot();
    window.rebuild();
    let clean = window.cube().snapshot();
    println!(
        "float drift after a year of churn: max |live − rebuilt| = {:.2e}",
        live.max_abs_diff(&clean)
    );

    // Render the current window's densest day.
    let ((_, _, t), _) = stkde::grid::stats::top_k(&clean, 1)[0];
    println!("\ncurrent 30-day window, densest day ({t}):");
    print!("{}", stkde::grid::io::ascii_slice(&clean, t, 72, 30));
}
