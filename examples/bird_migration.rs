//! Ornithology surveillance, after the paper's Flu/eBird datasets: sparse
//! observations scattered over a huge domain, where *memory
//! initialization* — not kernel computation — dominates (paper Figure 7),
//! domain replication runs out of memory (Figure 8), and decomposed
//! strategies with parallel init are the right call.
//!
//! ```sh
//! cargo run --release --example bird_migration
//! ```

use stkde::prelude::*;

fn main() -> Result<(), StkdeError> {
    // A world-spanning domain observed for 4 years at 3-day resolution —
    // Flu-like: big grid, few points.
    let extent = Extent::new([-180.0, -60.0, 0.0], [180.0, 75.0, 1460.0]);
    let domain = Domain::from_extent(extent, Resolution::new(0.5, 3.0));
    let sightings = DatasetKind::Flu.generate(31_478, extent, 2001);
    let bw = Bandwidth::new(2.0, 9.0);
    let grid_mib = domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0);
    println!(
        "avian-flu-like surveillance: n = {}, grid {} = {:.0} MiB",
        sightings.len(),
        domain.dims(),
        grid_mib
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let engine = Stkde::new(domain, bw).threads(threads);

    // The sparse-instance signature: initialization dominates.
    let seq = engine
        .clone()
        .algorithm(Algorithm::PbSym)
        .compute::<f32>(&sightings)?;
    println!(
        "\nPB-SYM breakdown: {} -> {:.0}% of the time is memory initialization",
        seq.timings,
        100.0 * seq.timings.init_fraction()
    );

    // Domain replication under a realistic memory budget: with P replicas
    // of a big sparse grid, DR exhausts memory exactly as in Figure 8.
    let budget = (2.5 * grid_mib * 1024.0 * 1024.0) as usize;
    match engine
        .clone()
        .algorithm(Algorithm::PbSymDr)
        .threads(8)
        .memory_limit(budget)
        .compute::<f32>(&sightings)
    {
        Err(StkdeError::MemoryLimit { required, limit, what }) => println!(
            "\nPB-SYM-DR with 8 threads: OOM as the paper observes — {what}: needs {:.0} MiB, budget {:.0} MiB",
            required as f64 / (1024.0 * 1024.0),
            limit as f64 / (1024.0 * 1024.0)
        ),
        Ok(_) => println!("\nPB-SYM-DR unexpectedly fit in the budget"),
        Err(e) => println!("\nPB-SYM-DR failed differently: {e}"),
    }

    // The right tool: domain decomposition with parallel first-touch init.
    let dd = engine
        .clone()
        .algorithm(Algorithm::PbSymDd {
            decomp: Decomp::cubic(16),
        })
        .compute::<f32>(&sightings)?;
    let agree = stkde::core::validate::grids_agree(&seq.grid, &dd.grid, 1e-3, 1e-9);
    println!(
        "PB-SYM-DD 16^3, {threads} threads: {} (agrees with sequential: {agree})",
        dd.timings
    );
    println!(
        "speedup vs PB-SYM: {:.2}x (bounded by memory-init scaling on sparse instances)",
        seq.timings.total().as_secs_f64() / dd.timings.total().as_secs_f64()
    );

    // Migration reading: where is sighting density concentrated over time?
    let dims = domain.dims();
    println!("\nflyway activity by season (total density per time slice):");
    let per_quarter = dims.gt / 16;
    for q in 0..16 {
        let t0 = q * per_quarter;
        let t1 = ((q + 1) * per_quarter).min(dims.gt);
        let mass: f64 = (t0..t1)
            .map(|t| dd.grid.time_slice(t).iter().map(|&v| v as f64).sum::<f64>())
            .sum();
        let bar_len = (mass * 4e3) as usize;
        println!(
            "  days {:4.0}-{:4.0}: {}",
            t0 as f64 * 3.0,
            t1 as f64 * 3.0,
            "#".repeat(bar_len.min(60))
        );
    }
    Ok(())
}
