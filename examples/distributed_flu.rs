//! Distributed-memory STKDE over simulated ranks: the avian-flu scenario
//! on a small cluster.
//!
//! The paper's conclusion points at distributed machines as the way past
//! shared-memory limits (its Flu Hr grid alone is 20 GB). This example
//! partitions a world-scale flu grid into T-slabs across 8 simulated
//! ranks, runs both exchange strategies, and prices the recorded traffic
//! with postal-model presets to compare what a real cluster would see.
//!
//! ```sh
//! cargo run --release --example distributed_flu
//! ```

use stkde::comm::{CommCost, ModeledRun};
use stkde::core::distmem::{self, DistStrategy};
use stkde::kernels::Epanechnikov;
use stkde::prelude::*;
use stkde::Problem;

fn main() -> Result<(), StkdeError> {
    // A hemisphere-scale domain observed for ~3 years at 0.5° / 3 days —
    // a scaled-down cousin of the paper's Flu Mr instance.
    let extent = Extent::new([0.0, 0.0, 0.0], [360.0, 150.0, 1_000.0]);
    let domain = Domain::from_extent(extent, Resolution::new(0.5, 3.0));
    let bw = Bandwidth::new(2.5, 21.0);
    let points = DatasetKind::Flu.generate(30_000, extent, 23);
    println!(
        "domain {} ({:.0} MB of f32), {} observations",
        domain.dims(),
        domain.dims().bytes::<f32>() as f64 / 1e6,
        points.len()
    );

    // Sequential reference.
    let problem = Problem::new(domain, bw, points.len());
    let seq = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f32>(&points)?;
    let seq_secs = seq.timings.total().as_secs_f64();
    println!("sequential PB-SYM: {}\n", seq.timings);

    const RANKS: usize = 8;
    for strategy in [DistStrategy::PointExchange, DistStrategy::HaloExchange] {
        let r =
            distmem::run::<f32, _>(&problem, &Epanechnikov, points.as_slice(), RANKS, strategy)?;

        // The density cube must be identical to the sequential one.
        let diff = seq.grid.max_rel_diff(&r.grid, 1e-9);
        assert!(diff < 1e-4, "distributed result diverged: {diff}");

        // Model per-rank compute from each rank's work share (thread
        // timings on an oversubscribed laptop would mislead).
        let n: usize = r.processed.iter().sum();
        let compute: Vec<f64> = r
            .processed
            .iter()
            .map(|&c| seq_secs * c as f64 / n.max(1) as f64)
            .collect();

        println!("== {strategy} on {RANKS} ranks ==");
        println!(
            "   work: {} points rasterized (replication ×{:.3}), {:.1} MB shipped",
            n,
            r.replication_factor(points.len()),
            r.total_bytes() as f64 / 1e6
        );
        for (name, cost) in [
            ("perfect network", CommCost::FREE),
            ("InfiniBand     ", CommCost::INFINIBAND),
            ("10G Ethernet   ", CommCost::ETHERNET_10G),
        ] {
            let m = ModeledRun::price(compute.clone(), &r.stats, cost);
            println!(
                "   {name}: makespan {:>8.4}s  speedup {:>5.2}  (compute imbalance ×{:.2})",
                m.makespan(),
                m.speedup(seq_secs),
                m.imbalance()
            );
        }
        println!();
    }
    println!("Shape to expect: both strategies pay the same final gather (the");
    println!("full cube converging on rank 0), so the differential cost is what");
    println!("the exchange ships — replicated point records (DIST-POINT, with");
    println!("work overhead instead) vs ghost voxel slabs (DIST-HALO, work-");
    println!("efficient but byte-heavy). The paper's DD-vs-DR trade-off,");
    println!("restated in bytes.");
    Ok(())
}
