//! Quickstart: compute an STKDE density cube for a synthetic outbreak and
//! render a time slice in the terminal.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stkde::prelude::*;
use stkde::ResultExt;

fn main() -> Result<(), StkdeError> {
    // 1. Describe the space-time domain: a 10 km × 10 km city observed for
    //    90 days, discretized at 100 m and 1 day.
    let extent = Extent::new([0.0, 0.0, 0.0], [10_000.0, 10_000.0, 90.0]);
    let domain = Domain::from_extent(extent, Resolution::new(100.0, 1.0));
    println!(
        "domain: {} voxels ({:.1} MiB of f32)",
        domain.dims(),
        domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0)
    );

    // 2. Get events. Here: a synthetic epidemic with the Dengue profile
    //    (in real use: PointSet::from_vec or stkde::data::csv::load).
    let points = DatasetKind::Dengue.generate(5_000, extent, 7);
    println!("events: {}", points.len());

    // 3. Compute the density with a 1 km spatial / 7 day temporal
    //    bandwidth. PB-SYM is the paper's best sequential algorithm;
    //    Algorithm::Auto would pick a parallel variant when it pays off.
    let result = Stkde::new(domain, Bandwidth::new(1_000.0, 7.0))
        .algorithm(Algorithm::PbSym)
        .compute::<f32>(&points)?;
    println!("timings: {}", result.timings);

    // 4. Inspect the result: global statistics and the densest moment.
    let stats = stkde::grid_stats(result.grid());
    println!(
        "density: max {:.3e}, mean {:.3e}, {:.1}% of voxels non-zero",
        stats.max,
        stats.mean(),
        100.0 * stats.occupancy()
    );
    let top = stkde::grid::stats::top_k(result.grid(), 1);
    let ((x, y, t), peak) = top[0];
    println!("hottest voxel: ({x}, {y}) on day {t} (density {peak:.3e})");

    // 5. Render that day as ASCII art (darker = denser).
    println!("\ndensity map, day {t}:");
    print!("{}", stkde::grid::io::ascii_slice(result.grid(), t, 72, 30));
    Ok(())
}
