//! Social-media stream analysis, after the paper's PollenUS dataset
//! (588K pollen/allergy tweets): a compute-heavy instance where the
//! parallel strategies differ sharply, and where the engine's `Auto` mode
//! (the paper's "parametric model" future work) earns its keep.
//!
//! ```sh
//! cargo run --release --example social_media
//! ```

use std::time::Instant;
use stkde::prelude::*;

fn main() -> Result<(), StkdeError> {
    // Continental-US-like domain over one allergy season, at a resolution
    // giving a compute-dominated instance (PollenUS Hr-Mb character).
    let extent = Extent::new([0.0, 0.0, 0.0], [4_800.0, 2_400.0, 90.0]);
    let domain = Domain::from_extent(extent, Resolution::new(12.0, 1.0));
    let tweets = DatasetKind::PollenUs.generate(60_000, extent, 2016);
    let bw = Bandwidth::new(180.0, 7.0); // Hs = 15, Ht = 7 voxels
    println!(
        "synthetic pollen tweets: n = {}, grid {} ({:.0} MiB), Hs x Ht = 15 x 7 voxels\n",
        tweets.len(),
        domain.dims(),
        domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0),
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let base = Stkde::new(domain, bw).threads(threads);

    // Sequential reference.
    let t0 = Instant::now();
    let reference = base
        .clone()
        .algorithm(Algorithm::PbSym)
        .compute::<f32>(&tweets)?;
    let t_seq = t0.elapsed().as_secs_f64();
    println!(
        "PB-SYM (sequential reference): {t_seq:.3}s [{}]",
        reference.timings
    );

    // The parallel lineup on this machine.
    let candidates = [
        Algorithm::PbSymDr,
        Algorithm::PbSymDd {
            decomp: Decomp::cubic(8),
        },
        Algorithm::PbSymPd {
            decomp: Decomp::cubic(16),
        },
        Algorithm::PbSymPdSched {
            decomp: Decomp::cubic(16),
        },
        Algorithm::PbSymPdSchedRep {
            decomp: Decomp::cubic(16),
        },
    ];
    println!("\nparallel strategies with {threads} threads:");
    for alg in candidates {
        let t0 = Instant::now();
        match base.clone().algorithm(alg).compute::<f32>(&tweets) {
            Ok(result) => {
                let t = t0.elapsed().as_secs_f64();
                // Sanity: all strategies agree with the reference.
                let agrees =
                    stkde::core::validate::grids_agree(&reference.grid, &result.grid, 1e-3, 1e-9);
                println!(
                    "  {:22} {t:7.3}s  speedup {:5.2}  {}",
                    result.algorithm.to_string(),
                    t_seq / t,
                    if agrees { "(verified)" } else { "(MISMATCH!)" }
                );
            }
            Err(e) => println!("  {:22} failed: {e}", alg.to_string()),
        }
    }

    // Let the cost model choose.
    let auto = base
        .clone()
        .algorithm(Algorithm::Auto)
        .compute::<f32>(&tweets)?;
    println!("\nAuto selected {} — {}", auto.algorithm, auto.timings);

    // What the analyst came for: when and where does allergy chatter peak?
    let ((x, y, t), peak) = stkde::grid::stats::top_k(&auto.grid, 1)[0];
    let c = domain.voxel_center(x, y, t);
    println!(
        "peak chatter: day {:.0}, location ({:.0}, {:.0}) km, density {peak:.3e}",
        c[2],
        c[0] / 10.0,
        c[1] / 10.0
    );
    Ok(())
}
