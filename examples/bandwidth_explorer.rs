//! Bandwidth exploration — the paper's Figure 1, in the terminal.
//!
//! Figure 1 shows the same Dengue dataset under two bandwidth choices:
//! wide (`hs = 2500 m`, `ht = 14 d`) melts the city into broad risk
//! regions; narrow (`hs = 500 m`, `ht = 7 d`) resolves individual
//! outbreak foci. This example computes both cubes over one synthetic
//! Cali-like epidemic and renders the same day side by side, plus the
//! numbers an analyst would compare (peak density, support volume).
//!
//! ```sh
//! cargo run --release --example bandwidth_explorer
//! ```

use stkde::prelude::*;
use stkde::ResultExt;

fn main() -> Result<(), StkdeError> {
    // A Cali-sized domain: ~12 km × 12 km over two years, 100 m / 1 day —
    // the discretization regime of the paper's Dengue instances.
    let extent = Extent::new([0.0, 0.0, 0.0], [12_000.0, 12_000.0, 730.0]);
    let domain = Domain::from_extent(extent, Resolution::new(100.0, 1.0));
    let points = DatasetKind::Dengue.generate(11_056, extent, 2010); // Table 2's n
    println!(
        "domain {} ({:.0} MiB of f32), {} cases\n",
        domain.dims(),
        domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0),
        points.len()
    );

    // The two Figure-1 bandwidth settings.
    let settings = [
        (
            "wide:   hs = 2500 m, ht = 14 d",
            Bandwidth::new(2_500.0, 14.0),
        ),
        ("narrow: hs =  500 m, ht =  7 d", Bandwidth::new(500.0, 7.0)),
    ];

    let mut renders = Vec::new();
    let mut shared_day = None;
    for (label, bw) in settings {
        let result = Stkde::new(domain, bw)
            .algorithm(Algorithm::Auto)
            .threads(2)
            .compute::<f32>(&points)?;
        let stats = stkde::grid_stats(result.grid());
        // Compare both settings on the day the wide cube peaks.
        let day = *shared_day.get_or_insert_with(|| {
            let ((_, _, t), _) = stkde::grid::stats::top_k(result.grid(), 1)[0];
            t
        });
        println!(
            "{label}  [{}]\n  peak f̂ = {:.3e}, support = {:.1}% of voxels, compute {}",
            result.algorithm,
            stats.max,
            100.0 * stats.occupancy(),
            result.timings
        );
        renders.push((
            label,
            stkde::grid::io::ascii_slice(result.grid(), day, 56, 24),
        ));
    }

    let day = shared_day.expect("two runs completed");
    println!("\nsame epidemic, same day ({day}), two bandwidths:");
    for (label, art) in &renders {
        println!("\n--- {label} ---");
        print!("{art}");
    }
    println!("\nThe wide setting blends foci into regional risk surfaces; the");
    println!("narrow one isolates street-level clusters — the Figure 1 contrast.");
    Ok(())
}
