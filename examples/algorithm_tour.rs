//! A tour of all twelve algorithms of the paper on one instance, verifying
//! that they all compute the same density field and showing where their
//! runtimes differ.
//!
//! ```sh
//! cargo run --release --example algorithm_tour
//! ```

use std::time::Instant;
use stkde::prelude::*;

fn main() -> Result<(), StkdeError> {
    let domain = Domain::from_dims(GridDims::new(96, 96, 48));
    let extent = domain.extent();
    let points = DatasetKind::PollenUs.generate(8_000, extent, 99);
    let bw = Bandwidth::new(6.0, 4.0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    println!(
        "instance: grid {}, n = {}, Hs x Ht = 6 x 4, threads = {threads}\n",
        domain.dims(),
        points.len()
    );

    let d = Decomp::cubic(8);
    let lineup = [
        ("gold standard", Algorithm::Vb),
        ("blocked voxel baseline", Algorithm::VbDec),
        ("point-based", Algorithm::Pb),
        ("+ spatial invariant", Algorithm::PbDisk),
        ("+ temporal invariant", Algorithm::PbBar),
        ("+ both invariants", Algorithm::PbSym),
        ("parallel: replication", Algorithm::PbSymDr),
        ("parallel: domain decomp", Algorithm::PbSymDd { decomp: d }),
        ("parallel: phased points", Algorithm::PbSymPd { decomp: d }),
        (
            "parallel: DAG-scheduled",
            Algorithm::PbSymPdSched { decomp: d },
        ),
        (
            "parallel: + replication",
            Algorithm::PbSymPdRep { decomp: d },
        ),
        (
            "parallel: sched + rep",
            Algorithm::PbSymPdSchedRep { decomp: d },
        ),
    ];

    let engine = Stkde::new(domain, bw).threads(threads);
    let mut reference: Option<Grid3<f64>> = None;
    println!(
        "{:<24} {:<20} {:>9}  {:>8}  verified",
        "role", "algorithm", "time", "speedup"
    );
    println!("{}", "-".repeat(72));
    let mut t_first = None;
    for (role, alg) in lineup {
        let t0 = Instant::now();
        let result = engine.clone().algorithm(alg).compute::<f64>(&points)?;
        let t = t0.elapsed().as_secs_f64();
        let ok = match &reference {
            None => {
                reference = Some(result.grid.clone());
                t_first = Some(t);
                true
            }
            Some(r) => stkde::core::validate::grids_agree(r, &result.grid, 1e-9, 1e-14),
        };
        println!(
            "{:<24} {:<20} {:>8.3}s  {:>7.2}x  {}",
            role,
            result.algorithm.to_string(),
            t,
            t_first.unwrap() / t,
            if ok { "yes" } else { "NO — BUG" }
        );
        assert!(ok, "{} disagrees with VB", result.algorithm);
    }
    println!("\nall algorithms agree with the gold standard (rtol 1e-9).");
    Ok(())
}
