//! Disease-outbreak analysis, after the paper's Dengue fever use case
//! (§1, Figure 1): compute the space-time density of an epidemic at two
//! bandwidth settings and compare what the analyst sees.
//!
//! The paper's Figure 1 contrasts `hs = 2500 m / ht = 14 days` (broad
//! regional trends) with `hs = 500 m / ht = 7 days` (street-level
//! clusters). This example reproduces that comparison on a synthetic Cali-
//! like outbreak, prints hotspot rankings, and writes PGM heatmaps.
//!
//! ```sh
//! cargo run --release --example disease_outbreak
//! ```

use stkde::prelude::*;
use stkde::ResultExt;

fn main() -> Result<(), StkdeError> {
    // Cali-like setting: ~15 km × 12 km urban area, two years of daily
    // case reports, 50 m spatial resolution.
    let extent = Extent::new([0.0, 0.0, 0.0], [15_000.0, 12_000.0, 730.0]);
    let domain = Domain::from_extent(extent, Resolution::new(100.0, 2.0));
    let cases = DatasetKind::Dengue.generate(11_056, extent, 2010);
    println!(
        "synthetic dengue surveillance: {} geocoded cases over {} days, grid {}",
        cases.len(),
        730,
        domain.dims()
    );

    for (label, hs, ht) in [
        ("broad   (hs=2500m, ht=14d)", 2_500.0, 14.0),
        ("focused (hs= 500m, ht= 7d)", 500.0, 7.0),
    ] {
        let result = Stkde::new(domain, Bandwidth::new(hs, ht))
            .algorithm(Algorithm::PbSymDd {
                decomp: Decomp::cubic(8),
            })
            .threads(2)
            .compute::<f32>(&cases)?;

        let stats = stkde::grid_stats(result.grid());
        println!(
            "\n=== {label} ===\n  algorithm {} | {} | occupancy {:.1}%",
            result.algorithm,
            result.timings,
            100.0 * stats.occupancy()
        );

        // Rank outbreak hotspots: the strongest voxels, deduplicated to
        // one report per neighborhood-week.
        let top = stkde::grid::stats::top_k(result.grid(), 500);
        let mut reported: Vec<(usize, usize, usize)> = Vec::new();
        println!("  top outbreak clusters:");
        for ((x, y, t), v) in top {
            let far_enough = reported.iter().all(|&(rx, ry, rt)| {
                let dx = (x as f64 - rx as f64) * domain.resolution().sres;
                let dy = (y as f64 - ry as f64) * domain.resolution().sres;
                let dt = (t as f64 - rt as f64) * domain.resolution().tres;
                (dx * dx + dy * dy).sqrt() > hs || dt.abs() > ht
            });
            if far_enough {
                let c = domain.voxel_center(x, y, t);
                println!(
                    "    ({:6.0} m, {:6.0} m) around day {:3.0}: density {v:.3e}",
                    c[0], c[1], c[2]
                );
                reported.push((x, y, t));
                if reported.len() == 3 {
                    break;
                }
            }
        }

        // Figure-1-style visualization: the peak week as a heatmap.
        let (_, _, peak_t) = stkde::grid::stats::top_k(result.grid(), 1)[0].0;
        let out = std::env::temp_dir().join(format!(
            "dengue_{}.pgm",
            if hs > 1000.0 { "broad" } else { "focused" }
        ));
        let max = stats.max;
        stkde::grid::io::write_slice_pgm(result.grid(), peak_t, max, &out).expect("write heatmap");
        println!("  heatmap of day {peak_t} written to {}", out.display());
        println!(
            "{}",
            stkde::grid::io::ascii_slice(result.grid(), peak_t, 64, 22)
        );
    }

    println!("note: broad bandwidths blur clusters into regional trends;");
    println!("focused bandwidths isolate street-level transmission foci.");
    Ok(())
}
