//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! Nothing in this workspace serializes today — the `#[derive(Serialize,
//! Deserialize)]` attributes on the domain types record *intent* (and keep
//! the door open for a real serde swap-in once the build environment has
//! network access). This shim therefore provides the two traits as
//! capability markers with no required methods, plus derive macros that
//! emit the corresponding marker impls. Swapping in real serde later is a
//! manifest-only change: the source-level API (`use serde::{Serialize,
//! Deserialize}` + derives) is identical.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
