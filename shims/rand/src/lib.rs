//! Offline stand-in for [rand](https://crates.io/crates/rand) 0.9.
//!
//! Implements the subset this workspace uses: `StdRng` (a xoshiro256++
//! generator seeded via SplitMix64, fully deterministic in the seed),
//! `SeedableRng::seed_from_u64`, and `Rng::random::<T>()` for primitive
//! `T`. Note the real `StdRng` is a CSPRNG with an unspecified stream —
//! code in this workspace never relies on a particular stream, only on
//! determinism for a fixed seed, which this shim guarantees.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values producible uniformly from an RNG via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing random-value methods (the rand 0.9 `Rng` shape).
pub trait Rng: RngCore {
    /// Draw a value of `T` from the standard-uniform distribution.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw a uniform value in `[range.start, range.end)`.
    fn random_range(&mut self, range: std::ops::Range<usize>) -> usize
    where
        Self: Sized,
    {
        assert!(!range.is_empty(), "cannot sample an empty range");
        let width = range.end - range.start;
        // Modulo bias is negligible for the widths used here (≪ 2^64).
        range.start + (self.next_u64() % width as u64) as usize
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic in the seed, `Clone` for replay.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
