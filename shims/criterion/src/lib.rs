//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the API shape the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box` — with
//! a deliberately simple measurement loop: warm up once, then run batches
//! until the measurement budget is spent and report the best mean batch
//! time. No statistics, plots, or outlier analysis; for real measurements
//! swap in crates.io criterion (the bench sources are API-compatible).
//!
//! Two environment knobs support the CI `bench-smoke` job:
//!
//! * `STKDE_BENCH_QUICK` — when set (non-empty, not `0`), caps every
//!   benchmark at 3 samples and a 250 ms measurement budget, the in-tree
//!   analogue of criterion's `--measurement-time 1`-style quick runs.
//!   The best-of-batches metric stays meaningful at low sample counts.
//! * `STKDE_BENCH_JSON` — path to append one JSON line per benchmark:
//!   `{"id":"<group>/<name>","best_s":<seconds>}`. The CI job collects
//!   the file as the `BENCH_ci.json` artifact and feeds it to the
//!   `bench_guard` regression check.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, name, self.sample_size, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("  {}", id.0),
            &format!("{}/{}", self.name, id.0),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            f,
        );
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, B, F>(&mut self, id: B, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        B: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Best observed mean seconds per iteration, if `iter` ran.
    best_s_per_iter: Option<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `f`, called in batches; records the best mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim each batch at ~1/sample_size of
        // the measurement budget.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(50));
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let per_batch = (budget.as_secs_f64() / self.sample_size.max(1) as f64 / once.as_secs_f64())
            .clamp(1.0, 1e9) as u64;

        let mut best = f64::INFINITY;
        let deadline = Instant::now() + budget;
        let mut batches = 0;
        while batches < self.sample_size || batches == 0 {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let mean = start.elapsed().as_secs_f64() / per_batch as f64;
            best = best.min(mean);
            batches += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_s_per_iter = Some(best);
    }

    /// Like [`Bencher::iter`], but re-runs `setup` before every timed call
    /// and excludes it from the measurement.
    pub fn iter_with_setup<S, O, SF, F>(&mut self, mut setup: SF, mut f: F)
    where
        SF: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let deadline = Instant::now() + budget;
        let mut best = f64::INFINITY;
        let mut batches = 0;
        while batches < self.sample_size || batches == 0 {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            best = best.min(start.elapsed().as_secs_f64());
            batches += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_s_per_iter = Some(best);
    }
}

fn format_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Is quick mode requested? (`STKDE_BENCH_QUICK` set, non-empty, not `0`)
fn quick_mode() -> bool {
    std::env::var("STKDE_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Append one JSONL record to `$STKDE_BENCH_JSON`, if configured.
fn record_json(id: &str, best_s: f64) {
    let Ok(path) = std::env::var("STKDE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let entry = format!(
        "{{\"id\":\"{}\",\"best_s\":{best_s:e}}}",
        id.replace(['"', '\\'], "_")
    );
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{entry}"))
    {
        Ok(()) => {}
        Err(e) => eprintln!("warning: could not record bench result to {path}: {e}"),
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let (sample_size, measurement_time) = if quick_mode() {
        (
            sample_size.min(3),
            measurement_time.min(Duration::from_millis(250)),
        )
    } else {
        (sample_size, measurement_time)
    };
    let mut b = Bencher {
        best_s_per_iter: None,
        sample_size,
        measurement_time,
    };
    f(&mut b);
    match b.best_s_per_iter {
        Some(best) => {
            println!("{label}: {}", format_time(best));
            record_json(id, best);
        }
        None => println!("{label}: (no measurement)"),
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.measurement_time(Duration::from_millis(20));
        group.bench_function("square", |b| b.iter(|| black_box(7u64).pow(2)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}
