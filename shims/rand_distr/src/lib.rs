//! Offline stand-in for [rand_distr](https://crates.io/crates/rand_distr),
//! providing the `Normal` distribution (via the Box–Muller transform) and
//! the `Distribution` trait — the subset the synthetic data generators use.

use rand::Rng;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng>(&self, rng: &mut R) -> T;
}

/// A normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    BadMean,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

impl Normal {
    /// Create `N(mean, std_dev²)`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::BadMean);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    /// Box–Muller: two uniforms give one standard normal deviate. (The
    /// second deviate is discarded to keep the sampler stateless; the
    /// extra uniform draw is irrelevant for this workspace's use.)
    fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u1: f64 = loop {
            let u: f64 = rng.random();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }
}
