//! Scheduler stress tests: hammer nested `join`/`scope` with imbalanced
//! task trees and panicking closures, asserting completion, panic
//! propagation, and no lost work. Runs in CI under the
//! `RAYON_NUM_THREADS` matrix (1, 2, 8), so every shape below must also
//! terminate on a single-worker pool.

use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic per-iteration "randomness".
fn mix(x: u64) -> u64 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// An intentionally lopsided join tree: every level sends ~1/8 of the
/// work one way and the rest the other, alternating sides, so static
/// splitting would idle half the pool. Returns the number of leaves.
fn imbalanced_tree(n: u64, depth: u32, salt: u64, hits: &AtomicUsize) -> u64 {
    if depth == 0 || n <= 1 {
        hits.fetch_add(1, Ordering::Relaxed);
        return 1;
    }
    let small = (n / 8).max(1);
    let (l, r) = if mix(salt).is_multiple_of(2) {
        (small, n - small)
    } else {
        (n - small, small)
    };
    let (a, b) = rayon::join(
        || imbalanced_tree(l, depth - 1, mix(salt ^ 1), hits),
        || imbalanced_tree(r, depth - 1, mix(salt ^ 2), hits),
    );
    a + b
}

#[test]
fn stress_nested_join_scope_and_panics_10k() {
    const ITERS: u64 = 10_000;
    let completed = AtomicUsize::new(0);
    for i in 0..ITERS {
        match i % 5 {
            // Imbalanced nested joins: all leaves must be visited.
            0 => {
                let hits = AtomicUsize::new(0);
                let leaves = imbalanced_tree(64, 6, i, &hits);
                assert_eq!(hits.load(Ordering::Relaxed), leaves as usize);
            }
            // Scope with nested spawns: no lost work.
            1 => {
                let count = AtomicUsize::new(0);
                rayon::scope(|s| {
                    for _ in 0..4 {
                        s.spawn(|s| {
                            count.fetch_add(1, Ordering::Relaxed);
                            s.spawn(|_| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
                assert_eq!(count.load(Ordering::Relaxed), 8);
            }
            // A panicking closure deep in a join tree: the panic must
            // surface, and the *other* side's work must not be lost.
            2 => {
                let done = AtomicUsize::new(0);
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    rayon::join(
                        || {
                            rayon::join(
                                || {
                                    done.fetch_add(1, Ordering::Relaxed);
                                },
                                || panic!("stress panic {i}"),
                            )
                        },
                        || {
                            done.fetch_add(1, Ordering::Relaxed);
                        },
                    );
                }));
                assert!(caught.is_err(), "iteration {i}: panic swallowed");
                assert_eq!(done.load(Ordering::Relaxed), 2, "iteration {i}");
            }
            // Panicking spawned task: scope must drain, then re-raise.
            3 => {
                let survivors = AtomicUsize::new(0);
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    rayon::scope(|s| {
                        s.spawn(|_| panic!("scope panic {i}"));
                        for _ in 0..3 {
                            s.spawn(|_| {
                                survivors.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }));
                assert!(caught.is_err(), "iteration {i}: scope panic swallowed");
                assert_eq!(survivors.load(Ordering::Relaxed), 3, "iteration {i}");
            }
            // Parallel iterator with skewed per-item cost.
            _ => {
                let acc = AtomicUsize::new(0);
                (0..32usize).into_par_iter().for_each(|k| {
                    // Heavy tail: item 0 does ~32x the work of the rest.
                    let reps = if k == 0 { 32 } else { 1 };
                    let mut x = i ^ k as u64;
                    for _ in 0..reps {
                        x = mix(x);
                    }
                    acc.fetch_add((x as usize & 7) + 1, Ordering::Relaxed);
                });
                assert!(acc.load(Ordering::Relaxed) >= 32);
            }
        }
        completed.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(completed.load(Ordering::Relaxed), ITERS as usize);

    // After 10k iterations of abuse (including ~4k propagated panics),
    // the shared pool must still schedule fresh work correctly.
    let v: Vec<usize> = (0..1000).into_par_iter().map(|x| x * 3).collect();
    assert_eq!(v, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
}

#[test]
fn stress_concurrent_external_callers() {
    // Several non-pool threads hammer the shared global registry at once:
    // injected operations must not interfere or deadlock.
    let results: Vec<u64> = std::thread::scope(|ts| {
        (0..4u64)
            .map(|t| {
                ts.spawn(move || {
                    let mut total = 0u64;
                    for i in 0..200 {
                        let hits = AtomicUsize::new(0);
                        total += imbalanced_tree(32, 5, t * 1000 + i, &hits);
                    }
                    total
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert!(results.iter().all(|&r| r > 0));
}
