//! The worker registry: long-lived named worker threads, one
//! work-stealing deque each, a FIFO injector for jobs arriving from
//! outside the pool, and a wakeup protocol for idle workers.
//!
//! Registries are cached per thread count for the lifetime of the
//! process: building a `ThreadPool` with a size that was used before is a
//! hash-map lookup, not a thread spawn. This is the core of the
//! "persistent pool" design — per-operation spawn cost is paid exactly
//! once per distinct pool size. The flip side (documented divergence from
//! upstream rayon): two pools of equal size share one worker set, and
//! dropping a `ThreadPool` does not stop its threads.

use crate::deque::{Deque, Steal};
use crate::job::{JobRef, LockLatch, SpinLatch, StackJob};
use crate::model::yield_point;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::ptr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Thread count used when none is configured: `RAYON_NUM_THREADS` if set
/// to a positive integer, else the machine's available parallelism.
pub(crate) fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n > 0 => n,
            // 0 or unset/unparsable: fall back to the hardware default,
            // matching upstream rayon's env-var semantics.
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// The sleep/wake protocol between work publishers and idle workers,
/// extracted so the model checker can drive the real code.
///
/// The protocol is Dekker-style: `epoch` is bumped on every publication
/// of work; a would-be sleeper registers in `sleepers`, takes an epoch
/// ticket, rescans for work, and only sleeps if the ticket is still
/// current under the condvar mutex. Either the publisher's fence + load
/// observes the registration (it bumps the epoch and notifies), or the
/// sleeper's post-registration rescan observes the push — a publication
/// is never lost in both directions. That claim is exactly what the
/// `stkde-analyze` sleep-gate scenarios exhaustively check through the
/// yield points below.
pub(crate) struct SleepGate {
    /// Bumped on every publication of work.
    epoch: AtomicUsize,
    /// Workers registered as going-to-sleep.
    sleepers: AtomicUsize,
    mutex: Mutex<()>,
    cv: Condvar,
}

impl SleepGate {
    pub(crate) fn new() -> Self {
        SleepGate {
            epoch: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            mutex: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Publish "there is new work" to sleeping workers.
    ///
    /// The fast path (everyone awake) is a fence plus one relaxed load,
    /// so the per-`join` push does not serialize busy workers on a
    /// shared cache line.
    pub(crate) fn notify(&self) {
        yield_point("gate::notify:fence");
        std::sync::atomic::fence(Ordering::SeqCst);
        yield_point("gate::notify:read_sleepers");
        // Relaxed is sound here because the SeqCst fence above orders
        // this load after the caller's work publication: see the
        // pairing argument on `prepare_park`.
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        #[cfg(feature = "obs")]
        obs::wake();
        yield_point("gate::notify:bump_epoch");
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let _guard = self.mutex.lock().unwrap();
        self.cv.notify_all();
    }

    /// Sleeper side, step 1: register as a sleeper and take the epoch
    /// ticket. The caller must rescan for work *after* this returns;
    /// the registration/rescan order pairs with `notify`'s fence/load —
    /// a push concurrent with going idle is either found by the rescan
    /// or wakes the sleeper.
    pub(crate) fn prepare_park(&self) -> usize {
        yield_point("gate::prepare:register");
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        // SC fence pairing with the one in `notify`: whichever fence is
        // ordered first, either the publisher's sleepers-load sees our
        // registration or our rescan sees its push.
        std::sync::atomic::fence(Ordering::SeqCst);
        yield_point("gate::prepare:read_epoch");
        self.epoch.load(Ordering::SeqCst)
    }

    /// Sleeper side, rescan found work: deregister without sleeping.
    pub(crate) fn cancel_park(&self) {
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Sleeper side, step 2: sleep unless the epoch moved past `ticket`.
    ///
    /// The wait is long, not infinite: idle churn is negligible at 2
    /// wakeups/s per worker, and the timeout heals any scheduling bug
    /// this shim might still hide instead of hanging the process.
    /// Deregisters the sleeper before returning.
    pub(crate) fn park(&self, ticket: usize, timeout: Duration) {
        {
            let guard = self.mutex.lock().unwrap();
            // Re-check under the lock: a publisher that bumped the epoch
            // after our rescan holds (or will take) this mutex to notify,
            // so it cannot slip between this check and the wait.
            if self.epoch.load(Ordering::SeqCst) == ticket {
                let _ = self.cv.wait_timeout(guard, timeout).unwrap();
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// `park`'s go/no-go decision without the wait: the under-lock epoch
    /// recheck, reporting whether this sleeper *would* block. Only the
    /// model checker calls this (through `rayon::model::TestSleepGate`),
    /// so a modeled sleeper can be asserted against without blocking the
    /// deterministic scheduler. Deregisters the sleeper, like `park`.
    #[cfg(feature = "model")]
    pub(crate) fn sleep_decision(&self, ticket: usize) -> bool {
        yield_point("gate::park:lock_recheck");
        let decision = {
            let _guard = self.mutex.lock().unwrap();
            self.epoch.load(Ordering::SeqCst) == ticket
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        decision
    }
}

/// A persistent set of worker threads plus the shared scheduling state.
pub(crate) struct Registry {
    size: usize,
    deques: Box<[Deque]>,
    /// FIFO queue for jobs injected by non-pool threads (`install`,
    /// top-level parallel operations, cross-pool calls).
    injector: Mutex<VecDeque<JobRef>>,
    /// Wakeup protocol for idle workers; see [`SleepGate`].
    gate: SleepGate,
}

/// Process-wide registry cache, keyed by worker count.
fn registry_cache() -> &'static Mutex<HashMap<usize, Arc<Registry>>> {
    static CACHE: OnceLock<Mutex<HashMap<usize, Arc<Registry>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The (lazily created) registry with `size` workers.
pub(crate) fn registry_with_threads(size: usize) -> Arc<Registry> {
    assert!(size > 0, "a registry needs at least one worker");
    let mut cache = registry_cache().lock().unwrap();
    cache
        .entry(size)
        .or_insert_with(|| Registry::spawn(size))
        .clone()
}

/// The registry parallel operations use when the calling thread is not a
/// pool worker.
pub(crate) fn global_registry() -> Arc<Registry> {
    registry_with_threads(default_threads())
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Registry {
    pub(crate) fn size(&self) -> usize {
        self.size
    }

    fn spawn(size: usize) -> Arc<Registry> {
        let registry = Arc::new(Registry {
            size,
            deques: (0..size).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            gate: SleepGate::new(),
        });
        for index in 0..size {
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                // Named so panics and profiler samples are attributable.
                .name(format!("stkde-worker-{index}"))
                .spawn(move || worker_main(registry, index))
                .expect("failed to spawn stkde worker thread");
        }
        registry
    }

    /// Publish "there is new work" to sleeping workers.
    pub(crate) fn notify_work(&self) {
        if self.size == 1 && in_registry(self) {
            // The only worker is the current thread; nobody to wake.
            return;
        }
        self.gate.notify();
    }

    /// Queue a job from outside the pool.
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.notify_work();
    }

    fn pop_injected(&self) -> Option<JobRef> {
        self.injector.lock().unwrap().pop_front()
    }

    /// Run `op` on a pool worker and block until it finishes, re-raising
    /// its panic on this thread. Must not be called from a worker of this
    /// same registry (that case runs inline in `ThreadPool::install`).
    pub(crate) fn run_blocking<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(LockLatch::default(), op);
        // SAFETY: the job lives on this stack and we block on its latch
        // below, so the ref cannot outlive it.
        let job_ref = unsafe { job.as_job_ref() };
        self.inject(job_ref);
        job.latch.wait();
        // SAFETY: latch set — the worker is done with the job.
        unsafe { job.take_result() }.into_return_value()
    }

    /// Park an idle worker: register as a sleeper, rescan once, then
    /// sleep through the [`SleepGate`]. Returns work if the rescan found
    /// some.
    fn idle_park(&self, worker: &WorkerThread) -> Option<JobRef> {
        let ticket = self.gate.prepare_park();
        if let Some(job) = worker.find_work(true) {
            self.gate.cancel_park();
            return Some(job);
        }
        #[cfg(feature = "obs")]
        obs::park();
        self.gate.park(ticket, Duration::from_millis(500));
        None
    }
}

/// Per-worker state, living on the worker thread's stack for its whole
/// life; the thread-local below points at it.
pub(crate) struct WorkerThread {
    registry: Arc<Registry>,
    index: usize,
    /// xorshift state for randomized steal order.
    rng: Cell<u64>,
    /// Cached per-worker metric handles (`worker="<index>"` labels).
    #[cfg(feature = "obs")]
    obs: obs::WorkerObs,
}

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(ptr::null()) };
}

/// Run `f` with the current thread's worker state, if it is a pool worker.
pub(crate) fn with_worker<T>(f: impl FnOnce(Option<&WorkerThread>) -> T) -> T {
    WORKER.with(|cell| {
        let ptr = cell.get();
        if ptr.is_null() {
            f(None)
        } else {
            // SAFETY: the pointee lives on this thread's own stack for the
            // thread's entire lifetime (set once in `worker_main`).
            f(Some(unsafe { &*ptr }))
        }
    })
}

/// Is the current thread a worker of `registry`?
pub(crate) fn in_registry(registry: &Registry) -> bool {
    with_worker(|w| w.is_some_and(|w| ptr::eq(Arc::as_ptr(&w.registry), registry)))
}

impl WorkerThread {
    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Push onto this worker's own deque and wake a thief.
    pub(crate) fn push(&self, job: JobRef) {
        // SAFETY: we are the owning worker of deque `index`.
        unsafe { self.registry.deques[self.index].push(job) };
        self.registry.notify_work();
    }

    /// Pop from this worker's own deque.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        // SAFETY: we are the owning worker of deque `index`.
        unsafe { self.registry.deques[self.index].pop() }
    }

    /// One job executed by this worker (no-op without `obs`).
    #[inline]
    fn note_task(&self) {
        #[cfg(feature = "obs")]
        self.obs.tasks.inc();
    }

    fn next_rand(&self) -> u64 {
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        x
    }

    /// Steal one job from some other worker; optionally also drain the
    /// injector. Waiters must pass `take_injected = false`: injected jobs
    /// are fresh top-level operations, and starting one while blocked on a
    /// latch would stack unrelated work (and its latencies) on this frame.
    fn find_work(&self, take_injected: bool) -> Option<JobRef> {
        if take_injected {
            if let Some(job) = self.registry.pop_injected() {
                return Some(job);
            }
        }
        let n = self.registry.size;
        loop {
            let mut contended = false;
            let start = (self.next_rand() % n.max(1) as u64) as usize;
            for k in 0..n {
                let victim = (start + k) % n;
                if victim == self.index {
                    continue;
                }
                match self.registry.deques[victim].steal() {
                    Steal::Success(job) => {
                        #[cfg(feature = "obs")]
                        self.obs.steals.inc();
                        return Some(job);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if take_injected {
                if let Some(job) = self.registry.pop_injected() {
                    return Some(job);
                }
            }
            if !contended {
                #[cfg(feature = "obs")]
                self.obs.steal_failures.inc();
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Work-stealing wait: execute useful work until `latch` is set.
    ///
    /// Helping is restricted to deque work (ours or stolen) — never the
    /// injector — so waiting can only run jobs that belong to in-flight
    /// parallel operations, which are guaranteed to complete.
    pub(crate) fn wait_until(&self, latch: &SpinLatch) {
        self.wait_while(|| !latch.probe());
    }

    /// Execute deque work until `cond` turns false, with escalating
    /// backoff while idle (spin → yield → micro-sleep) so a waiter on an
    /// oversubscribed host cedes the CPU to the thread it waits on.
    pub(crate) fn wait_while(&self, cond: impl Fn() -> bool) {
        let mut idle_rounds = 0u32;
        while cond() {
            if let Some(job) = self.pop().or_else(|| self.find_work(false)) {
                self.note_task();
                // SAFETY: a ref obtained from a deque is pending and alive.
                unsafe { job.execute() };
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                if idle_rounds < 32 {
                    std::hint::spin_loop();
                } else if idle_rounds < 128 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }
}

/// Main loop of a pool worker: drain own deque (LIFO), then steal or take
/// injected work, else sleep until new work is published.
fn worker_main(registry: Arc<Registry>, index: usize) {
    let worker = WorkerThread {
        registry,
        index,
        rng: Cell::new(0x9E37_79B9_7F4A_7C15 ^ (index as u64 + 1)),
        #[cfg(feature = "obs")]
        obs: obs::WorkerObs::new(index),
    };
    WORKER.with(|cell| cell.set(&worker));
    loop {
        if let Some(job) = worker.pop() {
            worker.note_task();
            // SAFETY: a ref obtained from a deque is pending and alive.
            unsafe { job.execute() };
            continue;
        }
        if let Some(job) = worker.find_work(true) {
            worker.note_task();
            // SAFETY: as above.
            unsafe { job.execute() };
            continue;
        }
        if let Some(job) = worker.registry.idle_park(&worker) {
            worker.note_task();
            // SAFETY: as above.
            unsafe { job.execute() };
        }
    }
    // Unreachable: registries live for the whole process (see module docs),
    // so workers never shut down; the OS reclaims them at exit.
}

/// Steal-pool observability (`obs` feature only): per-worker tallies of
/// steals / failed sweeps / executed jobs, plus global park and wake
/// counters. Each worker caches its own handles at spawn, so the hot
/// paths pay one `Relaxed` `fetch_add` on a worker-private cell —
/// nothing here touches the scheduling protocol.
#[cfg(feature = "obs")]
mod obs {
    use stkde_obs::names;

    /// Per-worker metric handles, labeled `worker="<index>"`.
    pub(super) struct WorkerObs {
        pub(super) steals: stkde_obs::Counter,
        pub(super) steal_failures: stkde_obs::Counter,
        pub(super) tasks: stkde_obs::Counter,
    }

    impl WorkerObs {
        pub(super) fn new(index: usize) -> Self {
            let idx = index.to_string();
            let labels: &[(&str, &str)] = &[("worker", idx.as_str())];
            let reg = stkde_obs::global();
            WorkerObs {
                steals: reg.counter(names::POOL_STEALS, labels),
                steal_failures: reg.counter(names::POOL_STEAL_FAILURES, labels),
                tasks: reg.counter(names::POOL_TASKS, labels),
            }
        }
    }

    /// A worker parked on the sleep gate.
    pub(super) fn park() {
        stkde_obs::counter!(names::POOL_PARKS).inc();
    }

    /// A publisher woke at least one sleeper.
    pub(super) fn wake() {
        stkde_obs::counter!(names::POOL_WAKES).inc();
    }
}
