//! A Chase–Lev work-stealing deque over `std` atomics.
//!
//! One deque per pool worker: the owner pushes and pops at the *bottom*
//! (LIFO — newest task first, best cache locality and the order `join`
//! relies on), thieves steal from the *top* (FIFO — oldest, i.e. largest,
//! pending subtree first).
//!
//! The implementation follows Chase & Lev (SPAA 2005) in the C11
//! formulation of Lê et al. (PPoPP 2013), with one simplification suited
//! to a long-lived pool: when the circular buffer grows, the retired
//! buffer is intentionally *leaked* instead of reclaimed through an epoch
//! scheme. A concurrent thief may still be reading the old buffer, and
//! leaking it makes that read trivially safe. Buffers double in size, so
//! the total leak per deque is bounded by twice the high-water mark —
//! a few kilobytes of `AtomicPtr` cells for realistic workloads.

use crate::job::JobRef;
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::job::JobHeader;

/// Power-of-two circular buffer of job pointers. Indexed by the unmasked
/// monotone `top`/`bottom` counters.
struct Buffer {
    cells: Box<[AtomicPtr<JobHeader>]>,
}

impl Buffer {
    fn new(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        Buffer {
            cells: (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
        }
    }

    #[inline]
    fn at(&self, index: isize) -> &AtomicPtr<JobHeader> {
        let mask = self.cells.len() as isize - 1;
        &self.cells[(index & mask) as usize]
    }
}

/// Result of a steal attempt.
pub(crate) enum Steal {
    /// Got a job.
    Success(JobRef),
    /// Deque observed empty.
    Empty,
    /// Lost a race; worth retrying.
    Retry,
}

/// The single-owner, multi-thief deque.
pub(crate) struct Deque {
    /// Steal end; monotonically increasing.
    top: AtomicIsize,
    /// Owner end; only the owner writes it outside the single-element race.
    bottom: AtomicIsize,
    buf: AtomicPtr<Buffer>,
}

// SAFETY: all fields are atomics; the owner-only contract of `push`/`pop`
// is enforced by the registry (each worker only touches its own bottom).
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

const INITIAL_CAP: usize = 64;

impl Deque {
    pub(crate) fn new() -> Self {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_CAP)))),
        }
    }

    /// Push at the bottom.
    ///
    /// # Safety
    /// Only the owning worker thread may call this.
    pub(crate) unsafe fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = &*self.buf.load(Ordering::Relaxed);
        if b - t >= buf.cells.len() as isize {
            buf = self.grow(b, t);
        }
        buf.at(b).store(job.0 as *mut JobHeader, Ordering::Relaxed);
        // The Release store of `bottom` publishes the cell write to thieves
        // that Acquire-load `bottom`.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the bottom (LIFO).
    ///
    /// # Safety
    /// Only the owning worker thread may call this.
    pub(crate) unsafe fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = &*self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // SeqCst fence: the `bottom` decrement must be globally visible
        // before we read `top`, so a concurrent thief and this pop cannot
        // both claim the same single remaining element.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = buf.at(b).load(Ordering::Relaxed);
            if t == b {
                // Single element: race against thieves via CAS on `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(JobRef(job));
            }
            Some(JobRef(job))
        } else {
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steal from the top (FIFO). Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // SeqCst fence pairs with the fence in `pop`: if our CAS below
        // succeeds, the owner's racing pop of the same element fails.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: `buf` always points at a live Buffer — retired buffers
        // are leaked, never freed, so a stale pointer still reads validly.
        let buf = unsafe { &*self.buf.load(Ordering::Acquire) };
        let job = buf.at(t).load(Ordering::Relaxed);
        // The value read above is only trusted if we win the CAS on `top`:
        // winning proves index `t` was not recycled (the owner cannot wrap
        // around onto cell `t & mask` without `top` first advancing).
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(JobRef(job))
        } else {
            Steal::Retry
        }
    }

    /// Double the buffer. Called by the owner from `push` when full.
    fn grow(&self, b: isize, t: isize) -> &Buffer {
        // SAFETY: owner-only path; the current buffer stays alive (leaked).
        let old = unsafe { &*self.buf.load(Ordering::Relaxed) };
        let new = Buffer::new(old.cells.len() * 2);
        for i in t..b {
            new.at(i)
                .store(old.at(i).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let ptr = Box::into_raw(Box::new(new));
        // Release so thieves that Acquire-load `buf` see the copied cells.
        self.buf.store(ptr, Ordering::Release);
        // `old` is leaked deliberately — see module docs.
        unsafe { &*ptr }
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Free the *current* buffer only; retired generations were leaked
        // by design. (In practice deques live as long as the process.)
        // SAFETY: exclusive access in drop.
        unsafe { drop(Box::from_raw(self.buf.load(Ordering::Relaxed))) };
    }
}
