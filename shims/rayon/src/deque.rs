//! A Chase–Lev work-stealing deque over `std` atomics.
//!
//! One deque per pool worker: the owner pushes and pops at the *bottom*
//! (LIFO — newest task first, best cache locality and the order `join`
//! relies on), thieves steal from the *top* (FIFO — oldest, i.e. largest,
//! pending subtree first).
//!
//! The implementation follows Chase & Lev (SPAA 2005) in the C11
//! formulation of Lê et al. (PPoPP 2013), with one simplification suited
//! to a long-lived pool, documented next.
//!
//! # The retired-buffer leak, as an invariant
//!
//! When the circular buffer grows, the retired buffer is intentionally
//! *leaked* instead of reclaimed through an epoch scheme. The safety
//! argument every `unsafe` deref of `self.buf` relies on:
//!
//! 1. **Publication**: `buf` only ever moves from one live `Buffer` to
//!    another via `grow`'s Release store; it is never nulled and never
//!    set to a freed allocation (retired buffers are leaked, the
//!    current one is freed only in `Drop`, which has `&mut self`).
//! 2. **Stale reads are safe**: a thief that loaded `buf` before a grow
//!    may read *cells* of the retired buffer. Those cells are never
//!    deallocated (leak), and the values it can observe at index `t`
//!    are only trusted after winning the CAS on `top` — which fails if
//!    the owner wrapped past `t`, so a stale cell value is never
//!    *used* unless it is still the live job for index `t`.
//! 3. **Bounded cost**: buffers double, so total leaked memory per
//!    deque is bounded by twice the high-water mark — one `AtomicPtr`
//!    cell per job slot, a few KiB for realistic workloads. Deques
//!    live as long as the process (the registry never drops workers),
//!    so "leak" here means "reclaimed at exit", not unbounded growth.
//!
//! This argument (and the fence pairing between `pop` and `steal`) is
//! model-checked: the `model` feature compiles yield points into every
//! racing access, and `stkde-analyze`'s deque scenarios exhaustively
//! explore the interleavings, including steal-during-grow.

use crate::job::JobRef;
use crate::model::yield_point;
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::job::JobHeader;

/// Power-of-two circular buffer of job pointers. Indexed by the unmasked
/// monotone `top`/`bottom` counters.
struct Buffer {
    cells: Box<[AtomicPtr<JobHeader>]>,
}

impl Buffer {
    fn new(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        Buffer {
            cells: (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
        }
    }

    #[inline]
    fn at(&self, index: isize) -> &AtomicPtr<JobHeader> {
        let mask = self.cells.len() as isize - 1;
        &self.cells[(index & mask) as usize]
    }
}

/// Result of a steal attempt.
pub(crate) enum Steal {
    /// Got a job.
    Success(JobRef),
    /// Deque observed empty.
    Empty,
    /// Lost a race; worth retrying.
    Retry,
}

/// The single-owner, multi-thief deque.
pub(crate) struct Deque {
    /// Steal end; monotonically increasing.
    top: AtomicIsize,
    /// Owner end; only the owner writes it outside the single-element race.
    bottom: AtomicIsize,
    buf: AtomicPtr<Buffer>,
}

// SAFETY: all fields are atomics; the owner-only contract of `push`/`pop`
// is enforced by the registry (each worker only touches its own bottom).
unsafe impl Send for Deque {}
// SAFETY: as above — shared access is mediated entirely by atomics.
unsafe impl Sync for Deque {}

const INITIAL_CAP: usize = 64;

impl Deque {
    pub(crate) fn new() -> Self {
        Self::with_capacity(INITIAL_CAP)
    }

    /// A deque with a chosen initial ring size. The model checker uses
    /// tiny capacities so growth races are reachable in a handful of
    /// ops; production deques start at [`INITIAL_CAP`].
    pub(crate) fn with_capacity(cap: usize) -> Self {
        assert!(
            cap.is_power_of_two(),
            "deque capacity must be a power of two"
        );
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(cap)))),
        }
    }

    /// Push at the bottom.
    ///
    /// # Safety
    /// Only the owning worker thread may call this.
    pub(crate) unsafe fn push(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        yield_point("deque::push:read_top");
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: `buf` always points at a live Buffer (module docs,
        // invariant 1); the owner is the only thread that replaces it.
        let mut buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        if b - t >= buf.cells.len() as isize {
            buf = self.grow(b, t);
        }
        yield_point("deque::push:write_cell");
        buf.at(b).store(job.0 as *mut JobHeader, Ordering::Relaxed);
        yield_point("deque::push:publish_bottom");
        // The Release store of `bottom` publishes the cell write to thieves
        // that Acquire-load `bottom`.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the bottom (LIFO).
    ///
    /// # Safety
    /// Only the owning worker thread may call this.
    pub(crate) unsafe fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: `buf` points at a live Buffer (module docs, invariant
        // 1); only the owner (this thread) can swap it.
        let buf = unsafe { &*self.buf.load(Ordering::Relaxed) };
        yield_point("deque::pop:take_bottom");
        self.bottom.store(b, Ordering::Relaxed);
        yield_point("deque::pop:fence");
        // SeqCst fence: the `bottom` decrement must be globally visible
        // before we read `top`, so a concurrent thief and this pop cannot
        // both claim the same single remaining element.
        fence(Ordering::SeqCst);
        yield_point("deque::pop:read_top");
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            yield_point("deque::pop:read_cell");
            let job = buf.at(b).load(Ordering::Relaxed);
            if t == b {
                yield_point("deque::pop:cas_top");
                // Single element: race against thieves via CAS on `top`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                yield_point("deque::pop:restore_bottom");
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(JobRef(job));
            }
            Some(JobRef(job))
        } else {
            yield_point("deque::pop:restore_bottom_empty");
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steal from the top (FIFO). Callable from any thread.
    pub(crate) fn steal(&self) -> Steal {
        yield_point("deque::steal:read_top");
        let t = self.top.load(Ordering::Acquire);
        // SeqCst fence pairs with the fence in `pop`: if our CAS below
        // succeeds, the owner's racing pop of the same element fails.
        fence(Ordering::SeqCst);
        yield_point("deque::steal:read_bottom");
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        yield_point("deque::steal:read_buf");
        // SAFETY: `buf` always points at a live Buffer — retired buffers
        // are leaked, never freed, so a stale pointer still reads validly
        // (module docs, invariants 1 and 2).
        let buf = unsafe { &*self.buf.load(Ordering::Acquire) };
        yield_point("deque::steal:read_cell");
        let job = buf.at(t).load(Ordering::Relaxed);
        yield_point("deque::steal:cas_top");
        // The value read above is only trusted if we win the CAS on `top`:
        // winning proves index `t` was not recycled (the owner cannot wrap
        // around onto cell `t & mask` without `top` first advancing).
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(JobRef(job))
        } else {
            Steal::Retry
        }
    }

    /// Double the buffer. Called by the owner from `push` when full.
    fn grow(&self, b: isize, t: isize) -> &Buffer {
        // SAFETY: owner-only path (called from `push`); the current
        // buffer stays alive — retired generations are leaked, never
        // freed (module docs, invariant 1).
        let old = unsafe { &*self.buf.load(Ordering::Relaxed) };
        let new = Buffer::new(old.cells.len() * 2);
        for i in t..b {
            yield_point("deque::grow:copy_cell");
            new.at(i)
                .store(old.at(i).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let ptr = Box::into_raw(Box::new(new));
        yield_point("deque::grow:publish_buf");
        // Release so thieves that Acquire-load `buf` see the copied cells.
        self.buf.store(ptr, Ordering::Release);
        // `old` is leaked deliberately — see module docs.
        // SAFETY: `ptr` was just created from a live Box and published;
        // nothing can free it (only Drop does, with exclusive access).
        unsafe { &*ptr }
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Free the *current* buffer only; retired generations were leaked
        // by design. (In practice deques live as long as the process.)
        // SAFETY: exclusive access in drop; `buf` holds the pointer of
        // the live Buffer `grow` last published (or the initial one).
        unsafe { drop(Box::from_raw(self.buf.load(Ordering::Relaxed))) };
    }
}
