//! Offline stand-in for [rayon](https://crates.io/crates/rayon), built on
//! a persistent work-stealing runtime.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors an honest implementation of the rayon API surface it
//! actually uses: slice/range parallel iterators (`par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`, `into_par_iter`), the
//! `map`/`enumerate`/`for_each`/`for_each_init`/`reduce`/`sum`/`collect`
//! combinators, [`join`], [`scope`], and `ThreadPool`/`ThreadPoolBuilder`
//! with `install`.
//!
//! # Execution model
//!
//! Earlier versions of this shim spawned fresh `std::thread::scope`
//! threads per operation and split ranges evenly — so both spawn overhead
//! and load imbalance were paid on every hot call. The current design is
//! a scaled-down rayon:
//!
//! * **Persistent workers.** A registry of long-lived, named
//!   (`stkde-worker-N`) threads is created lazily per pool size and
//!   cached for the life of the process. The default size comes from
//!   `RAYON_NUM_THREADS` (positive integer) or the machine's available
//!   parallelism.
//! * **Chase–Lev deques.** Each worker owns a lock-free deque (`std`
//!   atomics only): the owner pushes/pops LIFO at the bottom, idle
//!   workers steal FIFO from the top in random victim order. Retired
//!   ring buffers are leaked on growth instead of epoch-reclaimed — a
//!   bounded cost that makes concurrent steals trivially safe.
//! * **Adaptive splitting.** Consuming combinators split their iterator
//!   until about `4 × workers` pieces exist (binary splitting via
//!   [`join`]), then stealing balances whatever imbalance remains —
//!   the dynamic scheduling the `PB-SYM-PD` parity-class task lists
//!   need. Piece results are still combined in index order, so
//!   `collect`/`reduce` stay deterministic for a fixed split budget.
//! * **Real `join`.** `join(a, b)` pushes `a` as a stealable job and
//!   runs `b` inline; if `a` is not stolen it is popped back and run
//!   inline too (one push/pop of overhead), otherwise the waiter
//!   executes other pending deque work until `a`'s latch is set.
//!   Panics are captured per job and re-raised on the joining side,
//!   through arbitrarily nested joins.
//! * **Pinned `install`.** `ThreadPool::install(op)` runs `op` *on* a
//!   worker of that pool (injected through a FIFO queue and awaited on a
//!   latch), so every parallel operation inside — and the ambient
//!   [`current_num_threads`] — is scoped to that pool's worker set. A
//!   panic inside `op` propagates out of `install`; the worker survives.
//!
//! # Documented divergences from upstream rayon
//!
//! * Pools of equal size share one cached worker set, and dropping a
//!   `ThreadPool` does not stop its threads (they are reclaimed at
//!   process exit). Building a pool of a previously seen size is a map
//!   lookup, not a thread spawn.
//! * `ThreadPoolBuilder::num_threads(0)` is rejected with an error from
//!   `build()` instead of silently meaning "default"; leave the builder
//!   untouched to get the default.
//! * `join(a, b)` runs `b` (not `a`) inline first; both closures still
//!   complete before `join` returns, so only first-panic precedence
//!   differs.
//! * `for_each_init` runs one `init()` per sequential piece (the state
//!   still never crosses threads).

mod deque;
mod job;
mod join;
pub mod model;
mod registry;
mod scope;

pub use join::join;
pub use scope::{scope, Scope};

use registry::{default_threads, in_registry, registry_with_threads, with_worker, Registry};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Thread-count plumbing and pools.
// ---------------------------------------------------------------------------

/// The number of workers parallel operations on this thread will use: the
/// current pool's size on a worker thread (e.g. inside
/// [`ThreadPool::install`]), the global default otherwise.
pub fn current_num_threads() -> usize {
    with_worker(|w| w.map(|w| w.registry().size())).unwrap_or_else(default_threads)
}

/// How many pieces consuming combinators aim to split into: a few pieces
/// per worker so stealing can correct imbalance without drowning in
/// per-piece overhead.
fn split_budget() -> usize {
    4 * current_num_threads()
}

/// A handle to a persistent set of worker threads. Operations run under
/// [`ThreadPool::install`] execute on — and split across — exactly this
/// pool's workers.
#[derive(Debug)]
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// The parallelism degree of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.size()
    }

    /// Run `op` on a worker of this pool and return its result, blocking
    /// the calling thread meanwhile. Parallel operations inside `op` are
    /// scheduled on this pool's workers. If `op` panics, the panic is
    /// re-raised here; the worker is unaffected.
    ///
    /// Calling `install` from a worker of this same pool runs `op`
    /// inline.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if in_registry(&self.registry) {
            op()
        } else {
            self.registry.run_blocking(op)
        }
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count. Zero is rejected by [`build`](Self::build);
    /// don't call `num_threads` at all to get the default
    /// (`RAYON_NUM_THREADS` or the hardware parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Build (or fetch the cached) pool.
    ///
    /// # Errors
    /// Fails if `num_threads(0)` was requested explicitly.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) => {
                return Err(ThreadPoolBuildError(
                    "num_threads(0) is invalid: omit num_threads() to use the default",
                ))
            }
            Some(n) => n,
            None => default_threads(),
        };
        Ok(ThreadPool {
            registry: registry_with_threads(threads),
        })
    }
}

/// Error building a [`ThreadPool`].
#[derive(Debug)]
pub struct ThreadPoolBuildError(&'static str);

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

// ---------------------------------------------------------------------------
// The core trait: a splittable, exactly-sized source of items.
// ---------------------------------------------------------------------------

/// A parallel iterator: an exactly-sized item source that can be split at
/// an index and driven sequentially piece by piece.
pub trait ParallelIterator: Sized + Send {
    /// The item type.
    type Item: Send;

    /// Exact number of remaining items.
    fn par_len(&self) -> usize;

    /// Split into `[0, at)` and `[at, len)`.
    fn split_at(self, at: usize) -> (Self, Self);

    /// Push every item into `f`, sequentially and in order.
    fn drive<F: FnMut(Self::Item)>(self, f: &mut F);

    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_pieces(self, split_budget(), &|piece: Self| {
            piece.drive(&mut |item| f(item));
        });
    }

    /// Run `f` on every item with one `init()` state per sequential piece
    /// (rayon initializes per rayon-job; per-piece is the same contract:
    /// the state is never shared across threads).
    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) + Send + Sync,
    {
        run_pieces(self, split_budget(), &|piece: Self| {
            let mut state = init();
            piece.drive(&mut |item| f(&mut state, item));
        });
    }

    /// Fold to a single value: each piece folds sequentially from
    /// `identity()`, then piece results are combined left-to-right — so the
    /// result is deterministic for a fixed split budget.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let parts = run_pieces(self, split_budget(), &|piece: Self| {
            let mut acc = identity();
            piece.drive(&mut |item| {
                let prev = std::mem::replace(&mut acc, identity());
                acc = op(prev, item);
            });
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts = run_pieces(self, split_budget(), &|piece: Self| {
            let mut items = Vec::with_capacity(piece.par_len());
            piece.drive(&mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }

    /// Number of items (consuming, to mirror rayon).
    fn count(self) -> usize {
        self.par_len()
    }

    /// Collect into a container, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion from a parallel iterator, order-preserving.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the items of `p`.
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let parts = run_pieces(p, split_budget(), &|piece: P| {
            let mut v = Vec::with_capacity(piece.par_len());
            piece.drive(&mut |item| v.push(item));
            v
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Adaptive binary fork-join: split `p` into ~`pieces` contiguous pieces
/// via nested [`join`] (each split point stealable, so idle workers pick
/// up whole subtrees), run `leaf` on each, and return leaf results in
/// piece order. Panics from leaves are re-raised with their original
/// payload.
fn run_pieces<P, R>(p: P, pieces: usize, leaf: &(impl Fn(P) -> R + Sync)) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
{
    if pieces <= 1 || p.par_len() <= 1 {
        return vec![leaf(p)];
    }
    // Split items proportionally to the piece budget on each side, so every
    // leaf ends up with ~len/pieces items even for non-power-of-two piece
    // counts (a 50/50 item split would hand one leaf up to half the items).
    let left_pieces = pieces.div_ceil(2);
    let mid = (p.par_len() * left_pieces / pieces).clamp(1, p.par_len() - 1);
    let (a, b) = p.split_at(mid);
    let (mut left, right) = join(
        move || run_pieces(a, left_pieces, leaf),
        move || run_pieces(b, pieces - left_pieces, leaf),
    );
    left.extend(right);
    left
}

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(at);
        (Iter { slice: a }, Iter { slice: b })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.slice {
            f(item);
        }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(at);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.slice {
            f(item);
        }
    }
}

/// Parallel iterator over `size`-element chunks of `&[T]`.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync + 'a> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let split = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(split);
        (
            Chunks {
                slice: a,
                size: self.size,
            },
            Chunks {
                slice: b,
                size: self.size,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks(self.size) {
            f(chunk);
        }
    }
}

/// Parallel iterator over `size`-element chunks of `&mut [T]`.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send + 'a> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let split = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(split);
        (
            ChunksMut {
                slice: a,
                size: self.size,
            },
            ChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks_mut(self.size) {
            f(chunk);
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = self.range.start + at.min(self.range.len());
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for i in self.range {
            f(i);
        }
    }
}

/// Owning parallel iterator over a `Vec<T>`.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, at: usize) -> (Self, Self) {
        let tail = self.vec.split_off(at);
        (self, VecIter { vec: tail })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.vec {
            f(item);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// Mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, R, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Send + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(at);
        (
            Map {
                base: a,
                f: Arc::clone(&self.f),
            },
            Map { base: b, f: self.f },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, g: &mut G) {
        let f = &self.f;
        self.base.drive(&mut |item| g(f(item)));
    }
}

/// Index-tagged parallel iterator (see [`ParallelIterator::enumerate`]).
pub struct Enumerate<S> {
    base: S,
    offset: usize,
}

impl<S: ParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(at);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + at,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        let mut i = self.offset;
        self.base.drive(&mut |item| {
            f((i, item));
            i += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (the `prelude` surface).
// ---------------------------------------------------------------------------

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed parallel iterator type.
    type Iter: ParallelIterator;
    /// Iterate shared references in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// `.par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutable parallel iterator type.
    type Iter: ParallelIterator;
    /// Iterate unique references in parallel.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { slice: self }
    }
}

/// `.par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        Chunks { slice: self, size }
    }
}

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `size`-element mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut { slice: self, size }
    }
}

/// `.into_par_iter()` on owning sources.
pub trait IntoParallelIterator {
    /// The owning parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

/// The traits needed to call parallel-iterator methods.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let n = AtomicUsize::new(0);
        let data = vec![1usize; 4096];
        data.par_iter().for_each(|&x| {
            n.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn chunks_mut_enumerate_offsets() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ci * 64 + i;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn reduce_matches_sequential() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let s = data
            .par_chunks(128)
            .map(|c| c.iter().sum::<f64>())
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(s, data.iter().sum::<f64>());
    }

    #[test]
    fn install_runs_on_pool_worker() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
        let name = pool.install(|| std::thread::current().name().map(str::to_owned));
        let name = name.expect("worker threads are named");
        assert!(
            name.starts_with("stkde-worker-"),
            "unexpected worker name {name}"
        );
    }

    #[test]
    fn install_propagates_panics_and_pool_survives() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("install boom")));
        assert!(caught.is_err());
        // The worker that ran the panicking closure must still serve work.
        for _ in 0..4 {
            assert_eq!(pool.install(|| 6 * 7), 42);
        }
    }

    #[test]
    fn zero_threads_is_a_build_error() {
        let err = crate::ThreadPoolBuilder::new().num_threads(0).build();
        assert!(err.is_err());
        let msg = format!("{}", err.unwrap_err());
        assert!(msg.contains("num_threads(0)"), "unhelpful error: {msg}");
    }

    #[test]
    fn equal_sized_pools_share_workers() {
        let a = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let b = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let id_a = a.install(|| std::thread::current().id());
        // Drain possible interleavings: with 2 shared workers, b's ops run
        // on the same thread set as a's.
        let mut seen_shared = false;
        for _ in 0..32 {
            let id_b = b.install(|| std::thread::current().id());
            if id_b == id_a {
                seen_shared = true;
                break;
            }
        }
        assert!(seen_shared, "pools of equal size should share a worker set");
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = crate::join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_joins_compute_correctly() {
        fn sum(range: std::ops::Range<u64>) -> u64 {
            if range.end - range.start <= 8 {
                return range.sum();
            }
            let mid = range.start + (range.end - range.start) / 2;
            let (a, b) = crate::join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        assert_eq!(sum(0..10_000), 10_000 * 9_999 / 2);
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        for side in 0..2 {
            let caught = std::panic::catch_unwind(|| {
                crate::join(
                    || {
                        if side == 0 {
                            panic!("left boom")
                        }
                    },
                    || {
                        if side == 1 {
                            panic!("right boom")
                        }
                    },
                );
            });
            assert!(caught.is_err(), "side {side} panic lost");
        }
    }

    #[test]
    fn scope_spawn_runs_all_tasks_with_borrows() {
        let counter = AtomicUsize::new(0);
        crate::scope(|s| {
            for _ in 0..64 {
                s.spawn(|s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    // Nested spawn borrowing the same counter.
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn scope_propagates_spawned_panics() {
        let caught = std::panic::catch_unwind(|| {
            crate::scope(|s| {
                s.spawn(|_| panic!("spawned boom"));
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            (0..100usize).into_par_iter().for_each(|i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }
}
