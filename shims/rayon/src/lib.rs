//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a small, honest implementation of the rayon API
//! surface it actually uses: slice/range parallel iterators (`par_iter`,
//! `par_iter_mut`, `par_chunks`, `par_chunks_mut`, `into_par_iter`), the
//! `map`/`enumerate`/`for_each`/`for_each_init`/`reduce`/`sum`/`collect`
//! combinators, and `ThreadPool`/`ThreadPoolBuilder` with `install`.
//!
//! Work really is executed on multiple OS threads: every consuming
//! combinator splits its iterator into as many contiguous pieces as the
//! ambient thread count and runs the pieces under `std::thread::scope`
//! via recursive binary splitting (a simplified fork-join). Unlike real
//! rayon there is no work stealing, so load balancing is purely static —
//! good enough for the chunked loops this workspace runs, and trivially
//! deterministic: ordered combinators (`collect`, `reduce`) combine piece
//! results in index order.

use std::cell::Cell;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Thread-count plumbing (`ThreadPool::install` sets an ambient count).
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    AMBIENT_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// A logical thread pool: a target parallelism degree for the closures run
/// under [`ThreadPool::install`]. Threads are spawned per operation (scoped),
/// not kept resident.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The parallelism degree of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's thread count as the ambient parallelism.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                AMBIENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(AMBIENT_THREADS.with(|c| c.replace(Some(self.threads))));
        op()
    }
}

/// Builder for [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the thread count (`0` means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Build the pool. Never fails in this shim; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// Error building a [`ThreadPool`] (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

// ---------------------------------------------------------------------------
// The core trait: a splittable, exactly-sized source of items.
// ---------------------------------------------------------------------------

/// A parallel iterator: an exactly-sized item source that can be split at
/// an index and driven sequentially piece by piece.
pub trait ParallelIterator: Sized + Send {
    /// The item type.
    type Item: Send;

    /// Exact number of remaining items.
    fn par_len(&self) -> usize;

    /// Split into `[0, at)` and `[at, len)`.
    fn split_at(self, at: usize) -> (Self, Self);

    /// Push every item into `f`, sequentially and in order.
    fn drive<F: FnMut(Self::Item)>(self, f: &mut F);

    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pair each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Run `f` on every item, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        run_pieces(self, current_num_threads(), &|piece: Self| {
            piece.drive(&mut |item| f(item));
        });
    }

    /// Run `f` on every item with one `init()` state per sequential piece
    /// (rayon initializes per rayon-job; per-piece is the same contract:
    /// the state is never shared across threads).
    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        INIT: Fn() -> T + Send + Sync,
        F: Fn(&mut T, Self::Item) + Send + Sync,
    {
        run_pieces(self, current_num_threads(), &|piece: Self| {
            let mut state = init();
            piece.drive(&mut |item| f(&mut state, item));
        });
    }

    /// Fold to a single value: each piece folds sequentially from
    /// `identity()`, then piece results are combined left-to-right — so the
    /// result is deterministic for a fixed thread count.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let parts = run_pieces(self, current_num_threads(), &|piece: Self| {
            let mut acc = identity();
            piece.drive(&mut |item| {
                let prev = std::mem::replace(&mut acc, identity());
                acc = op(prev, item);
            });
            acc
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// Sum all items.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts = run_pieces(self, current_num_threads(), &|piece: Self| {
            let mut items = Vec::with_capacity(piece.par_len());
            piece.drive(&mut |item| items.push(item));
            items.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }

    /// Number of items (consuming, to mirror rayon).
    fn count(self) -> usize {
        self.par_len()
    }

    /// Collect into a container, preserving item order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion from a parallel iterator, order-preserving.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build `Self` from the items of `p`.
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        let parts = run_pieces(p, current_num_threads(), &|piece: P| {
            let mut v = Vec::with_capacity(piece.par_len());
            piece.drive(&mut |item| v.push(item));
            v
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// Recursive binary fork-join: split `p` into ~`pieces` contiguous pieces,
/// run `leaf` on each under scoped threads, and return leaf results in
/// piece order. Panics from leaves are re-raised with their original
/// payload.
fn run_pieces<P, R>(p: P, pieces: usize, leaf: &(impl Fn(P) -> R + Sync)) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
{
    if pieces <= 1 || p.par_len() <= 1 {
        return vec![leaf(p)];
    }
    // Split items proportionally to the piece budget on each side, so every
    // leaf ends up with ~len/pieces items even for non-power-of-two piece
    // counts (a 50/50 item split would hand one leaf up to half the items).
    let left_pieces = pieces.div_ceil(2);
    let mid = (p.par_len() * left_pieces / pieces).clamp(1, p.par_len() - 1);
    let (a, b) = p.split_at(mid);
    let (mut left, right) = std::thread::scope(|scope| {
        let handle = scope.spawn(move || run_pieces(a, left_pieces, leaf));
        let right = run_pieces(b, pieces - left_pieces, leaf);
        let left = match handle.join() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (left, right)
    });
    left.extend(right);
    left
}

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(at);
        (Iter { slice: a }, Iter { slice: b })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.slice {
            f(item);
        }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(at);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.slice {
            f(item);
        }
    }
}

/// Parallel iterator over `size`-element chunks of `&[T]`.
pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync + 'a> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let split = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(split);
        (
            Chunks {
                slice: a,
                size: self.size,
            },
            Chunks {
                slice: b,
                size: self.size,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks(self.size) {
            f(chunk);
        }
    }
}

/// Parallel iterator over `size`-element chunks of `&mut [T]`.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send + 'a> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let split = (at * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(split);
        (
            ChunksMut {
                slice: a,
                size: self.size,
            },
            ChunksMut {
                slice: b,
                size: self.size,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for chunk in self.slice.chunks_mut(self.size) {
            f(chunk);
        }
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.range.len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let mid = self.range.start + at.min(self.range.len());
        (
            RangeIter {
                range: self.range.start..mid,
            },
            RangeIter {
                range: mid..self.range.end,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for i in self.range {
            f(i);
        }
    }
}

/// Owning parallel iterator over a `Vec<T>`.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, at: usize) -> (Self, Self) {
        let tail = self.vec.split_off(at);
        (self, VecIter { vec: tail })
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        for item in self.vec {
            f(item);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// Mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, R, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Send + Sync,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(at);
        (
            Map {
                base: a,
                f: Arc::clone(&self.f),
            },
            Map { base: b, f: self.f },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, g: &mut G) {
        let f = &self.f;
        self.base.drive(&mut |item| g(f(item)));
    }
}

/// Index-tagged parallel iterator (see [`ParallelIterator::enumerate`]).
pub struct Enumerate<S> {
    base: S,
    offset: usize,
}

impl<S: ParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn split_at(self, at: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(at);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + at,
            },
        )
    }

    fn drive<F: FnMut(Self::Item)>(self, f: &mut F) {
        let mut i = self.offset;
        self.base.drive(&mut |item| {
            f((i, item));
            i += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (the `prelude` surface).
// ---------------------------------------------------------------------------

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed parallel iterator type.
    type Iter: ParallelIterator;
    /// Iterate shared references in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// `.par_iter_mut()` on borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutable parallel iterator type.
    type Iter: ParallelIterator;
    /// Iterate unique references in parallel.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { slice: self }
    }
}

/// `.par_chunks()` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        Chunks { slice: self, size }
    }
}

/// `.par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `size`-element mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut { slice: self, size }
    }
}

/// `.into_par_iter()` on owning sources.
pub trait IntoParallelIterator {
    /// The owning parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The item type.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

/// The traits needed to call parallel-iterator methods.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let n = AtomicUsize::new(0);
        let data = vec![1usize; 4096];
        data.par_iter().for_each(|&x| {
            n.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4096);
    }

    #[test]
    fn chunks_mut_enumerate_offsets() {
        let mut data = vec![0usize; 1000];
        data.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = ci * 64 + i;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn reduce_matches_sequential() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let s = data
            .par_chunks(128)
            .map(|c| c.iter().sum::<f64>())
            .reduce(|| 0.0, |a, b| a + b);
        assert_eq!(s, data.iter().sum::<f64>());
    }

    #[test]
    fn install_sets_ambient_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(crate::current_num_threads), 3);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            (0..100usize).into_par_iter().for_each(|i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        });
        assert!(caught.is_err());
    }
}
