//! Instrumentation seam for the `stkde-analyze` concurrency model
//! checker.
//!
//! The scheduler internals (`deque.rs`, the registry's `SleepGate`)
//! call [`yield_point`] immediately before every shared-memory access
//! that participates in a cross-thread race. Without the `model`
//! feature the call compiles to nothing. With it, the call consults a
//! *thread-local* hook: threads spawned by the model checker install a
//! hook that parks the thread until the checker's deterministic
//! scheduler grants the next step, which is what turns "which thread
//! wins this CAS" into an enumerable choice. Threads without a hook
//! (the real worker pool, even in instrumented builds) pay one
//! thread-local read per yield point and continue immediately.
//!
//! The `model` module also re-exports thin facades over the otherwise
//! crate-private internals so the checker can drive the *real*
//! implementations rather than a port: [`TestDeque`] over the Chase–Lev
//! deque and [`TestSleepGate`] over the registry's sleep/wake protocol
//! (with the blocking condvar wait split off, so a modeled sleeper can
//! ask "would I sleep now?" without actually blocking).

#[cfg(not(feature = "model"))]
#[inline(always)]
pub(crate) fn yield_point(_label: &'static str) {}

#[cfg(feature = "model")]
pub(crate) fn yield_point(label: &'static str) {
    imp::yield_point(label)
}

#[cfg(feature = "model")]
mod imp {
    use std::cell::RefCell;

    type Hook = Box<dyn Fn(&'static str)>;

    thread_local! {
        static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
    }

    pub(super) fn yield_point(label: &'static str) {
        HOOK.with(|h| {
            // `try_borrow`: a hook that itself trips a yield point (e.g.
            // by touching an instrumented structure) must not re-enter.
            if let Ok(guard) = h.try_borrow() {
                if let Some(hook) = guard.as_ref() {
                    hook(label);
                }
            }
        });
    }

    /// Install this thread's scheduler hook; model-checker threads call
    /// this first thing.
    pub fn set_yield_hook(hook: Hook) {
        HOOK.with(|h| *h.borrow_mut() = Some(hook));
    }

    /// Remove this thread's hook (end of a model run).
    pub fn clear_yield_hook() {
        HOOK.with(|h| *h.borrow_mut() = None);
    }
}

#[cfg(feature = "model")]
pub use facade::*;

#[cfg(feature = "model")]
mod facade {
    use crate::deque::{Deque, Steal};
    use crate::job::{JobHeader, JobRef};
    use crate::registry::SleepGate;

    pub use super::imp::{clear_yield_hook, set_yield_hook};

    /// Outcome of a [`TestDeque::steal`], with the job pointer decoded
    /// back to the caller's token.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TestSteal {
        Success(usize),
        Empty,
        Retry,
    }

    /// The real Chase–Lev deque, trafficking in opaque nonzero `usize`
    /// tokens instead of live jobs. Tokens are cast to job pointers and
    /// back without ever being dereferenced, so a token of `0` coming
    /// *out* of the deque would expose a lost-initialization bug (a
    /// thief reading a cell the owner never published).
    pub struct TestDeque {
        inner: Deque,
    }

    impl Default for TestDeque {
        fn default() -> Self {
            Self::new()
        }
    }

    impl TestDeque {
        pub fn new() -> Self {
            TestDeque {
                inner: Deque::new(),
            }
        }

        /// A deque whose initial ring holds only `cap` slots, so growth
        /// scenarios need `cap + 1` pushes instead of 65.
        pub fn with_capacity(cap: usize) -> Self {
            TestDeque {
                inner: Deque::with_capacity(cap),
            }
        }

        /// Push `token` at the owner end.
        ///
        /// # Safety
        /// Owner-only, like [`Deque::push`]: the scenario must route all
        /// push/pop calls through a single model thread. `token` must be
        /// nonzero (zero is reserved to surface uninitialized cells).
        pub unsafe fn push(&self, token: usize) {
            assert_ne!(token, 0, "token 0 is reserved for lost-init detection");
            // SAFETY: caller upholds the owner-only contract; the token
            // is never dereferenced as a pointer by the deque.
            unsafe { self.inner.push(JobRef(token as *const JobHeader)) };
        }

        /// Pop from the owner end.
        ///
        /// # Safety
        /// Owner-only, like [`Deque::pop`].
        pub unsafe fn pop(&self) -> Option<usize> {
            // SAFETY: caller upholds the owner-only contract.
            unsafe { self.inner.pop() }.map(|j| j.0 as usize)
        }

        /// Steal from the top; callable from any model thread.
        pub fn steal(&self) -> TestSteal {
            match self.inner.steal() {
                Steal::Success(j) => TestSteal::Success(j.0 as usize),
                Steal::Empty => TestSteal::Empty,
                Steal::Retry => TestSteal::Retry,
            }
        }

        /// Drain every remaining token. Takes `&mut self`: exclusive
        /// access is the owner contract, checked by the compiler — used
        /// by scenario post-checks for conservation accounting.
        pub fn drain(&mut self) -> Vec<usize> {
            let mut out = Vec::new();
            // SAFETY: `&mut self` proves no other thread touches the
            // deque during the drain.
            while let Some(v) = unsafe { self.inner.pop() }.map(|j| j.0 as usize) {
                out.push(v);
            }
            out
        }
    }

    /// The real sleep/wake protocol, with the condvar wait factored out:
    /// [`would_sleep`](Self::would_sleep) performs `park`'s under-lock
    /// epoch recheck and reports the verdict instead of blocking, so the
    /// model checker can assert "a published wakeup is never lost"
    /// without ever putting a model thread to sleep.
    pub struct TestSleepGate {
        inner: SleepGate,
    }

    impl Default for TestSleepGate {
        fn default() -> Self {
            Self::new()
        }
    }

    impl TestSleepGate {
        pub fn new() -> Self {
            TestSleepGate {
                inner: SleepGate::new(),
            }
        }

        /// Publisher side: publish "new work exists".
        pub fn notify(&self) {
            self.inner.notify();
        }

        /// Sleeper side: register as a sleeper and take the epoch
        /// ticket that must still match for sleep to be admissible.
        pub fn prepare_park(&self) -> usize {
            self.inner.prepare_park()
        }

        /// Sleeper side: the rescan found work; deregister.
        pub fn cancel_park(&self) {
            self.inner.cancel_park();
        }

        /// Sleeper side: `park`'s go-to-sleep decision (the under-lock
        /// epoch recheck), without the wait. Deregisters the sleeper
        /// either way, like `park` does.
        pub fn would_sleep(&self, ticket: usize) -> bool {
            self.inner.sleep_decision(ticket)
        }
    }
}
