//! Type-erased units of work and the latches that signal their completion.
//!
//! A job is a single pointer to a struct whose first field is a
//! [`JobHeader`] holding the monomorphized execute function — the same
//! one-word erasure real rayon uses, so a [`JobRef`] fits in one
//! `AtomicPtr` cell of the work-stealing deque.
//!
//! Two concrete job kinds exist:
//!
//! * [`StackJob`] — lives on the stack of the thread that created it
//!   (`join`, `install`). The creator blocks (or work-steals) until the
//!   job's latch is set, so the referent never dangles.
//! * [`HeapJob`] — boxed, fire-and-forget (`Scope::spawn`); the box is
//!   reclaimed when the job executes. The owning [`Scope`](crate::Scope)
//!   keeps a pending-count so spawned work never outlives its borrows.

use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// First field of every concrete job type: the type-erased entry point.
#[repr(C)]
pub(crate) struct JobHeader {
    // SAFETY: contract of the fn pointer — it is only ever called with the
    // address of the concrete job that embeds this header (repr(C), header
    // first, so the pointers coincide), exactly once, while that job is
    // still alive.
    execute: unsafe fn(*const ()),
}

/// One-word handle to a pending job. Comparable by identity so `join` can
/// recognize its own pushed job when popping it back.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobRef(pub(crate) *const JobHeader);

// SAFETY: a JobRef is only created for jobs whose closures are `Send`, and
// ownership of the right to execute is transferred through the deque (each
// pushed ref is executed exactly once, by exactly one thread).
unsafe impl Send for JobRef {}

impl JobRef {
    /// Run the job.
    ///
    /// # Safety
    /// The referent must still be alive and must not have been executed yet.
    pub(crate) unsafe fn execute(self) {
        // SAFETY: alive-and-unexecuted per this fn's contract; the header
        // pointer is the job pointer (repr(C), header first).
        unsafe { ((*self.0).execute)(self.0 as *const ()) }
    }
}

/// Completion signal settable exactly once.
pub(crate) trait Latch {
    fn set(&self);
}

/// Latch probed by a work-stealing waiter (a pool worker inside `join`).
#[derive(Default)]
pub(crate) struct SpinLatch {
    done: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    fn set(&self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Latch a non-pool thread blocks on (`install` / injected operations).
#[derive(Default)]
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub(crate) fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        // The guard must be held across notify_all: the instant `done` is
        // observable the waiter may return and free the latch (it lives on
        // the waiter's stack), so notifying after unlocking would touch a
        // potentially dead Condvar. Holding the lock forces the waiter to
        // stay in `wait()` until we are done with `self`.
        let mut done = self.done.lock().unwrap();
        *done = true;
        self.cv.notify_all();
    }
}

/// Outcome of an executed job.
pub(crate) enum JobResult<R> {
    /// Not executed yet (never observed after the latch is set).
    Pending,
    Ok(R),
    Panic(Box<dyn Any + Send>),
}

impl<R> JobResult<R> {
    /// Unwrap the value, re-raising a captured panic.
    pub(crate) fn into_return_value(self) -> R {
        match self {
            JobResult::Ok(v) => v,
            JobResult::Panic(p) => resume_unwind(p),
            JobResult::Pending => unreachable!("job result taken before completion"),
        }
    }
}

/// A job whose closure, result, and latch live on the creating thread's
/// stack. The creator must not return before the latch is set.
#[repr(C)]
pub(crate) struct StackJob<L: Latch, F, R> {
    header: JobHeader,
    pub(crate) latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
}

impl<L, F, R> StackJob<L, F, R>
where
    L: Latch,
    F: FnOnce() -> R,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        StackJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
        }
    }

    /// # Safety
    /// The returned ref must be executed (or abandoned by the owner popping
    /// it back) before `self` is dropped.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        JobRef(&self.header as *const JobHeader)
    }

    /// # Safety
    /// Only call after the latch is set (or after executing the ref on this
    /// thread); no other thread may still touch the job.
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        // SAFETY: the latch is set (this fn's contract), so the executing
        // thread is done with the cell and we hold the only access.
        unsafe { std::mem::replace(&mut *self.result.get(), JobResult::Pending) }
    }

    unsafe fn execute_erased(this: *const ()) {
        // SAFETY: `this` is the address of a live StackJob (the header is
        // its first repr(C) field), and execute-exactly-once means no other
        // thread touches `func`/`result` until the latch below is set.
        let job = unsafe { &*(this as *const Self) };
        // SAFETY: exclusive access to `func` per the execute-once contract.
        let func = unsafe { (*job.func.get()).take() }.expect("job executed twice");
        // The panic is captured, not propagated: the worker thread stays
        // alive, and whoever waits on the latch re-raises the payload.
        let result = match catch_unwind(AssertUnwindSafe(func)) {
            Ok(v) => JobResult::Ok(v),
            Err(p) => JobResult::Panic(p),
        };
        // SAFETY: same exclusivity as above — the waiter only reads the
        // cell after the latch is set on the next line.
        unsafe { *job.result.get() = result };
        job.latch.set();
    }
}

/// A boxed job for `Scope::spawn`; the closure carries its own completion
/// bookkeeping (the scope's pending count), so there is no latch here.
#[repr(C)]
pub(crate) struct HeapJob<F> {
    header: JobHeader,
    func: F,
}

impl<F: FnOnce()> HeapJob<F> {
    /// Box `func` and return the one-word ref; the box is freed when the
    /// job executes.
    pub(crate) fn into_job_ref(func: F) -> JobRef {
        let boxed = Box::new(HeapJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            func,
        });
        JobRef(Box::into_raw(boxed) as *const JobHeader)
    }

    /// # Safety
    /// `this` must be the pointer produced by [`Self::into_job_ref`], and
    /// this function must be its first and only invocation — it reclaims
    /// the heap allocation.
    unsafe fn execute_erased(this: *const ()) {
        // SAFETY: `this` came from Box::into_raw of a HeapJob<F> (the
        // header is the first repr(C) field, so the addresses coincide)
        // and execute-exactly-once gives us back unique ownership.
        let job = unsafe { Box::from_raw(this as *mut Self) };
        (job.func)();
    }
}
