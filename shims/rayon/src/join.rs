//! Fork-join primitive over the work-stealing pool.

use crate::job::{JobResult, SpinLatch, StackJob};
use crate::registry::{global_registry, with_worker, WorkerThread};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results.
///
/// On a pool worker, `oper_a` is pushed onto the worker's deque — where
/// any idle worker can steal it — and `oper_b` runs inline immediately.
/// If nobody stole `oper_a` by the time `oper_b` finishes, it is popped
/// back (LIFO) and run inline too, so the sequential case pays only one
/// deque push/pop over a plain function call. While a stolen `oper_a` is
/// in flight, the waiting worker executes other pending deque work
/// instead of blocking.
///
/// Called from outside the pool, the whole join is injected into the
/// global registry and this thread blocks until it completes.
///
/// Panics in either closure propagate to the caller (after both sides
/// have been resolved, so no stack-allocated job is ever abandoned).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    with_worker(|worker| match worker {
        Some(worker) => join_on_worker(worker, oper_a, oper_b),
        None => global_registry().run_blocking(move || join(oper_a, oper_b)),
    })
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_a = StackJob::new(SpinLatch::default(), oper_a);
    // SAFETY: `job_a` stays on this stack until resolved below.
    let ref_a = unsafe { job_a.as_job_ref() };
    worker.push(ref_a);

    // Run the second closure inline while the first is stealable. Its
    // panic (if any) is held back until `job_a` is resolved: unwinding
    // now could free the stack slot a thief is about to execute.
    let result_b = catch_unwind(AssertUnwindSafe(oper_b));

    // Resolve `job_a`: pop it back and run it inline, or — if a thief got
    // it — work-steal until its latch is set. Popped jobs that are *not*
    // `job_a` belong to enclosing joins on this same stack; executing them
    // here is correct (their owners check the latch, not the deque).
    loop {
        match worker.pop() {
            Some(job) if job == ref_a => {
                // SAFETY: we just popped the pending ref; the job is alive.
                unsafe { job.execute() };
                break;
            }
            Some(job) => {
                // SAFETY: as above.
                unsafe { job.execute() }
            }
            None => {
                worker.wait_until(&job_a.latch);
                break;
            }
        }
    }

    // SAFETY: `job_a` has executed (inline or via thief + latch).
    let result_a = unsafe { job_a.take_result() };
    match result_b {
        Err(panic_b) => {
            // B's panic wins (it happened first); A's result or panic
            // payload is dropped, mirroring upstream rayon.
            resume_unwind(panic_b)
        }
        Ok(rb) => match result_a {
            JobResult::Ok(ra) => (ra, rb),
            JobResult::Panic(p) => resume_unwind(p),
            JobResult::Pending => unreachable!("join job not executed"),
        },
    }
}
