//! Structured task spawning: `scope` + `Scope::spawn`.
//!
//! Spawned tasks may borrow from the enclosing stack frame (`'scope`):
//! the scope does not return until every spawned task — including tasks
//! spawned by tasks — has finished, and the waiting worker executes
//! pending pool work instead of blocking.

use crate::job::HeapJob;
use crate::registry::{global_registry, with_worker};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Capability to spawn tasks that borrow the scope's stack frame.
pub struct Scope<'scope> {
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    /// First panic from a spawned task; re-raised when the scope closes.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over `'scope`, like upstream rayon.
    marker: PhantomData<&'scope mut &'scope ()>,
}

/// Raw scope pointer that may cross into a `Send` closure. Sound because
/// the scope outlives every spawned task (the scope body waits for
/// `pending == 0` before returning).
struct ScopePtr(*const ());

// SAFETY: see ScopePtr docs; Scope's shared state is Sync (atomics+Mutex).
unsafe impl Send for ScopePtr {}

/// Create a scope on a pool worker and run `op` in it; returns once `op`
/// and all tasks spawned through the scope have completed. Panics from
/// `op` or from any spawned task are re-raised here (first one wins,
/// `op`'s own panic taking precedence). Called from outside the pool, the
/// whole scope is injected into the global registry.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    with_worker(|worker| match worker {
        Some(worker) => {
            let s = Scope {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
                marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| op(&s)));
            // Always drain before unwinding: spawned jobs hold raw
            // pointers into this frame.
            worker.wait_while(|| s.pending.load(Ordering::Acquire) != 0);
            match result {
                Err(p) => resume_unwind(p),
                Ok(r) => {
                    if let Some(p) = s.panic.lock().unwrap().take() {
                        resume_unwind(p);
                    }
                    r
                }
            }
        }
        None => global_registry().run_blocking(move || scope(op)),
    })
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the pool; it may borrow anything that outlives
    /// `'scope` and may itself spawn further tasks on the scope.
    ///
    /// Must be called from within the pool (the scope body or another
    /// spawned task) — which is where a `&Scope` can exist, since `scope`
    /// always enters the pool first.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // Increment before publishing the job: the count can only hit
        // zero after this task (and transitively its spawns) finished.
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job = HeapJob::into_job_ref(move || {
            // SAFETY: the scope outlives the task (drain in `scope`).
            let scope = unsafe { &*(scope_ptr.0 as *const Scope<'scope>) };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.panic.lock().unwrap().get_or_insert(p);
            }
            scope.pending.fetch_sub(1, Ordering::Release);
        });
        with_worker(|worker| match worker {
            Some(worker) => worker.push(job),
            None => unreachable!("Scope::spawn called off the pool"),
        });
    }
}
