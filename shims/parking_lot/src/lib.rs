//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot),
//! backed by `std::sync`. It reproduces the parking_lot ergonomics the
//! workspace relies on: `Mutex::lock` / `RwLock::read` / `RwLock::write`
//! return the guard directly (no poisoning — a poisoned std lock is
//! transparently recovered, matching parking_lot's "poisoning does not
//! exist" semantics), and `Condvar::wait` takes `&mut MutexGuard`.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` is only `None` transiently inside
/// [`Condvar::wait`], which must move the std guard by value.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A reader-writer lock without poisoning.
///
/// `read`/`write` return the guards directly, matching parking_lot; a
/// poisoned std lock is transparently recovered (a panicking reader or
/// writer leaves the data in whatever state it reached, exactly as
/// parking_lot would).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Shared-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable matching parking_lot's `wait(&mut guard)` shape.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let reacquired = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`; matches
    /// parking_lot's `wait_for` shape.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (reacquired, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Outcome of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed (rather than a notify)?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_shared_reads_and_exclusive_write() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() += 35;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_all();
        });
        assert!(*m.lock());
    }
}
