//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot),
//! backed by `std::sync`. It reproduces the parking_lot ergonomics the
//! workspace relies on: `Mutex::lock` returns the guard directly (no
//! poisoning — a poisoned std lock is transparently recovered, matching
//! parking_lot's "poisoning does not exist" semantics), and
//! `Condvar::wait` takes `&mut MutexGuard`.

use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` is only `None` transiently inside
/// [`Condvar::wait`], which must move the std guard by value.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable matching parking_lot's `wait(&mut guard)` shape.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let reacquired = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_all();
        });
        assert!(*m.lock());
    }
}
