//! Derive macros for the offline serde shim: they emit empty marker-trait
//! impls (`impl serde::Serialize for T {}`), which is exactly what the
//! shim's traits require. Implemented with `proc_macro` alone (no `syn`),
//! so it parses just enough of the item to find its name and generics.

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, generics_params)` from a struct/enum token stream.
/// Returns the identifier following the `struct`/`enum` keyword. Only
/// lifetime-free, non-generic items are supported — every derived type in
/// this workspace is a plain struct or enum.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let s = ident.to_string();
            if s == "struct" || s == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => return name.to_string(),
                    other => panic!("expected item name after `{s}`, found {other:?}"),
                }
            }
        }
    }
    panic!("no struct or enum found in derive input");
}

/// Derive the `Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derive the `Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
