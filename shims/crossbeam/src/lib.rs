//! Offline stand-in for [crossbeam](https://crates.io/crates/crossbeam),
//! providing the `channel` subset the workspace uses (`unbounded`
//! MPSC channels) on top of `std::sync::mpsc`. Semantics relied upon and
//! preserved: sends never block, per-sender FIFO order, `recv` errors once
//! every `Sender` is dropped and the queue is drained.

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }
}
