//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], range and tuple
//! strategies, [`strategy::Just`], `prop_map`/`prop_flat_map`,
//! [`collection::vec`], and `bool::ANY`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **No shrinking** — a failing case reports its case number and message
//!   but is not minimized;
//! * **Deterministic seeding** — the RNG seed is derived from the test
//!   function's name, so failures always reproduce;
//! * **Uniform sampling** — no bias toward boundary values.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then use it to build a second strategy and
        /// draw from that (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.sample(rng)).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty inclusive integer range strategy");
                    let width = (e as i128 - s as i128) as u128 + 1;
                    (s as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    s + (rng.unit_f64() as $t) * (e - s)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F2);
    tuple_strategy!(A, B, C, D, E, F2, G);
    tuple_strategy!(A, B, C, D, E, F2, G, H);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A range of collection sizes; build one from `usize`,
    /// `Range<usize>`, or `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let width = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an unbiased random `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Unbiased random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Test execution machinery used by the [`proptest!`](crate::proptest)
    //! macro expansion.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the large grid-walking
            // properties in this workspace fast while still exploring.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion: the whole test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`: draw a fresh one.
        Reject(String),
    }

    /// The RNG handed to strategies: deterministic in the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded deterministically from an arbitrary tag (the test name).
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// What the `prelude` glob brings into scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __passed: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(20).max(1000);
                while __passed < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max_attempts,
                        "too many cases rejected by prop_assume! ({} attempts for {} cases)",
                        __attempts,
                        __config.cases,
                    );
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {}: {}",
                                stringify!($name), __passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert inside a property body; failure fails the whole test (with no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+), l, r
        );
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(v in crate::collection::vec((0u32..5, crate::bool::ANY), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (n, _b) in v {
                prop_assert!(n < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_and_combinators(n in (1usize..4).prop_flat_map(|k| {
            crate::collection::vec(0f64..1.0, k)
        })) {
            prop_assert!(!n.is_empty() && n.len() < 4);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `fails` failed")]
    fn failure_panics_with_context() {
        proptest! {
            #[allow(unused)]
            fn fails(x in 0usize..10) {
                prop_assert!(x > 10, "x was {}", x);
            }
        }
        fails();
    }
}
