//! Space-time point data for STKDE: point sets, synthetic dataset
//! generators, the ICPP'17 instance catalog (Table 2), CSV I/O, and point
//! binning into subdomain lattices.
//!
//! # Synthetic stand-ins for the paper's datasets
//!
//! The paper evaluates on four real datasets (Dengue fever cases in Cali,
//! pollen-related US tweets, avian-flu observations, eBird sightings) that
//! are proprietary or unavailable. The STKDE algorithms are sensitive only
//! to the *instance parameters* — point count `n`, grid dimensions, voxel
//! bandwidths — and to the *spatial clustering* of the points (which drives
//! load imbalance and point replication in the parallel variants). The
//! [`synth`] module therefore provides seeded Neyman–Scott cluster-process
//! generators with per-dataset shape profiles, and [`catalog`] reproduces
//! all 21 instances of Table 2 with their exact parameters (optionally
//! volumetrically scaled so the suite runs on small machines; see
//! [`catalog::Instance::scaled`]).

#![warn(missing_docs)]

pub mod binning;
pub mod catalog;
pub mod csv;
pub mod datasets;
pub mod point;
pub mod pointset;
pub mod synth;

pub use binning::{bin_points, bin_points_replicated, Bins};
pub use catalog::{full_catalog, Instance, InstanceParams};
pub use datasets::DatasetKind;
pub use point::Point;
pub use pointset::PointSet;
