//! Point binning into subdomain lattices.
//!
//! Two binning disciplines back the two parallel families of the paper:
//!
//! * [`bin_points`] — each point goes to the single subdomain containing
//!   its voxel (Algorithm 6, `PB-SYM-PD`: `localpoints[⌊AX/Gx⌋]…`);
//! * [`bin_points_replicated`] — each point goes to *every* subdomain its
//!   cylinder's bounding box intersects (Algorithm 5, `PB-SYM-DD`). The
//!   replication factor this produces is exactly the work overhead the
//!   paper measures in Figure 9.

use crate::point::Point;
#[cfg(test)]
use crate::pointset::PointSet;
use rayon::prelude::*;
use stkde_grid::{Decomposition, Domain, SubdomainId, VoxelBandwidth, VoxelRange};

/// Per-subdomain point index lists produced by a binning pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bins {
    lists: Vec<Vec<u32>>,
    n_points: usize,
}

impl Bins {
    /// Point indices assigned to subdomain `id`.
    #[inline]
    pub fn points_of(&self, id: SubdomainId) -> &[u32] {
        &self.lists[id.0]
    }

    /// Number of subdomains.
    pub fn subdomains(&self) -> usize {
        self.lists.len()
    }

    /// Number of points in each subdomain.
    pub fn counts(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    /// Total number of (point, subdomain) assignments.
    pub fn total_assignments(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Average number of subdomains per point (1.0 for [`bin_points`];
    /// ≥ 1.0 for [`bin_points_replicated`] — the DD replication overhead).
    pub fn replication_factor(&self) -> f64 {
        if self.n_points == 0 {
            1.0
        } else {
            self.total_assignments() as f64 / self.n_points as f64
        }
    }

    /// Largest subdomain population (load-imbalance indicator).
    pub fn max_count(&self) -> usize {
        self.lists.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Assign each point to the unique subdomain containing its voxel
/// (the `PB-SYM-PD` discipline). Runs the point→subdomain map in parallel,
/// then fills the lists with a counting sort.
pub fn bin_points(domain: &Domain, decomp: &Decomposition, points: &[Point]) -> Bins {
    assert_eq!(
        domain.dims(),
        decomp.dims(),
        "domain/decomposition mismatch"
    );
    let ids: Vec<u32> = points
        .par_iter()
        .map(|p| {
            let (x, y, t) = domain.voxel_of(p.as_array());
            decomp.subdomain_of(x, y, t).0 as u32
        })
        .collect();
    let mut counts = vec![0usize; decomp.count()];
    for &id in &ids {
        counts[id as usize] += 1;
    }
    let mut lists: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for (i, &id) in ids.iter().enumerate() {
        lists[id as usize].push(i as u32);
    }
    Bins {
        lists,
        n_points: points.len(),
    }
}

/// Assign each point to every subdomain its cylinder bounding box
/// intersects (the `PB-SYM-DD` discipline). The paper's Algorithm 5 tests
/// `(X, Y, T) ± (Hs, Hs, Ht)` against each subdomain box.
pub fn bin_points_replicated(
    domain: &Domain,
    decomp: &Decomposition,
    points: &[Point],
    vbw: VoxelBandwidth,
) -> Bins {
    assert_eq!(
        domain.dims(),
        decomp.dims(),
        "domain/decomposition mismatch"
    );
    // Two passes: compute target lists per point in parallel, then scatter.
    let targets: Vec<Vec<SubdomainId>> = points
        .par_iter()
        .map(|p| {
            let (x, y, t) = domain.voxel_of(p.as_array());
            let range = VoxelRange::centered(x, y, t, vbw.hs, vbw.ht).clipped(domain.dims());
            decomp.intersecting(range)
        })
        .collect();
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); decomp.count()];
    for (i, tgt) in targets.iter().enumerate() {
        for id in tgt {
            lists[id.0].push(i as u32);
        }
    }
    Bins {
        lists,
        n_points: points.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use proptest::prelude::*;
    use stkde_grid::{Decomp, GridDims};

    fn setup(gx: usize, gy: usize, gt: usize, k: usize) -> (Domain, Decomposition) {
        let domain = Domain::from_dims(GridDims::new(gx, gy, gt));
        let decomp = Decomposition::new(domain.dims(), Decomp::cubic(k));
        (domain, decomp)
    }

    #[test]
    fn bin_points_every_point_exactly_once() {
        let (domain, decomp) = setup(16, 16, 16, 4);
        let points = PointSet::from_vec(vec![
            Point::new(0.5, 0.5, 0.5),
            Point::new(15.5, 15.5, 15.5),
            Point::new(8.0, 8.0, 8.0),
        ]);
        let bins = bin_points(&domain, &decomp, points.as_slice());
        assert_eq!(bins.total_assignments(), 3);
        assert_eq!(bins.replication_factor(), 1.0);
    }

    #[test]
    fn bin_points_respects_subdomain_ranges() {
        let (domain, decomp) = setup(12, 12, 12, 3);
        let points = PointSet::from_vec(
            (0..50)
                .map(|i| {
                    let v = (i as f64 * 0.23) % 12.0;
                    Point::new(v, (v * 1.7) % 12.0, (v * 2.3) % 12.0)
                })
                .collect(),
        );
        let bins = bin_points(&domain, &decomp, points.as_slice());
        for id in decomp.ids() {
            let range = decomp.voxel_range(id);
            for &pi in bins.points_of(id) {
                let p = points.as_slice()[pi as usize];
                let (x, y, t) = domain.voxel_of(p.as_array());
                assert!(range.contains(x, y, t));
            }
        }
    }

    #[test]
    fn replicated_includes_own_subdomain() {
        let (domain, decomp) = setup(16, 16, 16, 4);
        let points = PointSet::from_vec(vec![Point::new(7.5, 7.5, 7.5)]);
        let vbw = VoxelBandwidth::new(2, 2);
        let plain = bin_points(&domain, &decomp, points.as_slice());
        let repl = bin_points_replicated(&domain, &decomp, points.as_slice(), vbw);
        for id in decomp.ids() {
            if !plain.points_of(id).is_empty() {
                assert!(!repl.points_of(id).is_empty());
            }
        }
        assert!(repl.replication_factor() >= 1.0);
    }

    #[test]
    fn interior_point_with_small_bandwidth_not_replicated() {
        let (domain, decomp) = setup(16, 16, 16, 2); // subdomains 8 wide
                                                     // Center of subdomain (0,0,0): voxel (3..4); cylinder ±1 stays inside.
        let points = PointSet::from_vec(vec![Point::new(3.5, 3.5, 3.5)]);
        let bins = bin_points_replicated(
            &domain,
            &decomp,
            points.as_slice(),
            VoxelBandwidth::new(1, 1),
        );
        assert_eq!(bins.total_assignments(), 1);
    }

    #[test]
    fn boundary_point_replicates_to_neighbors() {
        let (domain, decomp) = setup(16, 16, 16, 2); // boundary at 8
        let points = PointSet::from_vec(vec![Point::new(8.2, 3.0, 3.0)]); // voxel x=8
        let bins = bin_points_replicated(
            &domain,
            &decomp,
            points.as_slice(),
            VoxelBandwidth::new(2, 1),
        );
        // Cylinder spans x ∈ [6, 10], crossing the x-boundary: 2 subdomains.
        assert_eq!(bins.total_assignments(), 2);
        assert!(bins.replication_factor() > 1.0);
    }

    #[test]
    fn empty_points_ok() {
        let (domain, decomp) = setup(8, 8, 8, 2);
        let bins = bin_points(&domain, &decomp, PointSet::new().as_slice());
        assert_eq!(bins.total_assignments(), 0);
        assert_eq!(bins.replication_factor(), 1.0);
        assert_eq!(bins.max_count(), 0);
    }

    #[test]
    fn counts_sum_to_assignments() {
        let (domain, decomp) = setup(10, 10, 10, 3);
        let points = PointSet::from_vec(
            (0..40)
                .map(|i| {
                    Point::new(
                        (i % 10) as f64,
                        ((i * 3) % 10) as f64,
                        ((i * 7) % 10) as f64,
                    )
                })
                .collect(),
        );
        let bins = bin_points_replicated(
            &domain,
            &decomp,
            points.as_slice(),
            VoxelBandwidth::new(1, 1),
        );
        assert_eq!(
            bins.counts().iter().sum::<usize>(),
            bins.total_assignments()
        );
        assert!(bins.max_count() <= bins.total_assignments());
    }

    proptest! {
        /// Replicated binning covers exactly the subdomains whose voxel
        /// range intersects the cylinder box (brute-force cross-check).
        #[test]
        fn prop_replicated_matches_bruteforce(
            px in 0.0..20.0f64, py in 0.0..20.0f64, pt in 0.0..20.0f64,
            k in 1usize..5, hs in 1usize..4, ht in 1usize..4
        ) {
            let (domain, decomp) = setup(20, 20, 20, k);
            let points = PointSet::from_vec(vec![Point::new(px, py, pt)]);
            let vbw = VoxelBandwidth::new(hs, ht);
            let bins = bin_points_replicated(&domain, &decomp, points.as_slice(), vbw);
            let (x, y, t) = domain.voxel_of([px, py, pt]);
            let cyl = VoxelRange::centered(x, y, t, hs, ht).clipped(domain.dims());
            for id in decomp.ids() {
                let expect = decomp.voxel_range(id).intersects(cyl);
                let got = !bins.points_of(id).is_empty();
                prop_assert_eq!(expect, got, "subdomain {:?}", id);
            }
        }

        /// Plain binning is a partition: every point appears exactly once
        /// across all lists.
        #[test]
        fn prop_plain_binning_is_partition(
            n in 0usize..120, k in 1usize..6, seed in 0u64..50
        ) {
            let (domain, decomp) = setup(24, 24, 24, k);
            let points = crate::synth::uniform(
                n, domain.extent(), seed
            );
            let bins = bin_points(&domain, &decomp, points.as_slice());
            let mut seen = vec![0u8; n];
            for id in decomp.ids() {
                for &pi in bins.points_of(id) {
                    seen[pi as usize] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
