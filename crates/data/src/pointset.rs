//! Collections of space-time events.

use crate::point::Point;
use stkde_grid::Extent;

/// An owned collection of space-time events — the input to every STKDE
/// algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointSet {
    points: Vec<Point>,
}

impl PointSet {
    /// Empty point set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing vector of points.
    pub fn from_vec(points: Vec<Point>) -> Self {
        Self { points }
    }

    /// Number of events, `n` in the paper.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if there are no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Append an event.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// The events as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Point] {
        &self.points
    }

    /// Iterate over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Consume and return the underlying vector.
    pub fn into_vec(self) -> Vec<Point> {
        self.points
    }

    /// The tight world-space bounding box of the events
    /// (`None` when empty).
    pub fn bounds(&self) -> Option<Extent> {
        Extent::bounding(self.points.iter().map(|p| p.as_array()))
    }

    /// Remove events with non-finite coordinates; returns how many were
    /// dropped. (Real feeds contain bad geocodes; the paper's Dengue data,
    /// for instance, keeps only the ~82% of cases that geocode cleanly.)
    pub fn retain_finite(&mut self) -> usize {
        let before = self.points.len();
        self.points.retain(Point::is_finite);
        before - self.points.len()
    }
}

impl FromIterator<Point> for PointSet {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Self {
            points: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a PointSet {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_iter() {
        let mut ps = PointSet::new();
        assert!(ps.is_empty());
        ps.push(Point::new(1.0, 2.0, 3.0));
        ps.push(Point::new(4.0, 5.0, 6.0));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.iter().count(), 2);
    }

    #[test]
    fn bounds_cover_all_points() {
        let ps: PointSet = [
            Point::new(1.0, 10.0, 100.0),
            Point::new(-1.0, 20.0, 50.0),
            Point::new(0.5, 15.0, 75.0),
        ]
        .into_iter()
        .collect();
        let b = ps.bounds().unwrap();
        assert_eq!(b.min[0], -1.0);
        assert_eq!(b.max[1], 20.0);
        for p in &ps {
            assert!(b.contains(p.as_array()));
        }
        assert!(PointSet::new().bounds().is_none());
    }

    #[test]
    fn retain_finite_drops_bad_rows() {
        let mut ps = PointSet::from_vec(vec![
            Point::new(0.0, 0.0, 0.0),
            Point::new(f64::NAN, 0.0, 0.0),
            Point::new(1.0, 1.0, 1.0),
        ]);
        assert_eq!(ps.retain_finite(), 1);
        assert_eq!(ps.len(), 2);
    }
}
