//! Shape profiles imitating the paper's four datasets (§6.1).
//!
//! | Paper dataset | Character | Profile here |
//! |---|---|---|
//! | **Dengue** (Cali, Colombia; 11,056 geocoded cases, 2010–11) | Urban cases masked to street intersections: many tight clusters, mild seasonal epidemic waves | many small isotropic clusters, moderate tail, two seasonal waves |
//! | **PollenUS** (588K tweets, Feb–Apr 2016) | Tweets concentrated in population centers with heavy-tailed city sizes; strong spring ramp | heavy-tailed cluster weights, strong single seasonal wave |
//! | **Flu** (31,478 avian-flu positives, 2001–16, worldwide) | Sparse observations along migratory flyways spanning most of the globe | few, elongated (anisotropic) clusters, high background |
//! | **eBird** (292M sightings, worldwide) | Dense crowdsourced sightings concentrated at birding hotspots | many clusters, very heavy tail, low background |

use crate::pointset::PointSet;
use crate::synth::{ClusterSpec, Seasonality};
use serde::{Deserialize, Serialize};
use stkde_grid::Extent;

/// Which of the paper's four datasets a synthetic point set imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Dengue fever cases, Cali, Colombia (2010–2011).
    Dengue,
    /// Pollen-related tweets, contiguous US (Feb–Apr 2016).
    PollenUs,
    /// Avian influenza surveillance observations, worldwide (2001–2016).
    Flu,
    /// eBird rare-bird sightings, worldwide (20 years).
    EBird,
}

impl DatasetKind {
    /// All four kinds, in the paper's order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Dengue,
        DatasetKind::PollenUs,
        DatasetKind::Flu,
        DatasetKind::EBird,
    ];

    /// The dataset name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Dengue => "Dengue",
            DatasetKind::PollenUs => "PollenUS",
            DatasetKind::Flu => "Flu",
            DatasetKind::EBird => "eBird",
        }
    }

    /// The cluster-process profile imitating this dataset's clustering
    /// character.
    pub fn profile(&self) -> ClusterSpec {
        match self {
            // Urban epidemic: many tight street-level clusters, two yearly
            // dengue seasons over the two-year record.
            DatasetKind::Dengue => ClusterSpec {
                clusters: 150,
                spatial_sigma: 0.015,
                temporal_sigma: 0.08,
                anisotropy: 1.0,
                weight_tail: 0.6,
                background: 0.05,
                seasonality: Seasonality::Wave {
                    cycles: 2.0,
                    amplitude: 0.7,
                    phase: 0.0,
                },
            },
            // Tweets from population centers: heavy-tailed city sizes and a
            // strong spring allergy ramp within the 3-month window.
            DatasetKind::PollenUs => ClusterSpec {
                clusters: 60,
                spatial_sigma: 0.02,
                temporal_sigma: 0.25,
                anisotropy: 1.3,
                weight_tail: 1.1,
                background: 0.10,
                seasonality: Seasonality::Wave {
                    cycles: 0.5,
                    amplitude: 0.8,
                    phase: -std::f64::consts::FRAC_PI_2,
                },
            },
            // Sparse world-spanning surveillance along flyways: few strongly
            // elongated clusters, lots of background, mild annual cycle.
            DatasetKind::Flu => ClusterSpec {
                clusters: 25,
                spatial_sigma: 0.04,
                temporal_sigma: 0.15,
                anisotropy: 4.0,
                weight_tail: 0.4,
                background: 0.25,
                seasonality: Seasonality::Wave {
                    cycles: 15.0,
                    amplitude: 0.5,
                    phase: 0.0,
                },
            },
            // Crowdsourced hotspots: many clusters, very heavy tail (a few
            // famous spots dominate), low background.
            DatasetKind::EBird => ClusterSpec {
                clusters: 500,
                spatial_sigma: 0.01,
                temporal_sigma: 0.3,
                anisotropy: 1.0,
                weight_tail: 1.4,
                background: 0.05,
                seasonality: Seasonality::Wave {
                    cycles: 20.0,
                    amplitude: 0.4,
                    phase: 0.0,
                },
            },
        }
    }

    /// Generate `n` synthetic events imitating this dataset inside `extent`.
    pub fn generate(&self, n: usize, extent: Extent, seed: u64) -> PointSet {
        self.profile().generate(n, extent, seed)
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> Extent {
        Extent::new([0.0, 0.0, 0.0], [1000.0, 800.0, 365.0])
    }

    #[test]
    fn all_kinds_generate_in_bounds() {
        for kind in DatasetKind::ALL {
            let ps = kind.generate(300, extent(), 99);
            assert_eq!(ps.len(), 300, "{kind}");
            for p in &ps {
                assert!(extent().contains(p.as_array()), "{kind}: {p:?}");
            }
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetKind::Dengue.to_string(), "Dengue");
        assert_eq!(DatasetKind::PollenUs.to_string(), "PollenUS");
        assert_eq!(DatasetKind::Flu.to_string(), "Flu");
        assert_eq!(DatasetKind::EBird.to_string(), "eBird");
    }

    #[test]
    fn profiles_are_distinct() {
        let profiles: Vec<_> = DatasetKind::ALL.iter().map(|k| k.profile()).collect();
        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                assert_ne!(profiles[i], profiles[j]);
            }
        }
    }

    #[test]
    fn ebird_is_heavier_tailed_than_flu() {
        // The densest cell of a coarse histogram should hold a larger share
        // for eBird than for Flu.
        let n = 5000;
        let share = |kind: DatasetKind| {
            let ps = kind.generate(n, extent(), 4);
            let mut h = vec![0usize; 64];
            for p in &ps {
                let cx = ((p.x / 1000.0) * 8.0) as usize;
                let cy = ((p.y / 800.0) * 8.0) as usize;
                h[cy.min(7) * 8 + cx.min(7)] += 1;
            }
            *h.iter().max().unwrap() as f64 / n as f64
        };
        assert!(share(DatasetKind::EBird) > share(DatasetKind::Flu));
    }
}
