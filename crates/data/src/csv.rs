//! Plain CSV I/O for point sets (`x,y,t` rows, optional header).

use crate::point::Point;
use crate::pointset::PointSet;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while reading point CSV data.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row (line number, description).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Read `x,y,t` rows from a reader. A first line that does not parse as
/// numbers is treated as a header and skipped. Blank lines are ignored.
pub fn read_points<R: Read>(reader: R) -> Result<PointSet, CsvError> {
    let mut points = Vec::new();
    let buf = BufReader::new(reader);
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match parse_row(trimmed) {
            Ok(p) => points.push(p),
            Err(msg) if i == 0 => {
                // Permit a header row.
                let looks_like_header =
                    trimmed.split(',').all(|f| f.trim().parse::<f64>().is_err());
                if !looks_like_header {
                    return Err(CsvError::Parse {
                        line: i + 1,
                        message: msg,
                    });
                }
            }
            Err(msg) => {
                return Err(CsvError::Parse {
                    line: i + 1,
                    message: msg,
                })
            }
        }
    }
    Ok(PointSet::from_vec(points))
}

fn parse_row(row: &str) -> Result<Point, String> {
    let mut it = row.split(',');
    let mut next = |name: &str| -> Result<f64, String> {
        it.next()
            .ok_or_else(|| format!("missing {name} column"))?
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("bad {name}: {e}"))
    };
    let x = next("x")?;
    let y = next("y")?;
    let t = next("t")?;
    if it.next().is_some() {
        return Err("too many columns (expected x,y,t)".to_string());
    }
    Ok(Point::new(x, y, t))
}

/// Write a point set as `x,y,t` rows with a header.
pub fn write_points<W: Write>(points: &PointSet, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(b"x,y,t\n")?;
    for p in points {
        writeln!(w, "{},{},{}", p.x, p.y, p.t)?;
    }
    w.flush()
}

/// Load a point set from a CSV file.
pub fn load(path: &Path) -> Result<PointSet, CsvError> {
    read_points(std::fs::File::open(path)?)
}

/// Save a point set to a CSV file.
pub fn save(points: &PointSet, path: &Path) -> io::Result<()> {
    write_points(points, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_memory() {
        let ps = PointSet::from_vec(vec![Point::new(1.5, -2.0, 3.25), Point::new(0.0, 0.0, 0.0)]);
        let mut buf = Vec::new();
        write_points(&ps, &mut buf).unwrap();
        let back = read_points(&buf[..]).unwrap();
        assert_eq!(back, ps);
    }

    #[test]
    fn header_is_skipped() {
        let data = "x,y,t\n1,2,3\n";
        let ps = read_points(data.as_bytes()).unwrap();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.as_slice()[0], Point::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn headerless_first_row_parses() {
        let ps = read_points("4,5,6\n7,8,9\n".as_bytes()).unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn blank_lines_ignored() {
        let ps = read_points("1,2,3\n\n  \n4,5,6\n".as_bytes()).unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn bad_row_reports_line_number() {
        let err = read_points("1,2,3\n1,oops,3\n".as_bytes()).unwrap_err();
        match err {
            CsvError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bad y"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn wrong_arity_is_error() {
        assert!(read_points("1,2\n".as_bytes()).is_err());
        assert!(read_points("1,2,3,4\n".as_bytes()).is_err());
    }

    #[test]
    fn mixed_header_like_second_line_is_error() {
        assert!(read_points("1,2,3\nx,y,t\n".as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("stkde_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pts.csv");
        let ps = PointSet::from_vec(vec![Point::new(9.0, 8.0, 7.0)]);
        save(&ps, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, ps);
        std::fs::remove_file(path).ok();
    }
}
