//! A single space-time event.

use serde::{Deserialize, Serialize};

/// An event located in space and time: `(xi, yi, ti)` in the paper's
/// notation (world coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Spatial x coordinate (e.g. easting in meters or longitude).
    pub x: f64,
    /// Spatial y coordinate (e.g. northing in meters or latitude).
    pub y: f64,
    /// Temporal coordinate (e.g. days since epoch).
    pub t: f64,
}

impl Point {
    /// Create a point.
    pub fn new(x: f64, y: f64, t: f64) -> Self {
        Self { x, y, t }
    }

    /// The point as a `[x, y, t]` array (for geometry helpers).
    #[inline]
    pub fn as_array(&self) -> [f64; 3] {
        [self.x, self.y, self.t]
    }

    /// Squared spatial (2-D) distance to another point.
    #[inline]
    pub fn spatial_dist2(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Absolute temporal distance to another point.
    #[inline]
    pub fn temporal_dist(&self, other: &Point) -> f64 {
        (self.t - other.t).abs()
    }

    /// `true` if all coordinates are finite.
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.t.is_finite()
    }
}

impl From<[f64; 3]> for Point {
    fn from(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0, 0.0);
        let b = Point::new(3.0, 4.0, -2.0);
        assert_eq!(a.spatial_dist2(&b), 25.0);
        assert_eq!(a.temporal_dist(&b), 2.0);
    }

    #[test]
    fn array_roundtrip() {
        let p = Point::new(1.0, 2.0, 3.0);
        assert_eq!(Point::from(p.as_array()), p);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
