//! Seeded synthetic spatio-temporal point processes.
//!
//! The generators implement a Neyman–Scott (Poisson cluster) process with
//! optional background noise, heavy-tailed cluster weights, anisotropic
//! (elongated) clusters, and temporal seasonality — enough degrees of
//! freedom to imitate the clustering character of each of the paper's four
//! datasets (see [`crate::datasets`]). All generation is deterministic
//! given the seed.

use crate::point::Point;
use crate::pointset::PointSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use stkde_grid::Extent;

/// Temporal modulation of event intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Seasonality {
    /// Events uniform over the time extent.
    None,
    /// A single sinusoidal season: intensity `∝ 1 + amplitude·sin(2π·τ·cycles + phase)`
    /// where `τ ∈ [0, 1]` is normalized time. Sampled by rejection.
    Wave {
        /// Number of full cycles across the time extent.
        cycles: f64,
        /// Relative amplitude in `[0, 1)`.
        amplitude: f64,
        /// Phase offset in radians.
        phase: f64,
    },
}

/// Parameters of the synthetic cluster process.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of cluster centers (parents).
    pub clusters: usize,
    /// Std-dev of offspring spatial offsets, as a fraction of the smaller
    /// spatial extent axis.
    pub spatial_sigma: f64,
    /// Std-dev of offspring temporal offsets, as a fraction of the time
    /// extent.
    pub temporal_sigma: f64,
    /// Anisotropy of clusters: x-offsets are multiplied by this factor
    /// (>1 produces clusters elongated along x, imitating flyways/coasts).
    pub anisotropy: f64,
    /// Pareto-like exponent for cluster weights: weight of cluster `k` is
    /// `(k+1)^(-tail)`. `0` gives equal clusters; larger values concentrate
    /// most points in a few clusters (hotspots).
    pub weight_tail: f64,
    /// Fraction of points drawn uniformly over the extent instead of from
    /// clusters.
    pub background: f64,
    /// Temporal intensity modulation.
    pub seasonality: Seasonality,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self {
            clusters: 20,
            spatial_sigma: 0.03,
            temporal_sigma: 0.05,
            anisotropy: 1.0,
            weight_tail: 0.5,
            background: 0.1,
            seasonality: Seasonality::None,
        }
    }
}

impl ClusterSpec {
    /// Generate `n` events inside `extent` with this spec, deterministically
    /// from `seed`.
    pub fn generate(&self, n: usize, extent: Extent, seed: u64) -> PointSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let (sx, sy, st) = (extent.size(0), extent.size(1), extent.size(2));
        let s_sigma = self.spatial_sigma * sx.min(sy);
        let t_sigma = self.temporal_sigma * st;

        // Parents: uniform positions; weights (k+1)^-tail, normalized CDF.
        let k = self.clusters.max(1);
        let parents: Vec<Point> = (0..k)
            .map(|_| {
                Point::new(
                    extent.min[0] + rng.random::<f64>() * sx,
                    extent.min[1] + rng.random::<f64>() * sy,
                    self.sample_time(&mut rng, extent),
                )
            })
            .collect();
        let weights: Vec<f64> = (0..k)
            .map(|i| ((i + 1) as f64).powf(-self.weight_tail))
            .collect();
        let total_w: f64 = weights.iter().sum();
        let cdf: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total_w;
                Some(*acc)
            })
            .collect();

        let offset_x = Normal::new(0.0, (s_sigma * self.anisotropy).max(1e-12)).unwrap();
        let offset_y = Normal::new(0.0, s_sigma.max(1e-12)).unwrap();
        let offset_t = Normal::new(0.0, t_sigma.max(1e-12)).unwrap();

        let clamp = |v: f64, lo: f64, hi: f64| v.clamp(lo, hi - (hi - lo) * 1e-9);

        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            let p = if rng.random::<f64>() < self.background {
                Point::new(
                    extent.min[0] + rng.random::<f64>() * sx,
                    extent.min[1] + rng.random::<f64>() * sy,
                    self.sample_time(&mut rng, extent),
                )
            } else {
                let u = rng.random::<f64>();
                let ci = cdf.partition_point(|&c| c < u).min(k - 1);
                let parent = parents[ci];
                Point::new(
                    parent.x + offset_x.sample(&mut rng),
                    parent.y + offset_y.sample(&mut rng),
                    parent.t + offset_t.sample(&mut rng),
                )
            };
            points.push(Point::new(
                clamp(p.x, extent.min[0], extent.max[0]),
                clamp(p.y, extent.min[1], extent.max[1]),
                clamp(p.t, extent.min[2], extent.max[2]),
            ));
        }
        PointSet::from_vec(points)
    }

    fn sample_time(&self, rng: &mut StdRng, extent: Extent) -> f64 {
        let st = extent.size(2);
        match self.seasonality {
            Seasonality::None => extent.min[2] + rng.random::<f64>() * st,
            Seasonality::Wave {
                cycles,
                amplitude,
                phase,
            } => {
                // Rejection sampling against the (bounded) intensity.
                let max_i = 1.0 + amplitude;
                loop {
                    let tau: f64 = rng.random();
                    let i =
                        1.0 + amplitude * (2.0 * std::f64::consts::PI * tau * cycles + phase).sin();
                    if rng.random::<f64>() * max_i <= i {
                        return extent.min[2] + tau * st;
                    }
                }
            }
        }
    }
}

/// Uniformly distributed events — the no-clustering baseline used in tests
/// and ablations.
pub fn uniform(n: usize, extent: Extent, seed: u64) -> PointSet {
    ClusterSpec {
        background: 1.0,
        ..Default::default()
    }
    .generate(n, extent, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> Extent {
        Extent::new([0.0, 0.0, 0.0], [100.0, 50.0, 30.0])
    }

    #[test]
    fn generates_requested_count_in_bounds() {
        let ps = ClusterSpec::default().generate(500, extent(), 42);
        assert_eq!(ps.len(), 500);
        for p in &ps {
            assert!(extent().contains(p.as_array()), "{p:?} out of extent");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ClusterSpec::default().generate(100, extent(), 7);
        let b = ClusterSpec::default().generate(100, extent(), 7);
        let c = ClusterSpec::default().generate(100, extent(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_points_are_more_concentrated_than_uniform() {
        // Compare mean nearest-cluster-center distance proxies via variance
        // of coordinates: clustered data has lower within-cluster spread…
        // use a simpler robust proxy: count points in the densest 10x10 cell
        // of a 10x10 histogram; clustered ≫ uniform.
        let n = 2000;
        let clustered = ClusterSpec {
            clusters: 3,
            spatial_sigma: 0.01,
            background: 0.0,
            weight_tail: 0.0,
            ..Default::default()
        }
        .generate(n, extent(), 3);
        let uni = uniform(n, extent(), 3);
        let peak = |ps: &PointSet| {
            let mut h = [0usize; 100];
            for p in ps {
                let cx = ((p.x / 100.0) * 10.0) as usize;
                let cy = ((p.y / 50.0) * 10.0) as usize;
                h[cy.min(9) * 10 + cx.min(9)] += 1;
            }
            *h.iter().max().unwrap()
        };
        assert!(
            peak(&clustered) > 3 * peak(&uni),
            "clustered peak {} vs uniform peak {}",
            peak(&clustered),
            peak(&uni)
        );
    }

    #[test]
    fn seasonality_shifts_mass() {
        let spec = ClusterSpec {
            background: 1.0, // pure temporal test
            seasonality: Seasonality::Wave {
                cycles: 1.0,
                amplitude: 0.9,
                phase: 0.0,
            },
            ..Default::default()
        };
        let ps = spec.generate(4000, extent(), 11);
        // sin peaks in the first half for phase 0, cycles 1.
        let first_half = ps.iter().filter(|p| p.t < 15.0).count();
        assert!(
            first_half > ps.len() * 55 / 100,
            "first half has {first_half} of {}",
            ps.len()
        );
    }

    #[test]
    fn anisotropy_elongates_x() {
        let spec = ClusterSpec {
            clusters: 1,
            spatial_sigma: 0.02,
            anisotropy: 5.0,
            background: 0.0,
            weight_tail: 0.0,
            ..Default::default()
        };
        let ps = spec.generate(2000, extent(), 5);
        let mean_x: f64 = ps.iter().map(|p| p.x).sum::<f64>() / ps.len() as f64;
        let mean_y: f64 = ps.iter().map(|p| p.y).sum::<f64>() / ps.len() as f64;
        let var = |f: &dyn Fn(&Point) -> f64, m: f64| {
            ps.iter().map(|p| (f(p) - m).powi(2)).sum::<f64>() / ps.len() as f64
        };
        let vx = var(&|p| p.x, mean_x);
        let vy = var(&|p| p.y, mean_y);
        assert!(vx > 4.0 * vy, "vx {vx} should dwarf vy {vy}");
    }

    #[test]
    fn zero_clusters_treated_as_one() {
        let spec = ClusterSpec {
            clusters: 0,
            background: 0.0,
            ..Default::default()
        };
        let ps = spec.generate(10, extent(), 1);
        assert_eq!(ps.len(), 10);
    }
}
