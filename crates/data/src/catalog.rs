//! The 21-instance catalog of Table 2.
//!
//! Every experiment in the paper runs over these instances. Instance codes
//! combine a resolution level (`Lr`/`Mr`/`Hr`/`VHr`) and a bandwidth level
//! (`VLb`/`Lb`/`Mb`/`Hb`/`VHb`).
//!
//! # Volumetric scaling
//!
//! The full-size instances need up to 60 GB of grid and 292 M points. For
//! small machines, [`Instance::scaled`] shrinks an instance by a factor
//! `α ∈ (0, 1]`: grid dimensions scale by `α` per axis and the point count
//! by `α³`, while the *voxel-space* bandwidths stay at their Table 2
//! values. Both cost terms of the point-based algorithms — initialization
//! `Θ(Gx·Gy·Gt)` and computation `Θ(n·Hs²·Ht)` — then scale by the same
//! `α³`, so the init/compute balance that drives all of the paper's
//! qualitative conclusions (Figure 7 and onward) is preserved per instance.

use crate::datasets::DatasetKind;
use crate::pointset::PointSet;
use serde::{Deserialize, Serialize};
use stkde_grid::{Bandwidth, Domain, GridDims, VoxelBandwidth};

/// The raw parameters of one Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceParams {
    /// Number of events, `n`.
    pub n: usize,
    /// Grid dimensions in voxels.
    pub dims: GridDims,
    /// Spatial bandwidth in voxels, `Hs`.
    pub hs: usize,
    /// Temporal bandwidth in voxels, `Ht`.
    pub ht: usize,
}

/// One instance of the experimental catalog: a dataset kind, an instance
/// code (e.g. `Hr-VHb`), and its parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Which dataset the instance derives from.
    pub dataset: DatasetKind,
    /// The paper's resolution/bandwidth code, e.g. `"Lr-Lb"`.
    pub code: String,
    /// Instance parameters (possibly scaled; see [`Instance::scale`]).
    pub params: InstanceParams,
    /// The volumetric scale factor applied (1.0 = paper size).
    pub scale: f64,
}

impl Instance {
    fn new(
        dataset: DatasetKind,
        code: &str,
        n: usize,
        dims: (usize, usize, usize),
        hs: usize,
        ht: usize,
    ) -> Self {
        Self {
            dataset,
            code: code.to_string(),
            params: InstanceParams {
                n,
                dims: GridDims::new(dims.0, dims.1, dims.2),
                hs,
                ht,
            },
            scale: 1.0,
        }
    }

    /// Full instance name as used in the paper's tables,
    /// e.g. `"Dengue_Hr-VHb"`.
    pub fn name(&self) -> String {
        format!("{}_{}", self.dataset.name(), self.code)
    }

    /// The computation domain (unit resolution; Table 2 is expressed in
    /// voxel units).
    pub fn domain(&self) -> Domain {
        Domain::from_dims(self.params.dims)
    }

    /// World-space bandwidths consistent with the voxel bandwidths under
    /// the unit-resolution domain (`hs = Hs`, `ht = Ht`).
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::new(self.params.hs as f64, self.params.ht as f64)
    }

    /// Voxel-space bandwidths (`Hs`, `Ht`).
    pub fn voxel_bandwidth(&self) -> VoxelBandwidth {
        VoxelBandwidth::new(self.params.hs, self.params.ht)
    }

    /// Grid memory footprint in MiB at 4 bytes per voxel — the `Size`
    /// column of Table 2.
    pub fn grid_mib(&self) -> f64 {
        (self.params.dims.volume() * 4) as f64 / (1024.0 * 1024.0)
    }

    /// Estimated kernel-computation work `n · (2Hs+1)² · (2Ht+1)` in voxel
    /// updates (the `Θ(n·Hs²·Ht)` term).
    pub fn compute_cost(&self) -> f64 {
        let s = (2 * self.params.hs + 1) as f64;
        let t = (2 * self.params.ht + 1) as f64;
        self.params.n as f64 * s * s * t
    }

    /// Estimated initialization work (`Θ(Gx·Gy·Gt)` voxel writes).
    pub fn init_cost(&self) -> f64 {
        self.params.dims.volume() as f64
    }

    /// Volumetrically scale the instance by `α ∈ (0, 1]`: dims ×α per axis
    /// (minimum: one voxel, and never below the cylinder box so the
    /// bandwidth still fits), n ×α³ (minimum 1). Bandwidths are unchanged.
    ///
    /// # Panics
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn scaled(&self, alpha: f64) -> Instance {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        if alpha == 1.0 {
            return self.clone();
        }
        let d = self.params.dims;
        let scale_dim = |g: usize, min_w: usize| -> usize {
            ((g as f64 * alpha).ceil() as usize).clamp(min_w.max(1), g)
        };
        // Keep at least one full cylinder box per axis so the instance
        // remains meaningful (and PB's clipping logic still gets exercised).
        let dims = GridDims::new(
            scale_dim(d.gx, 2 * self.params.hs + 1),
            scale_dim(d.gy, 2 * self.params.hs + 1),
            scale_dim(d.gt, 2 * self.params.ht + 1),
        );
        let vol_ratio = dims.volume() as f64 / d.volume() as f64;
        let n = ((self.params.n as f64 * vol_ratio).round() as usize).max(1);
        Instance {
            dataset: self.dataset,
            code: self.code.clone(),
            params: InstanceParams {
                n,
                dims,
                hs: self.params.hs,
                ht: self.params.ht,
            },
            scale: self.scale * alpha,
        }
    }

    /// Scale the instance down (if needed) so the grid holds at most
    /// `max_voxels` voxels *and* the point count is at most `max_points`.
    /// Returns the instance unchanged when it already fits.
    pub fn scaled_to_budget(&self, max_voxels: usize, max_points: usize) -> Instance {
        self.scaled_to_budgets(max_voxels, max_points, f64::INFINITY)
    }

    /// Like [`Instance::scaled_to_budget`], with an additional cap on the
    /// kernel-computation work `n·(2Hs+1)²(2Ht+1)` (in voxel updates).
    /// All three cost measures scale by `α³`, so one scale factor fits all.
    pub fn scaled_to_budgets(
        &self,
        max_voxels: usize,
        max_points: usize,
        max_updates: f64,
    ) -> Instance {
        let v_ratio = max_voxels as f64 / self.params.dims.volume() as f64;
        let p_ratio = max_points as f64 / self.params.n as f64;
        let u_ratio = max_updates / self.compute_cost();
        let mut alpha = v_ratio.min(p_ratio).min(u_ratio).min(1.0).cbrt();
        if alpha >= 1.0 {
            return self.clone();
        }
        // Final n-cap applied to whatever the loop produces: when the
        // cylinder-box floor stops the dims from shrinking, the point count
        // can still be reduced to honor the work budgets (at the cost of
        // some init/compute balance distortion on those floored instances).
        let cap_n = |mut s: Instance| -> Instance {
            let per_point = s.voxel_bandwidth().cylinder_box_volume() as f64;
            let n_updates = (max_updates / per_point).floor().max(1.0) as usize;
            s.params.n = s.params.n.min(max_points.max(1)).min(n_updates);
            s
        };
        // Ceil-rounding of the scaled dims can overshoot the budget
        // slightly; shrink until the realized instance fits (the minimum
        // cylinder-box clamp can make very tight budgets unattainable, in
        // which case the smallest meaningful instance is returned).
        for _ in 0..64 {
            let s = self.scaled(alpha);
            if (s.params.dims.volume() <= max_voxels
                && s.params.n <= max_points
                && s.compute_cost() <= max_updates)
                || s.params.dims.volume()
                    == GridDims::new(
                        2 * s.params.hs + 1,
                        2 * s.params.hs + 1,
                        2 * s.params.ht + 1,
                    )
                    .volume()
            {
                return cap_n(s);
            }
            alpha *= 0.97;
        }
        cap_n(self.scaled(alpha))
    }

    /// Generate the instance's synthetic point set (deterministic in the
    /// instance name + seed).
    pub fn generate_points(&self, seed: u64) -> PointSet {
        // Mix the instance name into the seed so e.g. Dengue Lr and Hr use
        // different (but stable) draws, like distinct geocoding runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.dataset
            .generate(self.params.n, self.domain().extent(), seed ^ h)
    }
}

impl std::fmt::Display for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The full 21-instance catalog of Table 2, in the paper's row order.
pub fn full_catalog() -> Vec<Instance> {
    use DatasetKind::*;
    vec![
        Instance::new(Dengue, "Lr-Lb", 11_056, (148, 194, 728), 3, 1),
        Instance::new(Dengue, "Lr-Hb", 11_056, (148, 194, 728), 25, 1),
        Instance::new(Dengue, "Hr-Lb", 11_056, (294, 386, 728), 2, 1),
        Instance::new(Dengue, "Hr-Hb", 11_056, (294, 386, 728), 50, 1),
        Instance::new(Dengue, "Hr-VHb", 11_056, (294, 386, 728), 50, 14),
        Instance::new(PollenUs, "Lr-Lb", 588_189, (131, 61, 84), 2, 3),
        Instance::new(PollenUs, "Hr-Lb", 588_189, (651, 301, 84), 10, 3),
        Instance::new(PollenUs, "Hr-Mb", 588_189, (651, 301, 84), 25, 7),
        Instance::new(PollenUs, "Hr-Hb", 588_189, (651, 301, 84), 50, 14),
        Instance::new(PollenUs, "VHr-Lb", 588_189, (6501, 3001, 84), 100, 3),
        Instance::new(PollenUs, "VHr-VLb", 588_189, (6501, 3001, 84), 50, 3),
        Instance::new(Flu, "Lr-Lb", 31_478, (117, 308, 851), 1, 1),
        Instance::new(Flu, "Lr-Hb", 31_478, (117, 308, 851), 2, 3),
        Instance::new(Flu, "Mr-Lb", 31_478, (233, 615, 1985), 2, 3),
        Instance::new(Flu, "Mr-Hb", 31_478, (233, 615, 1985), 4, 7),
        Instance::new(Flu, "Hr-Lb", 31_478, (581, 1536, 5951), 5, 7),
        Instance::new(Flu, "Hr-Hb", 31_478, (581, 1536, 5951), 10, 21),
        Instance::new(EBird, "Lr-Lb", 291_990_435, (357, 721, 2435), 2, 3),
        Instance::new(EBird, "Lr-Hb", 291_990_435, (357, 721, 2435), 6, 5),
        Instance::new(EBird, "Hr-Lb", 291_990_435, (1781, 3601, 2435), 10, 3),
        Instance::new(EBird, "Hr-Hb", 291_990_435, (1781, 3601, 2435), 30, 5),
    ]
}

/// Look up an instance by its full name (e.g. `"Flu_Mr-Hb"`).
pub fn by_name(name: &str) -> Option<Instance> {
    full_catalog().into_iter().find(|i| i.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_21_instances_in_order() {
        let cat = full_catalog();
        assert_eq!(cat.len(), 21);
        assert_eq!(cat[0].name(), "Dengue_Lr-Lb");
        assert_eq!(cat[4].name(), "Dengue_Hr-VHb");
        assert_eq!(cat[20].name(), "eBird_Hr-Hb");
    }

    #[test]
    fn table2_sizes_match_paper() {
        // The paper's Size column (MiB at 4 bytes/voxel), Table 2.
        let expect = [
            ("Dengue_Lr-Lb", 79.0),
            ("Dengue_Hr-Lb", 315.0),
            ("PollenUS_Lr-Lb", 2.0),
            ("PollenUS_Hr-Lb", 62.0),
            ("PollenUS_VHr-Lb", 6252.0),
            ("Flu_Lr-Lb", 117.0),
            ("Flu_Mr-Lb", 1085.0),
            ("Flu_Hr-Lb", 20260.0),
            ("eBird_Lr-Lb", 2391.0),
            ("eBird_Hr-Lb", 59570.0),
        ];
        for (name, mib) in expect {
            let inst = by_name(name).unwrap();
            let got = inst.grid_mib();
            // The paper prints integer MiB (rounding convention unclear for
            // the smallest instance); allow 1 MiB absolute or 2% relative.
            assert!(
                (got - mib).abs() <= 1.0 || (got - mib).abs() / mib < 0.02,
                "{name}: computed {got:.1} MiB vs paper {mib}"
            );
        }
    }

    #[test]
    fn scaled_preserves_cost_balance() {
        let inst = by_name("PollenUS_Hr-Mb").unwrap();
        let scaled = inst.scaled(0.3);
        let ratio_full = inst.compute_cost() / inst.init_cost();
        let ratio_scaled = scaled.compute_cost() / scaled.init_cost();
        // n is matched to the achieved volume ratio, so the balance is
        // preserved up to rounding of the dims.
        assert!(
            (ratio_scaled / ratio_full - 1.0).abs() < 0.05,
            "balance drifted: {ratio_full} vs {ratio_scaled}"
        );
        assert_eq!(scaled.params.hs, inst.params.hs);
        assert_eq!(scaled.params.ht, inst.params.ht);
        assert!(scaled.params.n < inst.params.n);
    }

    #[test]
    fn scaled_keeps_cylinder_box() {
        let inst = by_name("Dengue_Hr-VHb").unwrap(); // Hs=50, Ht=14
        let s = inst.scaled(0.05);
        assert!(s.params.dims.gx >= 101);
        assert!(s.params.dims.gy >= 101);
        assert!(s.params.dims.gt >= 29);
    }

    #[test]
    fn scaled_one_is_identity() {
        let inst = by_name("Flu_Lr-Lb").unwrap();
        assert_eq!(inst.scaled(1.0), inst);
    }

    #[test]
    fn scaled_to_budget_caps_both() {
        let inst = by_name("eBird_Hr-Hb").unwrap();
        let s = inst.scaled_to_budget(10_000_000, 500_000);
        assert!(s.params.dims.volume() <= 10_000_000);
        assert!(
            s.params.n <= 550_000,
            "n {} should be near the cap",
            s.params.n
        );
        // Small instances pass through untouched.
        let small = by_name("PollenUS_Lr-Lb").unwrap();
        assert_eq!(small.scaled_to_budget(usize::MAX, usize::MAX), small);
    }

    #[test]
    fn generate_points_is_deterministic_and_sized() {
        let inst = by_name("Dengue_Lr-Lb").unwrap().scaled(0.2);
        let a = inst.generate_points(1);
        let b = inst.generate_points(1);
        assert_eq!(a, b);
        assert_eq!(a.len(), inst.params.n);
        let ext = inst.domain().extent();
        for p in &a {
            assert!(ext.contains(p.as_array()));
        }
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("Nope_Lr-Lb").is_none());
    }
}
