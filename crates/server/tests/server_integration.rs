//! End-to-end tests of the serve path: every endpoint's JSON must agree
//! with direct `Grid3` reads of a batch recomputation over the same
//! points, and the service must stay consistent under concurrent
//! readers while ingest is running.

use std::sync::{Arc, Mutex, MutexGuard};
use stkde_core::algorithms::pb_sym;
use stkde_core::Problem;
use stkde_data::{synth, Point};
use stkde_grid::{stats, Bandwidth, Domain, Grid3, GridDims, VoxelRange};
use stkde_kernels::Epanechnikov;
use stkde_server::json::Json;
use stkde_server::{Client, ServiceConfig, StkdeServer};

/// The obs registry is process-global, so ingest counters accumulate
/// across every server this binary starts. Tests serialize here and
/// assert on deltas, so concurrent ingest can't skew the numbers.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).unwrap().as_u64().unwrap()
}

fn domain() -> Domain {
    Domain::from_dims(GridDims::new(24, 20, 16))
}

fn bandwidth() -> Bandwidth {
    Bandwidth::new(3.0, 2.0)
}

/// A time-sorted synthetic stream inside the domain.
fn stream(n: usize, seed: u64) -> Vec<Point> {
    let mut points = synth::uniform(n, domain().extent(), seed).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    points
}

/// Batch `PB-SYM` over `points` — the gold standard the server must match.
fn batch_reference(points: &[Point]) -> Grid3<f64> {
    let problem = Problem::new(domain(), bandwidth(), points.len());
    pb_sym::run::<f64, _>(&problem, &Epanechnikov, points).0
}

fn start_server(window: f64) -> StkdeServer {
    let config = ServiceConfig::new(domain(), bandwidth(), window);
    StkdeServer::start("127.0.0.1:0", 4, config).expect("bind ephemeral port")
}

fn post_events(client: &Client, chunk: &[Point]) {
    let events = Json::Arr(
        chunk
            .iter()
            .map(|p| {
                Json::obj([
                    ("x", Json::from(p.x)),
                    ("y", Json::from(p.y)),
                    ("t", Json::from(p.t)),
                ])
            })
            .collect(),
    );
    let (status, body) = client
        .post_json("/events", &Json::obj([("events", events)]))
        .expect("POST /events");
    assert_eq!(status, 202, "body: {}", body.encode());
    assert_eq!(
        body.get("accepted").unwrap().as_u64(),
        Some(chunk.len() as u64)
    );
}

#[test]
fn every_endpoint_agrees_with_direct_grid_reads() {
    let _serial = serial();
    // Window longer than the stream: every event survives, so the batch
    // recomputation over all points is the exact reference.
    let server = start_server(1e6);
    let client = Client::new(server.addr());
    let before = client.get("/stats").unwrap().1;
    let points = stream(60, 71);
    for chunk in points.chunks(17) {
        post_events(&client, chunk);
    }
    server.service().wait_drained();
    let reference = batch_reference(&points);

    // /healthz
    let (status, health) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));

    // /stats: everything applied, nothing dropped.
    let (status, s) = client.get("/stats").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        stat_u64(&s, "events_applied") - stat_u64(&before, "events_applied"),
        60
    );
    assert_eq!(
        stat_u64(&s, "events_stale"),
        stat_u64(&before, "events_stale")
    );
    assert_eq!(s.get("live_events").unwrap().as_u64(), Some(60));
    assert_eq!(s.get("ingest_queue_depth").unwrap().as_f64(), Some(0.0));
    assert!(
        s.get("last_batch_coalesce_ratio")
            .unwrap()
            .as_f64()
            .unwrap()
            >= 1.0
    );

    // /density at every voxel of a probe set: the hottest voxels plus
    // corners.
    let mut probes: Vec<(usize, usize, usize)> = stats::top_k(&reference, 5)
        .into_iter()
        .map(|(c, _)| c)
        .collect();
    probes.extend([(0, 0, 0), (23, 19, 15), (12, 10, 8)]);
    for (x, y, t) in probes {
        let (status, d) = client.get(&format!("/density?x={x}&y={y}&t={t}")).unwrap();
        assert_eq!(status, 200);
        let got = d.get("density").unwrap().as_f64().unwrap();
        let want = reference.get(x, y, t);
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "voxel ({x},{y},{t}): server {got} vs batch {want}"
        );
    }

    // /region: sub-boxes and the default full grid must match
    // `range_stats` on the reference cube.
    let boxes = [
        ("", VoxelRange::full(domain().dims())),
        (
            "?x0=2&x1=14&y0=1&y1=11&t0=3&t1=9",
            VoxelRange {
                x0: 2,
                x1: 14,
                y0: 1,
                y1: 11,
                t0: 3,
                t1: 9,
            },
        ),
        (
            "?x0=20&t1=4",
            VoxelRange {
                x0: 20,
                x1: 24,
                y0: 0,
                y1: 20,
                t0: 0,
                t1: 4,
            },
        ),
    ];
    for (query, r) in boxes {
        let (status, body) = client.get(&format!("/region{query}")).unwrap();
        assert_eq!(status, 200);
        let want = stats::range_stats(&reference, r);
        let got_sum = body.get("sum").unwrap().as_f64().unwrap();
        let got_max = body.get("max").unwrap().as_f64().unwrap();
        assert!(
            (got_sum - want.sum).abs() <= 1e-9 * want.sum.abs().max(1.0),
            "region {query}: sum {got_sum} vs {}",
            want.sum
        );
        assert!((got_max - want.max).abs() <= 1e-9 * want.max.abs().max(1.0));
        assert_eq!(
            body.get("nonzero").unwrap().as_u64(),
            Some(want.nonzero as u64)
        );
        assert_eq!(
            body.get("voxels").unwrap().as_u64(),
            Some(want.total as u64)
        );
    }

    // /slice: a full time plane equals the reference's plane.
    let t = 8;
    let (status, body) = client.get(&format!("/slice?t={t}")).unwrap();
    assert_eq!(status, 200);
    let values = body.get("values").unwrap().as_array().unwrap();
    let plane = reference.time_slice(t);
    assert_eq!(values.len(), plane.len());
    for (i, (got, &want)) in values.iter().zip(plane).enumerate() {
        let got = got.as_f64().unwrap();
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "slice voxel {i}: {got} vs {want}"
        );
    }

    // A second identical region read must be served from the cache.
    let before = client.get("/stats").unwrap().1;
    let _ = client
        .get("/region?x0=2&x1=14&y0=1&y1=11&t0=3&t1=9")
        .unwrap();
    let after = client.get("/stats").unwrap().1;
    assert!(
        after.get("cache_hits").unwrap().as_u64() > before.get("cache_hits").unwrap().as_u64(),
        "repeated region query should hit the LRU"
    );

    server.shutdown();
}

#[test]
fn windowed_serving_matches_batch_over_survivors() {
    let _serial = serial();
    // Short window: the server evicts; the reference is a batch over the
    // surviving suffix only.
    let window = 4.0;
    let server = start_server(window);
    let client = Client::new(server.addr());
    let points = stream(80, 72);
    for chunk in points.chunks(13) {
        post_events(&client, chunk);
    }
    server.service().wait_drained();

    let newest = points.last().unwrap().t;
    let survivors: Vec<Point> = points
        .iter()
        .filter(|p| p.t >= newest - window)
        .copied()
        .collect();
    let reference = batch_reference(&survivors);

    let (_, s) = client.get("/stats").unwrap();
    assert_eq!(
        s.get("live_events").unwrap().as_u64(),
        Some(survivors.len() as u64)
    );

    for ((x, y, t), want) in stats::top_k(&reference, 4) {
        let (status, d) = client.get(&format!("/density?x={x}&y={y}&t={t}")).unwrap();
        assert_eq!(status, 200);
        let got = d.get("density").unwrap().as_f64().unwrap();
        assert!(
            (got - want).abs() <= 1e-8 * want.abs().max(1.0),
            "voxel ({x},{y},{t}): server {got} vs batch-over-survivors {want}"
        );
    }
    server.shutdown();
}

#[test]
fn concurrent_readers_during_ingest_see_monotone_generations() {
    let _serial = serial();
    let server = start_server(1e6);
    let addr = server.addr();
    let points = stream(120, 73);
    let total = points.len();
    let before = Client::new(addr).get("/stats").unwrap().1;

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let mut last_generation = 0u64;
                let mut reads = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let path = match reads % 3 {
                        0 => "/density?x=12&y=10&t=8".to_string(),
                        1 => format!("/region?x0={}&x1=20", r % 4),
                        _ => "/stats".to_string(),
                    };
                    let (status, body) = client.get(&path).expect("read during ingest");
                    assert_eq!(status, 200, "reader {r} got {}", body.encode());
                    let generation = body.get("generation").unwrap().as_u64().unwrap();
                    assert!(
                        generation >= last_generation,
                        "reader {r}: generation went backwards ({generation} < {last_generation})"
                    );
                    last_generation = generation;
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let ingest_client = Client::new(addr);
    for chunk in points.chunks(5) {
        post_events(&ingest_client, chunk);
    }
    server.service().wait_drained();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for (r, handle) in readers.into_iter().enumerate() {
        let reads = handle.join().expect("reader panicked");
        assert!(reads > 0, "reader {r} never completed a read");
    }

    let (_, s) = ingest_client.get("/stats").unwrap();
    assert_eq!(
        stat_u64(&s, "events_applied") - stat_u64(&before, "events_applied"),
        total as u64
    );
    // Shutdown with no readers left must not deadlock.
    server.shutdown();
}

#[test]
fn per_shard_counters_advance_by_delta_and_reshard_serves_identically() {
    let _serial = serial();
    let server = start_server(1e6);
    let client = Client::new(server.addr());

    // Per-shard ingest ops as a map keyed by shard label. Absolute
    // values are meaningless (the registry is process-global and shared
    // with every other server this binary started), so all assertions
    // below are on deltas.
    let shard_ops = || -> Vec<(String, f64)> {
        let (_, text) = client.get_text("/metrics").unwrap();
        stkde_obs::scrape::parse_text(&text)
            .into_iter()
            .filter(|s| s.name == "stkde_shard_ingest_events_total")
            .map(|s| (s.label("shard").unwrap_or("").to_string(), s.value))
            .collect()
    };
    let before = shard_ops();
    let points = stream(50, 75);
    post_events(&client, &points);
    server.service().wait_drained();
    let after = shard_ops();

    let delta: f64 = after
        .iter()
        .map(|(label, v)| {
            let prev = before
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            v - prev
        })
        .sum();
    // Every event intersects its owner shard at least; with ht=2 most
    // straddle a slab boundary too, so the fan-out total exceeds the
    // event count.
    assert!(
        delta >= 50.0,
        "per-shard ingest ops rose by {delta}, want >= 50"
    );

    // Resharding must not change what the server serves.
    let reference = batch_reference(&points);
    let probe = stats::top_k(&reference, 1)[0];
    let ((x, y, t), want) = probe;
    let read_density = || {
        let (status, d) = client.get(&format!("/density?x={x}&y={y}&t={t}")).unwrap();
        assert_eq!(status, 200);
        d.get("density").unwrap().as_f64().unwrap()
    };
    let before_reshard = read_density();
    assert!((before_reshard - want).abs() <= 1e-9 * want.abs().max(1.0));
    for shards in [1, 5] {
        let (status, body) = client
            .post_json(&format!("/reshard?shards={shards}"), &Json::Null)
            .unwrap();
        assert_eq!(status, 200, "body: {}", body.encode());
        assert_eq!(body.get("shards").unwrap().as_u64(), Some(shards));
        let (_, s) = client.get("/stats").unwrap();
        assert_eq!(s.get("shards").unwrap().as_u64(), Some(shards));
        let got = read_density();
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "shards={shards}: density {got} vs reference {want}"
        );
    }
    server.shutdown();
}

#[test]
fn metrics_endpoint_covers_every_family_on_the_live_daemon() {
    let _serial = serial();
    let server = start_server(1e6);
    let client = Client::new(server.addr());
    let points = stream(40, 74);
    post_events(&client, &points);
    server.service().wait_drained();
    // A cached read so the cache family has traffic.
    let _ = client.get("/region").unwrap();
    let _ = client.get("/region").unwrap();

    let (status, text) = client.get_text("/metrics").unwrap();
    assert_eq!(status, 200);
    let samples = stkde_obs::scrape::parse_text(&text);
    let value_of = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };

    // Ingest, query-latency, cache, scatter, steal-pool, and comm
    // families must all be present; the ones this test drove must be
    // nonzero. (Counters are process-global, so "nonzero" is the
    // strongest safe assertion; exact values belong to /stats deltas.)
    assert!(value_of("stkde_ingest_events_received_total") >= 40.0);
    assert!(value_of("stkde_ingest_events_total") >= 40.0);
    assert!(value_of("stkde_ingest_batches_total") >= 1.0);
    assert!(value_of("stkde_http_request_seconds_count") >= 1.0);
    assert!(value_of("stkde_cache_hits_total") >= 1.0);
    assert!(value_of("stkde_cache_misses_total") >= 1.0);
    assert!(value_of("stkde_cube_bytes") > 0.0);
    // The serve path is sharded: the shard families must be live, with
    // one series per shard label and the configured shard count.
    let shards = ServiceConfig::new(domain(), bandwidth(), 1e6).resolved_shards();
    assert_eq!(value_of("stkde_shard_count"), shards as f64);
    assert!(value_of("stkde_shard_ingest_events_total") >= 40.0);
    assert!(value_of("stkde_shard_publishes_total") >= shards as f64);
    // Only this service's shard labels: leftover gauges from other
    // servers in the same (registry-sharing) binary don't count.
    let layer_sum: f64 = samples
        .iter()
        .filter(|s| {
            s.name == "stkde_shard_layers"
                && s.label("shard")
                    .and_then(|l| l.parse::<usize>().ok())
                    .is_some_and(|i| i < shards)
        })
        .map(|s| s.value)
        .sum();
    assert_eq!(layer_sum, domain().dims().gt as f64, "slabs partition T");
    for shard in 0..shards {
        let label = shard.to_string();
        assert!(
            samples
                .iter()
                .any(|s| s.name == "stkde_shard_epoch" && s.label("shard") == Some(&label)),
            "missing epoch gauge for shard {shard}"
        );
    }
    // The ingest path scatters through kernel_apply, so the scatter
    // family has real traffic too (the server builds core with `obs`).
    assert!(value_of("stkde_scatter_points_total") >= 40.0);
    assert!(value_of("stkde_scatter_voxels_written_total") > 0.0);
    // Families whose code paths this test does not drive still render
    // (zero-valued) thanks to the described catalog.
    for family in [
        "stkde_pool_steals_total",
        "stkde_comm_bytes_sent_total",
        "stkde_halo_wait_seconds",
        "stkde_ingest_apply_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "family {family} missing from /metrics"
        );
    }

    // The trace ring saw the ingest batches.
    let (status, trace) = client.get_text("/trace").unwrap();
    assert_eq!(status, 200);
    assert!(trace.contains("ingest_batch"), "trace: {trace}");

    // /stats and /metrics read the same cells: received must agree when
    // the system is quiescent and this test holds the serial lock.
    let (_, s) = client.get("/stats").unwrap();
    let (_, text2) = client.get_text("/metrics").unwrap();
    let received = stkde_obs::scrape::parse_text(&text2)
        .into_iter()
        .find(|smp| smp.name == "stkde_ingest_events_received_total")
        .unwrap()
        .value;
    assert_eq!(stat_u64(&s, "events_received"), received as u64);

    server.shutdown();
}
