//! Conformance proof for the error-bounded approximate read path.
//!
//! Four properties, each load-bearing for the mip-pyramid fast path:
//!
//! 1. **The bound holds.** For random instances, query boxes, error
//!    budgets, and reshard interleavings, every approximate answer
//!    satisfies `|approx − exact| ≤ error_bound` (per-voxel for
//!    `max`/`min` and slice cells, `× voxels` for `sum`), with the
//!    exact side computed by the full-resolution path on the same
//!    snapshot. Never "usually" — on every single query.
//! 2. **`max_err = 0` is the exact path.** Not "close": the same bits
//!    as [`CubeSnapshot::density_range`] / `density_slice`.
//! 3. **The budget is respected.** An answer served from a pyramid
//!    level (`level > 0`) certifies a bound within
//!    `max_err × peak_density`.
//! 4. **The kernel term is real.** The serve default is the tabulated
//!    kernel; its `error_bound()` folded into `base_err` genuinely
//!    bounds the served densities against an analytic-kernel reference
//!    over the same stream.

use std::collections::BTreeSet;
use stkde_core::{CubeSnapshot, SlidingWindowStkde};
use stkde_data::synth;
use stkde_grid::{Bandwidth, Domain, GridDims, VoxelRange};
use stkde_server::{DensityService, ServiceConfig};

/// Splitmix64 — deterministic, dependency-free test randomness.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn domain() -> Domain {
    Domain::from_dims(GridDims::new(40, 36, 24))
}

fn service(shards: usize, n_events: usize, seed: u64) -> std::sync::Arc<DensityService> {
    let mut cfg = ServiceConfig::new(domain(), Bandwidth::new(5.0, 3.0), 12.0);
    cfg.shards = shards;
    let svc = DensityService::start(cfg);
    let mut points = synth::uniform(n_events, domain().extent(), seed).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    svc.enqueue(points).unwrap();
    svc.wait_drained();
    svc
}

/// A non-empty random voxel box inside the grid.
fn random_range(rng: &mut u64) -> VoxelRange {
    let dims = domain().dims();
    let mut axis = |hi: usize| {
        let a = (next(rng) as usize) % hi;
        let b = (next(rng) as usize) % hi;
        (a.min(b), a.max(b) + 1)
    };
    let (x0, x1) = axis(dims.gx);
    let (y0, y1) = axis(dims.gy);
    let (t0, t1) = axis(dims.gt);
    VoxelRange {
        x0,
        x1,
        y0,
        y1,
        t0,
        t1,
    }
}

/// Assert every certified claim one approximate region answer makes.
fn check_region(snap: &CubeSnapshot<f64>, r: VoxelRange, max_err: f64, base: f64) -> usize {
    let a = snap.density_range_approx(r, max_err, base);
    let exact = snap.density_range(r);
    let b = a.error_bound;
    assert!(b.is_finite() && b >= 0.0, "bad bound {b}");
    let d_sum = (a.stats.sum - exact.sum).abs();
    assert!(
        d_sum <= b * exact.total as f64,
        "sum off by {d_sum} > {b} × {} voxels (level {}, box {r:?})",
        exact.total,
        a.level
    );
    let d_max = (a.stats.max - exact.max).abs();
    assert!(
        d_max <= b,
        "max off by {d_max} > {b} (level {}, box {r:?})",
        a.level
    );
    let d_min = (a.stats.min - exact.min).abs();
    assert!(
        d_min <= b,
        "min off by {d_min} > {b} (level {}, box {r:?})",
        a.level
    );
    assert!(
        a.stats.nonzero >= exact.nonzero,
        "certified nonzero {} under-counts the true {}",
        a.stats.nonzero,
        exact.nonzero
    );
    assert_eq!(a.stats.total, exact.total, "voxel count must be exact");
    if a.level > 0 {
        let budget = max_err * snap.peak_density();
        assert!(
            b <= budget,
            "level {} served a bound {b} above the budget {budget}",
            a.level
        );
    }
    a.level
}

#[test]
fn region_bound_holds_across_random_queries_budgets_and_resharding() {
    let svc = service(3, 400, 91);
    let mut rng = 0xA076_1D64_78BD_642Fu64;
    let budgets = [0.02, 0.1, 0.3, 0.75, 2.0];
    let mut served = BTreeSet::new();
    for &shards in &[3usize, 1, 5] {
        svc.reshard(shards);
        let snap = svc.snapshot();
        let base = svc.kernel_error_bound();
        for _ in 0..60 {
            let r = random_range(&mut rng);
            let max_err = budgets[(next(&mut rng) as usize) % budgets.len()];
            served.insert(check_region(&snap, r, max_err, base));
        }
        // The full grid at a generous budget must leave the exact path.
        let full = VoxelRange {
            x0: 0,
            x1: domain().dims().gx,
            y0: 0,
            y1: domain().dims().gy,
            t0: 0,
            t1: domain().dims().gt,
        };
        served.insert(check_region(&snap, full, 2.0, base));
    }
    assert!(
        served.iter().any(|&l| l > 0),
        "no approximate answer was ever served — the walk never left level 0"
    );
    svc.shutdown();
}

#[test]
fn slice_bound_holds_for_every_covered_voxel() {
    let svc = service(4, 300, 17);
    let snap = svc.snapshot();
    let base = svc.kernel_error_bound();
    let dims = domain().dims();
    let mut rng = 0x5851_F42D_4C95_7F2Du64;
    let mut served = BTreeSet::new();
    for _ in 0..24 {
        let t = (next(&mut rng) as usize) % dims.gt;
        let max_err = [0.05, 0.25, 1.0][(next(&mut rng) as usize) % 3];
        let a = snap.density_slice_approx(t, max_err, base).unwrap();
        served.insert(a.level);
        assert_eq!(a.cell, 1 << a.level);
        assert_eq!(a.values.len(), a.width * a.height);
        let exact = snap.density_slice(t).unwrap();
        for (i, &v) in exact.iter().enumerate() {
            let (x, y) = (i % dims.gx, i / dims.gx);
            let c = a.values[(y >> a.level) * a.width + (x >> a.level)];
            let d = (c - v).abs();
            assert!(
                d <= a.error_bound,
                "t={t} voxel ({x},{y}): off by {d} > {} at level {}",
                a.error_bound,
                a.level
            );
        }
    }
    assert!(
        served.iter().any(|&l| l > 0),
        "no approximate slice was ever served"
    );
    svc.shutdown();
}

#[test]
fn zero_budget_is_bit_exact() {
    let svc = service(3, 250, 23);
    let snap = svc.snapshot();
    let base = svc.kernel_error_bound();
    let mut rng = 0x2545_F491_4F6C_DD1Du64;
    for _ in 0..20 {
        let r = random_range(&mut rng);
        let a = snap.density_range_approx(r, 0.0, base);
        assert_eq!(a.level, 0);
        // Bitwise, not approximately: the exact path is untouched.
        let exact = snap.density_range(r);
        assert_eq!(a.stats.sum.to_bits(), exact.sum.to_bits());
        assert_eq!(a.stats.max.to_bits(), exact.max.to_bits());
        assert_eq!(a.stats.min.to_bits(), exact.min.to_bits());
        assert_eq!(a.stats.nonzero, exact.nonzero);
    }
    for t in 0..domain().dims().gt {
        let a = snap.density_slice_approx(t, 0.0, base).unwrap();
        assert_eq!(a.level, 0);
        let exact = snap.density_slice(t).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.values), bits(&exact));
    }
    svc.shutdown();
}

#[test]
fn lut_kernel_error_genuinely_bounds_served_densities() {
    // The serve default is the tabulated kernel. `kernel_error_bound()`
    // claims: every served density is within that bound of what the
    // analytic kernel would have produced. Check it against an
    // analytic-kernel reference over the same (insert-only) stream —
    // insert-only, so LUT errors cannot hide in cancelled evict pairs.
    let dom = Domain::from_dims(GridDims::new(20, 18, 10));
    let mut cfg = ServiceConfig::new(dom, Bandwidth::new(4.0, 2.5), 1e6);
    cfg.shards = 2;
    let svc = DensityService::start(cfg);
    let mut reference = SlidingWindowStkde::<f64>::new(dom, Bandwidth::new(4.0, 2.5), 1e6);
    let mut points = synth::uniform(120, dom.extent(), 7).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    svc.enqueue(points.clone()).unwrap();
    svc.wait_drained();
    reference.push_batch(&points);

    let base = svc.kernel_error_bound();
    assert!(base > 0.0, "the LUT default must report a nonzero bound");
    let snap = svc.snapshot();
    let dims = dom.dims();
    // Tiny float-summation allowance: the certified term is a
    // real-number bound per contribution; n=120 additions add ulps.
    let slack = 1e-12;
    for t in 0..dims.gt {
        let served = snap.density_slice(t).unwrap();
        let analytic = reference.cube().density_slice(t).unwrap();
        for (i, (&s, &a)) in served.iter().zip(analytic.iter()).enumerate() {
            let d = (s - a).abs();
            assert!(
                d <= base + slack,
                "voxel {i} of t={t}: LUT-vs-analytic gap {d} exceeds the certified {base}"
            );
        }
    }
    svc.shutdown();
}
