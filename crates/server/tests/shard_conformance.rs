//! Conformance proof for the sharded serve path.
//!
//! Three properties, each load-bearing for the PR that sharded the
//! server:
//!
//! 1. **Bit-identity.** A service running any shard count serves values
//!    bit-identical to the single-lock [`SlidingWindowStkde`] over the
//!    same ingest/evict/rebuild sequence — not "close", *equal*.
//! 2. **No torn reads.** Readers hammering snapshots while the stream
//!    advances and the cube is repeatedly resharded only ever observe
//!    `(generation, content)` pairs that the deterministic reference
//!    also produces — a half-applied batch or half-swapped reshard
//!    would hash to a pair outside that set.
//! 3. **Stale cache rejection.** Epoch-keyed cache entries minted
//!    before a reshard are never served afterwards; entries for
//!    untouched slabs survive foreign-shard writes only when the live
//!    count is unchanged.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use stkde_core::{CubeSnapshot, SlidingWindowStkde};
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, GridDims, VoxelRange};
use stkde_server::json::Json;
use stkde_server::{DensityService, ServeKernel, ServiceConfig};

/// Serialize against the other server tests in this binary: the obs
/// registry is process-global and the torture test is timing-sensitive.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn domain() -> Domain {
    Domain::from_dims(GridDims::new(24, 20, 16))
}

fn bandwidth() -> Bandwidth {
    Bandwidth::new(3.0, 2.0)
}

fn stream(n: usize, seed: u64) -> Vec<Point> {
    let mut points = synth::uniform(n, domain().extent(), seed).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    points
}

fn config(window: f64, shards: usize) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(domain(), bandwidth(), window);
    cfg.shards = shards;
    cfg
}

/// FNV-1a over the exact bit patterns of a snapshot's assembled grid
/// plus its live count — collisions aside, equal hashes mean
/// bit-identical served state.
fn content_hash(snap: &CubeSnapshot<f64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&(snap.len() as u64).to_le_bytes());
    for &v in snap.assemble().as_slice() {
        eat(&v.to_bits().to_le_bytes());
    }
    h
}

/// Push `chunk` and wait until the writer applied it. Draining between
/// enqueues pins batch boundaries, making the generation sequence (and
/// therefore every published state) deterministic.
fn push_and_drain(svc: &DensityService, chunk: &[Point]) {
    svc.enqueue(chunk.to_vec()).unwrap();
    svc.wait_drained();
}

#[test]
fn sharded_service_is_bit_identical_to_single_lock_cube() {
    let _serial = serial();
    // Short window + rebuild cadence: the sequence exercises insert,
    // evict, and auto-rebuild, not just the append-only happy path.
    let window = 4.0;
    let points = stream(90, 81);
    for shards in [1, 4, 7] {
        let mut cfg = config(window, shards);
        cfg.auto_rebuild_every = Some(16);
        let svc = DensityService::start(cfg);
        // The reference must rasterize with the service's kernel (the
        // LUT default) — `Tabulated::new` builds identical tables from
        // identical inputs, so bit-identity still holds.
        let mut reference = SlidingWindowStkde::<f64, _>::with_kernel(
            domain(),
            bandwidth(),
            window,
            ServeKernel::default(),
        )
        .auto_rebuild_every(16);
        for chunk in points.chunks(11) {
            push_and_drain(&svc, chunk);
            reference.push_batch(chunk);
            let snap = svc.snapshot();
            assert_eq!(snap.generation(), reference.generation());
            assert_eq!(snap.len(), reference.len());
            assert_eq!(
                snap.assemble(),
                *reference.cube().grid(),
                "serving cube diverged from the single-lock path (shards={shards})"
            );
        }
        // Served read surfaces agree exactly too, across slab boundaries.
        let snap = svc.snapshot();
        let r = VoxelRange {
            x0: 3,
            x1: 20,
            y0: 2,
            y1: 18,
            t0: 5,
            t1: 13,
        };
        assert_eq!(snap.density_range(r), reference.cube().density_range(r));
        for t in 0..domain().dims().gt {
            assert_eq!(snap.density_slice(t), reference.cube().density_slice(t));
        }
        svc.shutdown();
    }
}

#[test]
fn readers_during_resharding_never_observe_torn_state() {
    let _serial = serial();
    let window = 6.0;
    let points = stream(120, 82);
    let svc = DensityService::start(config(window, 4));

    // The deterministic reference: same chunks, same boundaries, with
    // every reshard mirrored as a rebuild. `expected` maps generation →
    // the one content hash a reader may observe at that generation.
    let mut reference = SlidingWindowStkde::<f64, _>::with_kernel(
        domain(),
        bandwidth(),
        window,
        ServeKernel::default(),
    );
    let mut expected: HashMap<u64, u64> = HashMap::new();
    let record = |expected: &mut HashMap<u64, u64>, svc: &DensityService| {
        let snap = svc.snapshot();
        expected.insert(snap.generation(), content_hash(&snap));
    };
    record(&mut expected, &svc);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observed: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            let observed = Arc::clone(&observed);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = svc.snapshot();
                    let generation = snap.generation();
                    assert!(
                        generation >= last_generation,
                        "published generation went backwards"
                    );
                    last_generation = generation;
                    // Hash the full cube through the snapshot: any torn
                    // (half-applied or half-swapped) state hashes to a
                    // value the deterministic reference never produced.
                    observed
                        .lock()
                        .unwrap()
                        .push((generation, content_hash(&snap)));
                }
            })
        })
        .collect();

    for (i, chunk) in points.chunks(7).enumerate() {
        push_and_drain(&svc, chunk);
        reference.push_batch(chunk);
        record(&mut expected, &svc);
        // Reshard mid-stream, repeatedly, while the readers run.
        if i % 4 == 3 {
            let shards = [1, 2, 5][(i / 4) % 3];
            assert_eq!(svc.reshard(shards), shards);
            reference.rebuild();
            record(&mut expected, &svc);
        }
        // Cross-check the writer-side mirror while we're here.
        assert_eq!(svc.generation(), reference.generation());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }

    let observed = observed.lock().unwrap();
    assert!(!observed.is_empty(), "readers never completed a read");
    for &(generation, hash) in observed.iter() {
        let want = expected
            .get(&generation)
            .unwrap_or_else(|| panic!("reader saw unpublished generation {generation}"));
        assert_eq!(
            *want, hash,
            "torn read: generation {generation} served content the writer never published"
        );
    }
    svc.shutdown();
}

#[test]
fn stale_epoch_cache_entries_are_rejected_after_reshard() {
    let _serial = serial();
    let svc = DensityService::start(config(2.0, 4));
    let gt = domain().dims().gt;
    push_and_drain(&svc, &[Point::new(12.0, 10.0, 1.0)]);
    push_and_drain(&svc, &[Point::new(12.0, 10.0, 2.0)]);

    let computed = std::cell::Cell::new(0);
    // A box over the last slab only (t layers 12..16) — far from every
    // event above, so foreign-shard writes can leave it untouched.
    let read = || {
        svc.cached_read("conformance:last-slab", 12, gt, |snap| {
            computed.set(computed.get() + 1);
            Json::from(snap.generation())
        })
    };
    read();
    assert_eq!(computed.get(), 1);

    // Balanced write far from the queried slab: one eviction + one
    // insert keeps the live count at 2 and never touches layers 12..16,
    // so the entry legitimately survives.
    push_and_drain(&svc, &[Point::new(12.0, 10.0, 3.3)]);
    assert_eq!(svc.snapshot().len(), 2);
    read();
    assert_eq!(
        computed.get(),
        1,
        "foreign-shard write must not evict the entry"
    );

    // A reshard rebuilds every shard under fresh epochs: the old entry
    // must be unreachable even though the served values are identical.
    svc.reshard(2);
    read();
    assert_eq!(computed.get(), 2, "stale-epoch entry served after reshard");

    // An unbalanced write changes the live count, which scales every
    // normalized value: the entry must be rejected even though the
    // queried slab's grid is still untouched.
    push_and_drain(&svc, &[Point::new(12.0, 10.0, 3.4)]);
    assert_eq!(svc.snapshot().len(), 3);
    read();
    assert_eq!(computed.get(), 3, "n-change must invalidate the entry");
    svc.shutdown();
}
