//! Command-line configuration for the `stkde-serve` daemon.

use crate::service::{ServeKernel, ServiceConfig};
use std::collections::HashMap;
use stkde_grid::{Bandwidth, Domain, Extent, GridDims, Resolution};

/// Usage text shared by the binary's `--help` and error paths.
pub const USAGE: &str = "stkde-serve — long-running STKDE density service

usage:
  stkde-serve [flags]             run the daemon
  stkde-serve check ADDR          probe a running daemon (host:port);
                                  exits non-zero unless every endpoint
                                  answers 2xx
  stkde-serve check ADDR --shutdown
                                  same, then ask the daemon to stop
  stkde-serve top ADDR            poll /metrics and print ingest/query
                                  rates, latency quantiles, and pool
                                  activity (--interval S, --count N;
                                  count 0 = until interrupted)

flags (defaults in parentheses):
  --dims GXxGYxGT    voxel grid dimensions (64x64x32)
  --sres S           spatial resolution, world units per voxel (1.0)
  --tres T           temporal resolution, world units per voxel (1.0)
  --hs H             spatial bandwidth, world units (6.0)
  --ht H             temporal bandwidth, world units (4.0)
  --window W         sliding-window length, world time units (32.0)
  --host HOST        bind address (127.0.0.1)
  --port P           TCP port; 0 picks an ephemeral one (7171)
  --threads N        HTTP worker threads (available parallelism)
  --cache N          LRU capacity for region/slice responses (64)
  --batch-cap N      max events coalesced per write-lock acquisition (1024)
  --shards N         temporal-slab shards in the serve path; clamped to
                     the T axis (0 = $STKDE_SHARDS, else 4)
  --rebuild-every N  drift-correcting rebuild cadence in update pairs
                     (0 = never)
  --kernel K         serve kernel: `lut` (tabulated Epanechnikov with a
                     certified error bound) or `exact` (analytic) (lut)

endpoints: GET /healthz /stats /metrics /trace /density?x=&y=&t=
           /region?x0=..&t1=&max_err= /slice?t=&max_err=
           POST /events /reshard?shards= /shutdown
           (max_err > 0 allows error-bounded approximate answers served
           from the mip pyramid; /metrics is Prometheus text exposition;
           see OBSERVABILITY.md)";

/// Parsed daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Voxel grid dimensions.
    pub dims: GridDims,
    /// Spatial resolution (world units per voxel).
    pub sres: f64,
    /// Temporal resolution (world units per voxel).
    pub tres: f64,
    /// Spatial bandwidth (world units).
    pub hs: f64,
    /// Temporal bandwidth (world units).
    pub ht: f64,
    /// Sliding-window length (world time units).
    pub window: f64,
    /// Bind host.
    pub host: String,
    /// Bind port (0 = ephemeral).
    pub port: u16,
    /// HTTP worker threads.
    pub threads: usize,
    /// LRU capacity for region/slice responses.
    pub cache: usize,
    /// Max events coalesced per write-lock acquisition.
    pub batch_cap: usize,
    /// Temporal-slab shards (`0` = `$STKDE_SHARDS`, else 4).
    pub shards: usize,
    /// Auto-rebuild cadence (`None` = never).
    pub rebuild_every: Option<usize>,
    /// Serve kernel (default: tabulated Epanechnikov).
    pub kernel: ServeKernel,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            dims: GridDims::new(64, 64, 32),
            sres: 1.0,
            tres: 1.0,
            hs: 6.0,
            ht: 4.0,
            window: 32.0,
            host: "127.0.0.1".into(),
            port: 7171,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache: 64,
            batch_cap: 1024,
            shards: 0,
            rebuild_every: None,
            kernel: ServeKernel::default(),
        }
    }
}

impl ServerConfig {
    /// Parse `--flag value` pairs into a config.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags: HashMap<String, String> = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got `{a}`"))?;
            let val = it
                .next()
                .ok_or_else(|| format!("missing value for --{key}"))?;
            flags.insert(key.to_string(), val.clone());
        }

        let mut cfg = Self::default();
        for (key, val) in &flags {
            match key.as_str() {
                "dims" => cfg.dims = parse_dims(val)?,
                "sres" => cfg.sres = parse_pos(val, "--sres")?,
                "tres" => cfg.tres = parse_pos(val, "--tres")?,
                "hs" => cfg.hs = parse_pos(val, "--hs")?,
                "ht" => cfg.ht = parse_pos(val, "--ht")?,
                "window" => cfg.window = parse_pos(val, "--window")?,
                "host" => cfg.host = val.clone(),
                "port" => cfg.port = parse_num(val, "--port")?,
                "threads" => cfg.threads = parse_num(val, "--threads")?,
                "cache" => cfg.cache = parse_num(val, "--cache")?,
                "batch-cap" => cfg.batch_cap = parse_num(val, "--batch-cap")?,
                "shards" => cfg.shards = parse_num(val, "--shards")?,
                "rebuild-every" => {
                    let n: usize = parse_num(val, "--rebuild-every")?;
                    cfg.rebuild_every = (n > 0).then_some(n);
                }
                "kernel" => cfg.kernel = ServeKernel::parse(val)?,
                other => return Err(format!("unknown flag --{other}\n\n{USAGE}")),
            }
        }
        if cfg.threads == 0 {
            return Err("--threads must be >= 1".into());
        }
        Ok(cfg)
    }

    /// The discretized domain: a grid of `dims` voxels anchored at the
    /// origin with the configured resolutions.
    pub fn domain(&self) -> Domain {
        let extent = Extent::new(
            [0.0, 0.0, 0.0],
            [
                self.dims.gx as f64 * self.sres,
                self.dims.gy as f64 * self.sres,
                self.dims.gt as f64 * self.tres,
            ],
        );
        Domain::from_extent(extent, Resolution::new(self.sres, self.tres))
    }

    /// The service config this server config implies.
    pub fn service_config(&self) -> ServiceConfig {
        let mut sc =
            ServiceConfig::new(self.domain(), Bandwidth::new(self.hs, self.ht), self.window);
        sc.auto_rebuild_every = self.rebuild_every;
        sc.cache_capacity = self.cache;
        sc.ingest_batch_cap = self.batch_cap;
        sc.shards = self.shards;
        sc.kernel = self.kernel.clone();
        sc
    }

    /// The `host:port` string to bind.
    pub fn bind_addr(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad {what} `{s}`: {e}"))
}

fn parse_pos(s: &str, what: &str) -> Result<f64, String> {
    let v: f64 = parse_num(s, what)?;
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(format!("{what} must be positive and finite, got `{s}`"))
    }
}

fn parse_dims(s: &str) -> Result<GridDims, String> {
    let parts: Vec<usize> = s
        .split('x')
        .map(|p| parse_num(p, "--dims component"))
        .collect::<Result<_, _>>()?;
    match parts.as_slice() {
        [gx, gy, gt] if *gx > 0 && *gy > 0 && *gt > 0 => Ok(GridDims::new(*gx, *gy, *gt)),
        _ => Err(format!(
            "--dims needs GXxGYxGT with all parts > 0, got `{s}`"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = ServerConfig::parse(&[]).unwrap();
        assert_eq!(cfg.dims, GridDims::new(64, 64, 32));
        assert_eq!(cfg.port, 7171);
        let cfg = ServerConfig::parse(&args(&[
            "--dims",
            "20x10x5",
            "--hs",
            "2.5",
            "--ht",
            "1.5",
            "--window",
            "9",
            "--port",
            "0",
            "--threads",
            "3",
            "--cache",
            "8",
            "--shards",
            "2",
            "--rebuild-every",
            "100",
        ]))
        .unwrap();
        assert_eq!(cfg.dims, GridDims::new(20, 10, 5));
        assert_eq!(cfg.rebuild_every, Some(100));
        assert_eq!(cfg.domain().dims(), GridDims::new(20, 10, 5));
        let sc = cfg.service_config();
        assert_eq!(sc.cache_capacity, 8);
        assert_eq!(sc.window, 9.0);
        assert_eq!(sc.shards, 2);
        assert_eq!(sc.resolved_shards(), 2);
    }

    #[test]
    fn resolution_scales_the_extent_not_the_grid() {
        let cfg = ServerConfig::parse(&args(&[
            "--dims", "40x40x10", "--sres", "200", "--tres", "1",
        ]))
        .unwrap();
        let d = cfg.domain();
        assert_eq!(d.dims(), GridDims::new(40, 40, 10));
        assert_eq!(d.extent().max[0], 8_000.0);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(ServerConfig::parse(&args(&["--dims", "8x8"])).is_err());
        assert!(ServerConfig::parse(&args(&["--hs", "-1"])).is_err());
        assert!(ServerConfig::parse(&args(&["--bogus", "1"])).is_err());
        assert!(ServerConfig::parse(&args(&["--port"])).is_err());
        assert!(ServerConfig::parse(&args(&["positional"])).is_err());
        assert!(ServerConfig::parse(&args(&["--threads", "0"])).is_err());
        assert!(ServerConfig::parse(&args(&["--kernel", "cubic"])).is_err());
    }

    #[test]
    fn kernel_flag_selects_the_serve_kernel() {
        let lut = ServerConfig::parse(&[]).unwrap();
        assert!(matches!(lut.kernel, ServeKernel::Lut(_)));
        assert!(lut.service_config().kernel.error_bound() > 0.0);
        let exact = ServerConfig::parse(&args(&["--kernel", "exact"])).unwrap();
        assert!(matches!(exact.kernel, ServeKernel::Exact(_)));
        assert_eq!(exact.service_config().kernel.error_bound(), 0.0);
    }
}
