//! A small LRU cache for query results.
//!
//! Region and slice queries are the expensive reads (they touch up to the
//! whole cube); the service caches their encoded responses keyed on the
//! canonical query string **plus the per-shard epoch vector** of the
//! slabs the query reads (and the live event count, which scales every
//! normalized value) — see
//! [`CubeSnapshot::cache_epoch_key`](stkde_core::CubeSnapshot::cache_epoch_key).
//! Any write the result could observe changes the key, so stale entries
//! can never be served — they simply stop being hit and age out of the
//! LRU order. A write that only touched *other* shards (and left the
//! live count unchanged) keeps the key intact, so sharding makes the
//! cache *more* durable, not less.
//!
//! Capacities are tiny (tens of entries), so the cache favors simplicity:
//! a vector ordered most-recently-used-first with linear lookup.

/// An LRU cache with hit/miss accounting.
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    /// Most recently used first.
    entries: Vec<(K, V)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq, V: Clone> LruCache<K, V> {
    /// A cache holding at most `cap` entries (`0` disables caching).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i);
                let value = entry.1.clone();
                self.entries.insert(0, entry);
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used one
    /// if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| k == &key) {
            self.entries.remove(i);
        }
        self.entries.insert(0, (key, value));
        self.entries.truncate(self.cap);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a recompute.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_promotion() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some("one")); // promotes 1
        c.insert(3, "three"); // evicts 2 (LRU)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&3), Some("three"));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn epoch_vector_in_key_separates_cube_states() {
        // The service keys on (query, epoch-vector): a write that bumps
        // any epoch the query touches makes the old entry unreachable,
        // while foreign-shard writes leave the key (and the entry) alone.
        let mut c: LruCache<(String, String), &str> = LruCache::new(8);
        c.insert(("region".into(), "n2,0-8@3".into()), "old");
        assert_eq!(c.get(&("region".into(), "n2,0-8@5".into())), None);
        c.insert(("region".into(), "n2,0-8@5".into()), "new");
        assert_eq!(c.get(&("region".into(), "n2,0-8@5".into())), Some("new"));
    }
}
