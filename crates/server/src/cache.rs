//! A small LRU cache for query results.
//!
//! Region and slice queries are the expensive reads (they touch up to the
//! whole cube); the service caches their encoded responses keyed on the
//! canonical query string **plus the per-shard epoch vector** of the
//! slabs the query reads (and the live event count, which scales every
//! normalized value) — see
//! [`CubeSnapshot::cache_epoch_key`](stkde_core::CubeSnapshot::cache_epoch_key).
//! Any write the result could observe changes the key, so stale entries
//! can never be served — they simply stop being hit and age out of the
//! LRU order. A write that only touched *other* shards (and left the
//! live count unchanged) keeps the key intact, so sharding makes the
//! cache *more* durable, not less.
//!
//! Capacities are tiny (tens of entries), so lookup stays a linear scan —
//! but recency is a per-entry stamp, not vector order: a hit bumps one
//! `u64` instead of shifting the vector twice (`remove` + `insert(0)`
//! moved every entry on every hit), and eviction replaces the
//! minimum-stamp slot in place. The service stores encoded response
//! bodies as `Arc<[u8]>`, so a hit is a refcount bump, never a byte copy.

/// An LRU cache with hit/miss accounting.
#[derive(Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    /// Unordered storage; the `u64` is the entry's last-use stamp.
    entries: Vec<(K, V, u64)>,
    /// Monotone use counter handing out recency stamps.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq, V: Clone> LruCache<K, V> {
    /// A cache holding at most `cap` entries (`0` disables caching).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, marking it most-recently-used on a hit. The value
    /// comes back via `Clone` — for the service's `Arc<[u8]>` bodies
    /// that is a refcount bump, not a copy of the encoded payload.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        match self.entries.iter_mut().find(|(k, _, _)| k == key) {
            Some(entry) => {
                self.hits += 1;
                entry.2 = tick;
                Some(entry.1.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least recently used one
    /// if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some(entry) = self.entries.iter_mut().find(|(k, _, _)| *k == key) {
            entry.1 = value;
            entry.2 = tick;
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push((key, value, tick));
            return;
        }
        // Full: overwrite the stalest slot in place (no shifting).
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, _, stamp))| *stamp)
            .map(|(i, _)| i)
            .expect("cap > 0 and the cache is full");
        self.entries[lru] = (key, value, tick);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a recompute.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_miss_and_promotion() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        c.insert(2, "two");
        assert_eq!(c.get(&1), Some("one")); // promotes 1
        c.insert(3, "three"); // evicts 2 (LRU)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&3), Some("three"));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn epoch_vector_in_key_separates_cube_states() {
        // The service keys on (query, epoch-vector): a write that bumps
        // any epoch the query touches makes the old entry unreachable,
        // while foreign-shard writes leave the key (and the entry) alone.
        let mut c: LruCache<(String, String), &str> = LruCache::new(8);
        c.insert(("region".into(), "n2,0-8@3".into()), "old");
        assert_eq!(c.get(&("region".into(), "n2,0-8@5".into())), None);
        c.insert(("region".into(), "n2,0-8@5".into()), "new");
        assert_eq!(c.get(&("region".into(), "n2,0-8@5".into())), Some("new"));
    }

    #[test]
    fn shared_bodies_are_refcounted_not_copied() {
        // The serving regression this cache had: `get` promoted by
        // remove+insert(0) (two O(n) shifts) and the value clone was a
        // payload copy for owned types. With `Arc<[u8]>` values, a hit
        // must hand back the *same allocation*.
        let mut c: LruCache<u32, Arc<[u8]>> = LruCache::new(2);
        let body: Arc<[u8]> = b"{\"sum\":1.0}".as_slice().into();
        c.insert(7, Arc::clone(&body));
        let hit = c.get(&7).expect("just inserted");
        assert!(
            Arc::ptr_eq(&hit, &body),
            "cache hit must share the stored allocation"
        );
        // original + cached copy + returned hit
        assert_eq!(Arc::strong_count(&body), 3);
    }

    #[test]
    fn eviction_follows_stamp_recency_under_churn() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        // Touch 1 and 3; 2 becomes the LRU and must be the one replaced.
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        c.insert(4, 40);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.get(&4), Some(40));
    }
}
