//! The serve tier's metric handles and family catalog.
//!
//! The server hard-enables `stkde-obs/obs` (observability is not
//! optional on the operator surface), so everything here records for
//! real. [`describe_catalog`] pre-registers every family the workspace
//! emits — including the scatter, steal-pool, and comm families whose
//! instrumentation lives in other crates — so a `/metrics` scrape shows
//! the full catalog with `# HELP`/`# TYPE` lines from the first
//! request, zero-valued until the corresponding path runs.
//!
//! `/stats` and `/metrics` are two renderings of the *same* registry
//! cells (see [`ServerMetrics`]); they cannot drift.

use stkde_obs::{global, names, Counter, Gauge, Histogram, Kind};

/// Every handle the service records through, resolved once at startup.
/// All handles are `Copy` references into the global registry, so the
/// struct is freely copied into the writer thread.
#[derive(Clone, Copy)]
pub(crate) struct ServerMetrics {
    /// Events accepted by `enqueue` (Release increments paired with the
    /// Acquire load in the drain check).
    pub received: Counter,
    /// Events rasterized into the cube (`outcome="applied"`).
    pub applied: Counter,
    /// Events dropped behind the window head (`outcome="stale"`).
    pub stale: Counter,
    /// Events that aged out within their own batch
    /// (`outcome="aged_in_batch"`).
    pub aged_in_batch: Counter,
    /// Stored events evicted by window advance.
    pub evicted: Counter,
    /// Write-lock acquisitions (coalesced batches applied).
    pub batches: Counter,
    /// Channel sends those batches coalesced.
    pub coalesced_sends: Counter,
    /// Full rebuilds the cube performed (eviction churn).
    pub rebuilds: Counter,
    /// Events per applied batch.
    pub batch_size: Histogram,
    /// Wall seconds per applied batch (lock + scatter).
    pub apply_seconds: Histogram,
    /// Events received but not yet settled.
    pub queue_depth: Gauge,
    /// Events per channel send in the most recent batch.
    pub last_coalesce_ratio: Gauge,
    /// Live temporal-slab shards in the serve path.
    pub shard_count: Gauge,
    /// Cube write generation.
    pub generation: Gauge,
    /// Events inside the sliding window.
    pub live_events: Gauge,
    /// Heap bytes of the density grid.
    pub cube_bytes: Gauge,
    /// `cached_read` hits.
    pub cache_hits: Counter,
    /// `cached_read` misses.
    pub cache_misses: Counter,
    /// Entries currently in the response cache.
    pub cache_entries: Gauge,
    /// Wall seconds per slab mip-pyramid (re)build on the approximate
    /// read path.
    pub pyramid_build_seconds: Histogram,
    /// Resident pyramid bytes in the published snapshot.
    pub pyramid_bytes: Gauge,
    /// Seconds since service start.
    pub uptime: Gauge,
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ServerMetrics")
    }
}

impl ServerMetrics {
    /// Resolve all handles (registering the catalog first, so families
    /// carry help text however the service is embedded).
    pub fn new() -> Self {
        describe_catalog();
        let g = global();
        ServerMetrics {
            received: g.counter(names::INGEST_RECEIVED, &[]),
            applied: g.counter(names::INGEST_EVENTS, &[("outcome", "applied")]),
            stale: g.counter(names::INGEST_EVENTS, &[("outcome", "stale")]),
            aged_in_batch: g.counter(names::INGEST_EVENTS, &[("outcome", "aged_in_batch")]),
            evicted: g.counter(names::INGEST_EVICTIONS, &[]),
            batches: g.counter(names::INGEST_BATCHES, &[]),
            coalesced_sends: g.counter(names::INGEST_COALESCED_SENDS, &[]),
            rebuilds: g.counter(names::INGEST_REBUILDS, &[]),
            batch_size: g.histogram(names::INGEST_BATCH_SIZE, &[]),
            apply_seconds: g.histogram(names::INGEST_APPLY_SECONDS, &[]),
            queue_depth: g.gauge(names::INGEST_QUEUE_DEPTH, &[]),
            last_coalesce_ratio: g.gauge(names::INGEST_LAST_COALESCE_RATIO, &[]),
            shard_count: g.gauge(names::SHARD_COUNT, &[]),
            generation: g.gauge(names::CUBE_GENERATION, &[]),
            live_events: g.gauge(names::CUBE_LIVE_EVENTS, &[]),
            cube_bytes: g.gauge(names::CUBE_BYTES, &[]),
            cache_hits: g.counter(names::CACHE_HITS, &[]),
            cache_misses: g.counter(names::CACHE_MISSES, &[]),
            cache_entries: g.gauge(names::CACHE_ENTRIES, &[]),
            pyramid_build_seconds: g.histogram(names::APPROX_PYRAMID_BUILD_SECONDS, &[]),
            pyramid_bytes: g.gauge(names::APPROX_PYRAMID_BYTES, &[]),
            uptime: g.gauge(names::UPTIME_SECONDS, &[]),
        }
    }

    /// Settled events (applied + stale + aged), with the Acquire load
    /// that pairs with the writer's Release increments.
    pub fn settled_acquire(&self) -> u64 {
        self.applied.get_acquire() + self.stale.get_acquire() + self.aged_in_batch.get_acquire()
    }
}

/// The per-shard metric handles for one shard index. Shard labels are
/// dynamic (the shard count can change at runtime via `/reshard`), so
/// these resolve through the registry per call instead of being cached
/// in [`ServerMetrics`]; the writer touches them once per coalesced
/// batch, not per event, so the registry lock is off the hot path.
pub(crate) struct ShardMetrics {
    /// Cylinder applications that intersected this shard's slab.
    pub ingest_events: Counter,
    /// Copy-on-write publications of this shard's slab.
    pub publishes: Counter,
    /// Generation at the shard's last content change.
    pub epoch: Gauge,
    /// Time layers the shard owns.
    pub layers: Gauge,
}

/// Resolve the handles for shard `idx`.
pub(crate) fn shard_metrics(idx: usize) -> ShardMetrics {
    let g = global();
    let shard = idx.to_string();
    let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
    ShardMetrics {
        ingest_events: g.counter(names::SHARD_INGEST_EVENTS, labels),
        publishes: g.counter(names::SHARD_PUBLISHES, labels),
        epoch: g.gauge(names::SHARD_EPOCH, labels),
        layers: g.gauge(names::SHARD_LAYERS, labels),
    }
}

/// The per-level hit counter of the approximate read path. The `level`
/// label is dynamic (the pyramid depth depends on grid and slab shape),
/// so this resolves through the registry per computed answer — which is
/// once per cache miss, never per request.
pub(crate) fn approx_query_counter(level: usize) -> Counter {
    let level = level.to_string();
    global().counter(names::APPROX_QUERIES, &[("level", level.as_str())])
}

/// Record one HTTP request into the global registry. `path` is folded
/// onto the known endpoint set (unknown → `"other"`) and `status` onto
/// its class, keeping label cardinality bounded no matter what clients
/// send.
pub(crate) fn record_http(method: &str, path: &str, status: u16, seconds: f64) {
    let endpoint = canonical_endpoint(path);
    let method = match method {
        "GET" => "GET",
        "POST" => "POST",
        _ => "other",
    };
    let status = match status {
        200..=299 => "2xx",
        400..=499 => "4xx",
        500..=599 => "5xx",
        _ => "other",
    };
    let g = global();
    g.histogram(names::HTTP_REQUEST_SECONDS, &[("endpoint", endpoint)])
        .observe(seconds);
    g.counter(
        names::HTTP_REQUESTS,
        &[
            ("endpoint", endpoint),
            ("method", method),
            ("status", status),
        ],
    )
    .inc();
}

/// The served endpoint set, as `/metrics` label values.
pub(crate) fn canonical_endpoint(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/stats" => "/stats",
        "/metrics" => "/metrics",
        "/trace" => "/trace",
        "/density" => "/density",
        "/region" => "/region",
        "/slice" => "/slice",
        "/events" => "/events",
        "/reshard" => "/reshard",
        "/shutdown" => "/shutdown",
        _ => "other",
    }
}

/// Pre-register every metric family the workspace emits (idempotent).
pub(crate) fn describe_catalog() {
    let g = global();
    let c = Kind::Counter;
    let ga = Kind::Gauge;
    let h = Kind::Histogram;
    for (name, kind, help) in [
        (
            names::SCATTER_POINTS,
            c,
            "Points pushed through the kernel_apply scatter engine.",
        ),
        (
            names::SCATTER_CHORD_ROWS,
            c,
            "Non-empty chord rows written by the PB-SYM engine.",
        ),
        (
            names::SCATTER_VOXELS_WRITTEN,
            c,
            "Voxels written by the PB-SYM engine (chord length x nonzero planes).",
        ),
        (
            names::SCATTER_BOX_VOXELS,
            c,
            "Voxels in the clipped bounding boxes of scattered points; 1 - written/box is the skipped-zero fraction.",
        ),
        (
            names::SPARSE_BRICKS_ALLOCATED,
            c,
            "8^3 bricks materialized by the sparse scatter backend.",
        ),
        (
            names::SPARSE_BRICKS_TOUCHED,
            c,
            "Brick-row segments written by the sparse scatter loop.",
        ),
        (
            names::SPARSE_ALLOC_CAS_RACES,
            c,
            "Brick allocations lost to a concurrent CAS winner (duplicate zero-fill discarded).",
        ),
        (names::POOL_STEALS, c, "Successful deque steals by worker."),
        (
            names::POOL_STEAL_FAILURES,
            c,
            "Full steal sweeps that found no work, by worker.",
        ),
        (names::POOL_TASKS, c, "Jobs executed by worker."),
        (names::POOL_PARKS, c, "Workers parked on the sleep gate."),
        (
            names::POOL_WAKES,
            c,
            "Wake broadcasts issued while at least one worker slept.",
        ),
        (
            names::INGEST_RECEIVED,
            c,
            "Events accepted into the ingest queue.",
        ),
        (
            names::INGEST_EVENTS,
            c,
            "Settled ingest events by outcome (applied / stale / aged_in_batch).",
        ),
        (
            names::INGEST_EVICTIONS,
            c,
            "Stored events evicted by window advance.",
        ),
        (
            names::INGEST_BATCHES,
            c,
            "Coalesced write batches applied (one write-lock acquisition each).",
        ),
        (
            names::INGEST_COALESCED_SENDS,
            c,
            "Channel sends coalesced into applied batches.",
        ),
        (names::INGEST_BATCH_SIZE, h, "Events per applied batch."),
        (
            names::INGEST_APPLY_SECONDS,
            h,
            "Wall seconds per applied batch (lock + scatter).",
        ),
        (
            names::INGEST_QUEUE_DEPTH,
            ga,
            "Events received but not yet settled (ingest generation lag).",
        ),
        (
            names::INGEST_LAST_COALESCE_RATIO,
            ga,
            "Events per channel send in the most recent batch.",
        ),
        (
            names::INGEST_REBUILDS,
            c,
            "Full cube rebuilds triggered by eviction churn.",
        ),
        (
            names::SHARD_INGEST_EVENTS,
            c,
            "Cylinder applications (inserts + evictions) intersecting a shard's slab, by shard.",
        ),
        (
            names::SHARD_PUBLISHES,
            c,
            "Copy-on-write slab publications, by shard.",
        ),
        (
            names::SHARD_EPOCH,
            ga,
            "Shard content epoch (cube generation at last change), by shard.",
        ),
        (
            names::SHARD_LAYERS,
            ga,
            "Time layers owned by a shard's slab, by shard.",
        ),
        (
            names::SHARD_COUNT,
            ga,
            "Live temporal-slab shards in the serve path.",
        ),
        (names::CUBE_GENERATION, ga, "Cube write generation."),
        (
            names::CUBE_LIVE_EVENTS,
            ga,
            "Events inside the sliding window.",
        ),
        (names::CUBE_BYTES, ga, "Heap bytes of the density grid."),
        (
            names::HTTP_REQUESTS,
            c,
            "HTTP requests by endpoint, method, and status class.",
        ),
        (
            names::HTTP_REQUEST_SECONDS,
            h,
            "HTTP request latency by endpoint.",
        ),
        (names::CACHE_HITS, c, "Query-cache hits."),
        (names::CACHE_MISSES, c, "Query-cache misses."),
        (names::CACHE_ENTRIES, ga, "Entries in the query cache."),
        (
            names::APPROX_QUERIES,
            c,
            "Approximate-path answers computed, by pyramid level (0 = budget missed, served exact).",
        ),
        (
            names::APPROX_PYRAMID_BUILD_SECONDS,
            h,
            "Wall seconds per slab mip-pyramid (re)build on the approximate read path.",
        ),
        (
            names::APPROX_PYRAMID_BYTES,
            ga,
            "Resident mip-pyramid bytes in the published snapshot.",
        ),
        (names::COMM_MSGS_SENT, c, "Messages sent by rank."),
        (names::COMM_BYTES_SENT, c, "Payload bytes sent by rank."),
        (names::COMM_MSGS_RECV, c, "Messages received by rank."),
        (names::COMM_BYTES_RECV, c, "Payload bytes received by rank."),
        (names::COMM_FRAMES_SENT, c, "Wire frames sent by rank."),
        (names::COMM_FRAMES_RECV, c, "Wire frames received by rank."),
        (names::COMM_BARRIERS, c, "Barriers participated in, by rank."),
        (
            names::HALO_COMPUTE_SECONDS,
            h,
            "Rank-local scatter seconds in the halo exchange, by mode.",
        ),
        (
            names::HALO_WAIT_SECONDS,
            h,
            "Seconds blocked waiting for neighbor halos, by mode.",
        ),
        (names::SPAN_SECONDS, h, "Span durations by span name."),
        (names::UPTIME_SECONDS, ga, "Seconds since service start."),
    ] {
        g.describe(name, kind, help);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_renders_every_family_with_type_lines() {
        describe_catalog();
        let text = global().render();
        for name in [
            names::SCATTER_POINTS,
            names::SPARSE_BRICKS_ALLOCATED,
            names::SPARSE_ALLOC_CAS_RACES,
            names::POOL_STEALS,
            names::INGEST_EVENTS,
            names::HTTP_REQUEST_SECONDS,
            names::CACHE_HITS,
            names::COMM_BYTES_SENT,
        ] {
            assert!(text.contains(&format!("# TYPE {name} ")), "{name} missing");
        }
    }

    #[test]
    fn http_recording_bounds_label_cardinality() {
        record_http("DELETE", "/nope/../../etc", 999, 0.001);
        record_http("GET", "/healthz", 204, 0.001);
        let text = global().render();
        assert!(text.contains("endpoint=\"other\",method=\"other\",status=\"other\""));
        assert!(text.contains("endpoint=\"/healthz\",method=\"GET\",status=\"2xx\""));
    }
}
