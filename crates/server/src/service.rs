//! The density service: a temporal-slab-sharded cube with one writer,
//! parallel per-shard ingest, and lock-free snapshot reads.
//!
//! The ingest-then-query split mirrors the serving architecture of
//! temporal KDE systems: estimation cost is paid once per event on a
//! dedicated writer thread, then amortized across arbitrarily many
//! queries. Concretely:
//!
//! - **Writers** call [`DensityService::enqueue`], which only pushes onto
//!   an unbounded channel — ingestion never blocks on the cube lock.
//! - **The writer thread** drains the channel, sorts the drained batch by
//!   time, drops events that arrive behind the window head (stale), and
//!   applies the rest with [`ShardedWindowStkde::push_batch`]: the batch
//!   fans across the temporal-slab shards and each shard rasterizes its
//!   clipped portion in parallel on the rayon pool — disjoint slabs, no
//!   intra-batch locking.
//! - **Readers** never touch the writer's cube. After every batch the
//!   writer publishes a copy-on-write [`CubeSnapshot`] (only slabs whose
//!   epoch changed are copied) and swaps one `Arc` pointer; a read
//!   clones that `Arc` and serves from an immutable, consistent cube —
//!   a long `/region` scan cannot block ingest and can never observe a
//!   torn (half-applied) state. The swap happens *before* the writer
//!   releases the cube lock, so published generations are monotone.
//! - Region and slice results are memoized in an LRU keyed on the query
//!   string **plus the per-shard epoch vector** of the slabs the query
//!   touches ([`CubeSnapshot::cache_epoch_key`]): a write to a foreign
//!   slab that leaves the live count unchanged does not evict entries,
//!   while any write the result could see changes the key.
//!
//! Every counter lives in the `stkde-obs` global registry (see
//! [`crate::metrics`]), so `/stats` and `/metrics` read the same cells.
//! Ordering discipline: the quiescence check pairs the Release
//! increments of `received` / settling counters with Acquire loads
//! ([`Counter::add_release`](stkde_obs::Counter::add_release) /
//! [`Counter::get_acquire`](stkde_obs::Counter::get_acquire));
//! everything else is Relaxed — monotone statistics where readers
//! tolerate lag and no other memory depends on their order.

use crate::cache::LruCache;
use crate::json::Json;
use crate::metrics::{approx_query_counter, shard_metrics, ServerMetrics};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use stkde_core::{CubeSnapshot, Problem, PyramidBuildReport, ShardedWindowStkde};
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, GridStats, VoxelRange};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel, Tabulated};

/// The kernel the serving cube rasterizes with.
///
/// The default is the tabulated (LUT) Epanechnikov: same scatter
/// complexity, cheaper per-voxel evaluation, and — the property the
/// approximate read path needs — a *certified* interpolation error
/// ([`Tabulated::error_bound`]) that the service folds into every
/// reported `error_bound`. `Exact` keeps the analytic kernel (zero base
/// error) for callers that want bit-parity with the offline PB-SYM
/// algorithms.
#[derive(Debug, Clone)]
pub enum ServeKernel {
    /// Analytic Epanechnikov (no tabulation error).
    Exact(Epanechnikov),
    /// Tabulated Epanechnikov with a certified interpolation bound.
    Lut(Tabulated<Epanechnikov>),
}

impl ServeKernel {
    /// The analytic kernel.
    pub fn exact() -> Self {
        ServeKernel::Exact(Epanechnikov)
    }

    /// The tabulated kernel at its default resolution.
    pub fn lut() -> Self {
        ServeKernel::Lut(Tabulated::new(Epanechnikov))
    }

    /// Certified bound on `|k_served − k_exact|` per kernel evaluation
    /// (zero for the analytic kernel).
    pub fn error_bound(&self) -> f64 {
        match self {
            ServeKernel::Exact(_) => 0.0,
            ServeKernel::Lut(lut) => lut.error_bound(),
        }
    }

    /// Parse a `--kernel` flag value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "lut" => Ok(Self::lut()),
            "exact" => Ok(Self::exact()),
            other => Err(format!("unknown kernel `{other}` (use `lut` or `exact`)")),
        }
    }
}

impl Default for ServeKernel {
    fn default() -> Self {
        Self::lut()
    }
}

impl SpaceTimeKernel for ServeKernel {
    #[inline]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        match self {
            ServeKernel::Exact(k) => k.spatial(u, v),
            ServeKernel::Lut(k) => k.spatial(u, v),
        }
    }

    #[inline]
    fn temporal(&self, w: f64) -> f64 {
        match self {
            ServeKernel::Exact(k) => k.temporal(w),
            ServeKernel::Lut(k) => k.temporal(w),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ServeKernel::Exact(k) => k.name(),
            ServeKernel::Lut(k) => k.name(),
        }
    }
}

/// Configuration of a [`DensityService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The discretized space-time domain of the cube.
    pub domain: Domain,
    /// Kernel bandwidths (world units).
    pub bandwidth: Bandwidth,
    /// Sliding-window length (time units).
    pub window: f64,
    /// Drift-correcting rebuild cadence in insert/evict pairs
    /// (`None` = never; the serving cube is `f64`, where drift is ULPs).
    pub auto_rebuild_every: Option<usize>,
    /// LRU capacity for region/slice responses (`0` disables caching).
    pub cache_capacity: usize,
    /// Largest coalesced batch the writer applies per lock acquisition.
    pub ingest_batch_cap: usize,
    /// Temporal-slab shard count (`0` = the `STKDE_SHARDS` environment
    /// variable, else 4; always clamped to the grid's T extent).
    pub shards: usize,
    /// The kernel the cube rasterizes with (default: tabulated
    /// Epanechnikov, whose certified interpolation bound feeds the
    /// approximate read path).
    pub kernel: ServeKernel,
}

impl ServiceConfig {
    /// A config with serving defaults: cache 64 entries, coalesce up to
    /// 1024 events per write-lock acquisition, no auto-rebuild, shard
    /// count from the environment, LUT serve kernel.
    pub fn new(domain: Domain, bandwidth: Bandwidth, window: f64) -> Self {
        Self {
            domain,
            bandwidth,
            window,
            auto_rebuild_every: None,
            cache_capacity: 64,
            ingest_batch_cap: 1024,
            shards: 0,
            kernel: ServeKernel::default(),
        }
    }

    /// The shard count this config resolves to (flag > env > default 4).
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            return self.shards;
        }
        std::env::var("STKDE_SHARDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(4)
    }
}

/// The writer-owned cube and the reader-facing snapshot slot, shared
/// between the service handle and the ingest thread.
#[derive(Debug)]
struct CubeState {
    cube: Mutex<ShardedWindowStkde<f64, ServeKernel>>,
    snapshot: RwLock<Arc<CubeSnapshot<f64>>>,
}

impl CubeState {
    /// Publish the cube's current state and swap it into the reader
    /// slot. **Must be called while holding the `cube` lock** — that is
    /// what keeps published generations monotone when ingest and
    /// reshard race. Also bumps the per-shard publish counters for
    /// every slab that was actually recopied.
    fn publish_and_swap(
        &self,
        cube: &mut ShardedWindowStkde<f64, ServeKernel>,
    ) -> Arc<CubeSnapshot<f64>> {
        let snap = cube.publish();
        let prev = {
            let mut slot = self.snapshot.write();
            std::mem::replace(&mut *slot, Arc::clone(&snap))
        };
        for (i, plane) in snap.shards().iter().enumerate() {
            let copied = match prev.shards().get(i) {
                Some(old) => !Arc::ptr_eq(old, plane),
                None => true,
            };
            if copied {
                shard_metrics(i).publishes.inc();
            }
        }
        snap
    }
}

/// Query cache: `(query string, epoch-vector key)` → encoded response
/// bytes — see [`CubeSnapshot::cache_epoch_key`].
type QueryCache = LruCache<(String, String), Arc<[u8]>>;

/// The long-running density service. Cheap to share: wrap in an [`Arc`]
/// (as [`DensityService::start`] does) and clone handles freely.
#[derive(Debug)]
pub struct DensityService {
    state: Arc<CubeState>,
    tx: Mutex<Option<Sender<Vec<Point>>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    cache: Mutex<QueryCache>,
    metrics: ServerMetrics,
    shutdown_requested: AtomicBool,
    domain: Domain,
    window: f64,
    /// The serve kernel's certified evaluation error converted to
    /// per-voxel *density* units: `kernel.error_bound() × norm(n=1)`.
    /// n-independent — each of the ≤ n live events contributes at most
    /// `ε·norm_unit` to an unnormalized voxel, and dividing by n for the
    /// density cancels the count; insert/evict pairs cancel their LUT
    /// error bit-exactly, so the bound never accumulates over the window.
    kernel_error: f64,
    /// [`SpaceTimeKernel::name`] of the configured serve kernel.
    kernel_name: &'static str,
    started: Instant,
}

impl DensityService {
    /// Build the sharded cube, publish its empty snapshot, spawn the
    /// writer thread, and return the service.
    pub fn start(config: ServiceConfig) -> Arc<Self> {
        // Per-voxel density error of the configured kernel (0 for
        // `exact`): the unit-problem norm is exactly the factor one
        // event's kernel evaluation is scaled by before the final ÷n.
        let kernel_error =
            config.kernel.error_bound() * Problem::new(config.domain, config.bandwidth, 1).norm;
        let kernel_name = config.kernel.name();
        let mut cube = ShardedWindowStkde::<f64, ServeKernel>::with_kernel(
            config.domain,
            config.bandwidth,
            config.window,
            config.resolved_shards(),
            config.kernel.clone(),
        );
        if let Some(n) = config.auto_rebuild_every {
            cube = cube.auto_rebuild_every(n);
        }
        let metrics = ServerMetrics::new();
        metrics.cube_bytes.set(cube.heap_bytes() as f64);
        metrics.shard_count.set(cube.shard_count() as f64);
        for (i, s) in cube.shard_batch_stats().iter().enumerate() {
            let m = shard_metrics(i);
            m.epoch.set(s.epoch as f64);
            m.layers.set((s.t1 - s.t0) as f64);
        }
        let snapshot = cube.publish();
        let state = Arc::new(CubeState {
            cube: Mutex::new(cube),
            snapshot: RwLock::new(snapshot),
        });
        let (tx, rx) = mpsc::channel::<Vec<Point>>();

        let writer = {
            let state = Arc::clone(&state);
            let batch_cap = config.ingest_batch_cap.max(1);
            std::thread::Builder::new()
                .name("stkde-ingest".into())
                .spawn(move || writer_loop(&rx, &state, metrics, batch_cap))
                .expect("spawn ingest writer")
        };

        Arc::new(Self {
            state,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            metrics,
            shutdown_requested: AtomicBool::new(false),
            domain: config.domain,
            window: config.window,
            kernel_error,
            kernel_name,
            started: Instant::now(),
        })
    }

    /// Certified per-voxel density error of the configured serve kernel
    /// (0 for the analytic kernel). Query handlers fold this into every
    /// reported `error_bound`, exact path included.
    pub fn kernel_error_bound(&self) -> f64 {
        self.kernel_error
    }

    /// The configured serve kernel's name (`"epanechnikov"`,
    /// `"tabulated(epanechnikov)"`, …).
    pub fn kernel_name(&self) -> &'static str {
        self.kernel_name
    }

    /// Record a pyramid build into the obs registry: build seconds are
    /// observed only when slabs were actually (re-)reduced, the resident
    /// bytes gauge always tracks the published snapshot.
    pub(crate) fn note_pyramid_build(&self, report: &PyramidBuildReport) {
        if report.built > 0 {
            self.metrics.pyramid_build_seconds.observe(report.seconds);
        }
        self.metrics.pyramid_bytes.set(report.bytes as f64);
    }

    /// Count one approximate-path answer served from pyramid `level`
    /// (`level = 0` means the budget missed every level and the query
    /// fell through to the exact path).
    pub(crate) fn note_approx_query(&self, level: usize) {
        approx_query_counter(level).inc();
    }

    /// The cube's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Queue events for ingestion. Never blocks on the cube; returns the
    /// number of events accepted after dropping non-finite coordinates.
    ///
    /// # Errors
    /// Fails once shutdown has begun.
    pub fn enqueue(&self, mut events: Vec<Point>) -> Result<usize, ShutdownError> {
        events.retain(Point::is_finite);
        let n = events.len();
        if n == 0 {
            return Ok(0);
        }
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(ShutdownError);
        };
        // Count before sending so `is_drained` can never report quiescence
        // while this batch is still in flight.
        self.metrics.received.add_release(n as u64);
        if tx.send(events).is_err() {
            self.metrics.received.sub_release(n as u64);
            return Err(ShutdownError);
        }
        Ok(n)
    }

    /// The most recently published snapshot — one `Arc` clone, never a
    /// lock on the writer's cube. Hold it as long as you like; it stays
    /// internally consistent while ingest proceeds.
    pub fn snapshot(&self) -> Arc<CubeSnapshot<f64>> {
        Arc::clone(&self.state.snapshot.read())
    }

    /// Run `f` against the current published snapshot.
    pub fn read<R>(&self, f: impl FnOnce(&CubeSnapshot<f64>) -> R) -> R {
        f(&self.snapshot())
    }

    /// The in-window events, oldest first. Takes the writer's cube lock
    /// briefly (snapshots carry the grid, not the point store), so this
    /// is a monitoring/debug read, not a serving-path one.
    pub fn live_points(&self) -> Vec<Point> {
        self.state.cube.lock().points().copied().collect()
    }

    /// The published cube generation (see
    /// [`ShardedWindowStkde::generation`]).
    pub fn generation(&self) -> u64 {
        self.snapshot().generation()
    }

    /// The live temporal-slab shard count.
    pub fn shard_count(&self) -> usize {
        self.snapshot().shards().len()
    }

    /// Repartition the cube into `shards` slabs (clamped to the grid's T
    /// extent), rebuild, and publish. Readers holding old snapshots are
    /// untouched; new reads see the new layout atomically. Returns the
    /// actual shard count.
    pub fn reshard(&self, shards: usize) -> usize {
        let mut cube = self.state.cube.lock();
        let actual = cube.reshard(shards);
        self.metrics.generation.set(cube.generation() as f64);
        self.metrics.cube_bytes.set(cube.heap_bytes() as f64);
        self.metrics.shard_count.set(actual as f64);
        for (i, s) in cube.shard_batch_stats().iter().enumerate() {
            let m = shard_metrics(i);
            m.epoch.set(s.epoch as f64);
            m.layers.set((s.t1 - s.t0) as f64);
        }
        self.metrics.rebuilds.inc();
        self.state.publish_and_swap(&mut cube);
        actual
    }

    /// Bounds-checked voxel density read, plus the generation it was
    /// read at.
    pub fn density(&self, x: usize, y: usize, t: usize) -> (Option<f64>, u64) {
        let snap = self.snapshot();
        (snap.density_checked(x, y, t), snap.generation())
    }

    /// Normalized aggregate over a voxel box (see
    /// [`CubeSnapshot::density_range`]).
    pub fn region(&self, r: VoxelRange) -> GridStats {
        self.snapshot().density_range(r)
    }

    /// Serve `key` from the LRU if the epoch vector of the shards under
    /// global time layers `[t0, t1)` (plus the live count) still
    /// matches, else compute against the current snapshot and memoize.
    /// The cache holds the *encoded* response body, so a hit is one
    /// `Arc` clone — no Json tree clone and no re-serialization — and a
    /// write that only touched foreign slabs (without changing the live
    /// count) does not invalidate the entry.
    pub fn cached_read(
        &self,
        key: &str,
        t0: usize,
        t1: usize,
        compute: impl FnOnce(&CubeSnapshot<f64>) -> Json,
    ) -> Arc<[u8]> {
        let snap = self.snapshot();
        let full_key = (key.to_string(), snap.cache_epoch_key(t0, t1));
        if let Some(hit) = self.cache.lock().get(&full_key) {
            self.metrics.cache_hits.inc();
            return hit;
        }
        self.metrics.cache_misses.inc();
        let encoded: Arc<[u8]> = compute(&snap).encode().into_bytes().into();
        let mut cache = self.cache.lock();
        cache.insert(full_key, Arc::clone(&encoded));
        self.metrics.cache_entries.set(cache.len() as f64);
        encoded
    }

    /// Push point-in-time values (queue depth, uptime, cache size) into
    /// their gauges. Called on every `/stats` and `/metrics` render so
    /// scrapes see current values, not writer-thread leftovers.
    pub fn refresh_gauges(&self) {
        let m = &self.metrics;
        let received = m.received.get_acquire();
        let settled = m.settled_acquire();
        m.queue_depth.set(received.saturating_sub(settled) as f64);
        m.uptime.set(self.started.elapsed().as_secs_f64());
        m.cache_entries.set(self.cache.lock().len() as f64);
    }

    /// Service counters as a JSON object (the `/stats` payload).
    ///
    /// Every count is read from the same `stkde-obs` registry cells that
    /// `/metrics` renders, so the two endpoints cannot drift.
    pub fn stats_json(&self) -> Json {
        self.refresh_gauges();
        let snap = self.snapshot();
        let dims = self.domain.dims();
        let m = &self.metrics;
        Json::obj([
            ("events_received", Json::from(m.received.get())),
            ("events_applied", Json::from(m.applied.get())),
            ("events_stale", Json::from(m.stale.get())),
            ("events_aged_in_batch", Json::from(m.aged_in_batch.get())),
            ("events_evicted", Json::from(m.evicted.get())),
            ("ingest_batches", Json::from(m.batches.get())),
            ("ingest_queue_depth", Json::from(m.queue_depth.get())),
            (
                "last_batch_coalesce_ratio",
                Json::from(m.last_coalesce_ratio.get()),
            ),
            ("live_events", Json::from(snap.len())),
            ("generation", Json::from(snap.generation())),
            ("rebuilds", Json::from(snap.rebuilds())),
            ("shards", Json::from(snap.shards().len())),
            ("window", Json::from(self.window)),
            (
                "dims",
                Json::obj([
                    ("gx", Json::from(dims.gx)),
                    ("gy", Json::from(dims.gy)),
                    ("gt", Json::from(dims.gt)),
                ]),
            ),
            ("kernel", Json::from(self.kernel_name)),
            ("kernel_error_bound", Json::from(self.kernel_error)),
            ("pyramid_bytes", Json::from(snap.pyramid_bytes())),
            ("cache_entries", Json::from(self.cache.lock().len())),
            ("cache_hits", Json::from(m.cache_hits.get())),
            ("cache_misses", Json::from(m.cache_misses.get())),
            (
                "uptime_seconds",
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
        ])
    }

    /// `true` once every queued event has been applied (or dropped as
    /// stale). Lets callers await ingest quiescence without sleeping on a
    /// magic number.
    pub fn is_drained(&self) -> bool {
        let m = &self.metrics;
        m.settled_acquire() == m.received.get_acquire()
    }

    /// Block (politely) until ingest is quiescent. Intended for tests,
    /// examples, and probes that want read-your-writes; a serving client
    /// would instead poll `/stats` until `events_applied` catches up.
    pub fn wait_drained(&self) {
        while !self.is_drained() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Ask the hosting process to stop (`POST /shutdown` sets this; the
    /// daemon's main loop polls it).
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// `true` once [`request_shutdown`](Self::request_shutdown) ran.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting events, let the writer drain
    /// everything already queued, and join it. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender ends the writer's `recv` loop *after* the
        // queued batches: `mpsc` delivers everything sent before the
        // disconnect.
        drop(self.tx.lock().take());
        if let Some(writer) = self.writer.lock().take() {
            let _ = writer.join();
        }
    }
}

impl Drop for DensityService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Error returned by [`DensityService::enqueue`] after shutdown began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownError;

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service is shutting down")
    }
}

impl std::error::Error for ShutdownError {}

fn writer_loop(rx: &Receiver<Vec<Point>>, state: &CubeState, m: ServerMetrics, batch_cap: usize) {
    while let Ok(first) = rx.recv() {
        let _span = stkde_obs::span("ingest_batch");
        let mut batch = first;
        let mut sends = 1u64;
        // Coalesce: drain whatever else is already queued, up to the cap,
        // so the write lock is taken once per burst instead of per event.
        while batch.len() < batch_cap {
            match rx.try_recv() {
                Ok(mut more) => {
                    sends += 1;
                    batch.append(&mut more);
                }
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        batch.sort_by(|a, b| a.t.total_cmp(&b.t));

        let apply_start = Instant::now();
        let mut cube = state.cube.lock();
        // Events behind the window head would trip the time-ordering
        // contract; a serving system drops them as stale instead.
        let stale = match cube.newest_time() {
            Some(newest) => batch.partition_point(|p| p.t < newest),
            None => 0,
        };
        let rebuilds_before = cube.rebuilds();
        let result = cube.push_batch(&batch[stale..]);
        let rebuilds_after = cube.rebuilds();
        m.generation.set(cube.generation() as f64);
        m.live_events.set(cube.len() as f64);
        m.cube_bytes.set(cube.heap_bytes() as f64);
        let shard_stats = cube.shard_batch_stats();
        // Publish before releasing the cube lock, so readers can only
        // ever see snapshots in generation order.
        state.publish_and_swap(&mut cube);
        drop(cube);

        for (i, s) in shard_stats.iter().enumerate() {
            let sm = shard_metrics(i);
            sm.ingest_events.add(s.ops);
            sm.epoch.set(s.epoch as f64);
            sm.layers.set((s.t1 - s.t0) as f64);
        }
        m.apply_seconds.observe(apply_start.elapsed().as_secs_f64());
        m.batch_size.observe(batch.len() as f64);
        m.last_coalesce_ratio.set(batch.len() as f64 / sends as f64);
        m.batches.inc();
        m.coalesced_sends.add(sends);
        m.rebuilds.add((rebuilds_after - rebuilds_before) as u64);
        m.stale.add_release(stale as u64);
        m.evicted.add(result.evicted as u64);
        m.aged_in_batch.add_release(result.skipped as u64);
        m.applied.add_release(result.inserted as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::GridDims;

    fn config() -> ServiceConfig {
        let mut cfg = ServiceConfig::new(
            Domain::from_dims(GridDims::new(16, 16, 12)),
            Bandwidth::new(3.0, 2.0),
            6.0,
        );
        // Pin the shard count: these tests must not change shape under
        // the CI `STKDE_SHARDS` matrix.
        cfg.shards = 3;
        cfg
    }

    fn drain(svc: &DensityService) {
        for _ in 0..2000 {
            if svc.is_drained() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("ingest did not drain");
    }

    // NOTE: the obs registry is process-global, so counter values in
    // these tests are cumulative across services in the same test
    // binary. Tests assert on per-service quantities (drain, deltas,
    // stats keys whose gauges are service-scoped), never on absolute
    // global counter values.

    #[test]
    fn enqueue_applies_and_generation_advances() {
        let svc = DensityService::start(config());
        let g0 = svc.generation();
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        assert!(svc.generation() > g0);
        let (d, _) = svc.density(8, 8, 2);
        assert!(d.unwrap() > 0.0);
        assert_eq!(svc.density(99, 0, 0).0, None);
    }

    #[test]
    fn non_finite_and_stale_events_are_dropped_not_fatal() {
        let _serial = crate::test_support::serial();
        let svc = DensityService::start(config());
        let before = svc.stats_json();
        let stale0 = before.get("events_stale").unwrap().as_u64().unwrap();
        let applied0 = before.get("events_applied").unwrap().as_u64().unwrap();
        let accepted = svc
            .enqueue(vec![
                Point::new(f64::NAN, 1.0, 1.0),
                Point::new(4.0, 4.0, 5.0),
            ])
            .unwrap();
        assert_eq!(accepted, 1);
        drain(&svc);
        // Arrives behind the window head: dropped as stale, service lives on.
        svc.enqueue(vec![Point::new(4.0, 4.0, 1.0)]).unwrap();
        drain(&svc);
        let stats = svc.stats_json();
        assert_eq!(
            stats.get("events_stale").unwrap().as_u64(),
            Some(stale0 + 1)
        );
        assert_eq!(
            stats.get("events_applied").unwrap().as_u64(),
            Some(applied0 + 1)
        );
        assert_eq!(stats.get("live_events").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn cached_read_hits_within_epochs_and_misses_across() {
        let svc = DensityService::start(config());
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        let gt = svc.domain().dims().gt;
        let computed = std::cell::Cell::new(0);
        let read = || {
            svc.cached_read("k", 0, gt, |snap| {
                computed.set(computed.get() + 1);
                Json::from(snap.generation())
            })
        };
        let a = read();
        let b = read();
        assert_eq!(a, b);
        assert_eq!(computed.get(), 1, "second read must be a cache hit");
        svc.enqueue(vec![Point::new(8.0, 8.0, 3.0)]).unwrap();
        drain(&svc);
        let c = read();
        assert_ne!(a, c, "write must invalidate via the epoch key");
        assert_eq!(computed.get(), 2);
    }

    #[test]
    fn snapshot_isolates_readers_from_later_writes() {
        let svc = DensityService::start(config());
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        let old = svc.snapshot();
        let g = old.generation();
        let d = old.density_checked(8, 8, 2);
        svc.enqueue(vec![Point::new(8.0, 8.0, 3.5)]).unwrap();
        drain(&svc);
        // The held snapshot is frozen; the service has moved on.
        assert_eq!(old.generation(), g);
        assert_eq!(old.density_checked(8, 8, 2), d);
        assert!(svc.generation() > g);
        assert_ne!(svc.snapshot().density_checked(8, 8, 2), d);
    }

    #[test]
    fn reshard_keeps_serving_identical_values() {
        let svc = DensityService::start(config());
        svc.enqueue(vec![
            Point::new(8.0, 8.0, 2.0),
            Point::new(4.0, 12.0, 7.0),
            Point::new(10.0, 3.0, 11.0),
        ])
        .unwrap();
        drain(&svc);
        let before = svc.snapshot().assemble();
        assert_eq!(svc.reshard(6), 6);
        assert_eq!(svc.shard_count(), 6);
        let after = svc.snapshot().assemble();
        // A reshard is a rebuild: same values to within float drift (and
        // exactly equal here, since nothing was evicted yet).
        assert_eq!(before, after);
        // Serving continues across the new layout.
        svc.enqueue(vec![Point::new(8.0, 8.0, 11.5)]).unwrap();
        drain(&svc);
        assert!(svc.snapshot().density_checked(8, 8, 11).unwrap() > 0.0);
    }

    #[test]
    fn shutdown_drains_queued_events_then_rejects() {
        let _serial = crate::test_support::serial();
        let svc = DensityService::start(config());
        let batches0 = {
            let stats = svc.stats_json();
            stats.get("ingest_batches").unwrap().as_u64().unwrap()
        };
        for k in 0..50 {
            svc.enqueue(vec![Point::new(8.0, 8.0, 0.1 * k as f64)])
                .unwrap();
        }
        svc.shutdown();
        assert!(
            svc.is_drained(),
            "queued events must be applied before join"
        );
        assert_eq!(
            svc.enqueue(vec![Point::new(1.0, 1.0, 9.0)]),
            Err(ShutdownError)
        );
        let stats = svc.stats_json();
        // Coalescing: 50 sends must need far fewer lock acquisitions.
        let batches = stats.get("ingest_batches").unwrap().as_u64().unwrap();
        assert!(batches - batches0 <= 50);
        // The drained queue reports zero depth, and the writer recorded a
        // coalesce ratio for its final batch.
        assert_eq!(stats.get("ingest_queue_depth").unwrap().as_f64(), Some(0.0));
        assert!(
            stats
                .get("last_batch_coalesce_ratio")
                .unwrap()
                .as_f64()
                .unwrap()
                >= 1.0
        );
    }
}
