//! The density service: a [`SlidingWindowStkde`] shared between one
//! writer and many readers.
//!
//! The ingest-then-query split mirrors the serving architecture of
//! temporal KDE systems: estimation cost is paid once per event on a
//! dedicated writer thread, then amortized across arbitrarily many
//! queries. Concretely:
//!
//! - **Writers** call [`DensityService::enqueue`], which only pushes onto
//!   an unbounded channel — ingestion never blocks on the cube lock.
//! - **The writer thread** drains the channel, sorts the drained batch by
//!   time, drops events that arrive behind the window head (stale), and
//!   applies the rest with [`SlidingWindowStkde::push_batch`] under a
//!   *single* write-lock acquisition — N cylinders per lock, not one.
//! - **Readers** take the read lock concurrently; region and slice
//!   results are memoized in an LRU keyed on `(query, generation)`, so a
//!   cache entry can never outlive the cube state it was computed from.
//!
//! Every counter lives in the `stkde-obs` global registry (see
//! [`crate::metrics`]), so `/stats` and `/metrics` read the same cells.
//! Ordering discipline: the quiescence check pairs the Release
//! increments of `received` / settling counters with Acquire loads
//! ([`Counter::add_release`](stkde_obs::Counter::add_release) /
//! [`Counter::get_acquire`](stkde_obs::Counter::get_acquire));
//! everything else is Relaxed — monotone statistics where readers
//! tolerate lag and no other memory depends on their order.

use crate::cache::LruCache;
use crate::json::Json;
use crate::metrics::ServerMetrics;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use stkde_core::SlidingWindowStkde;
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, GridStats, VoxelRange};

/// Configuration of a [`DensityService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The discretized space-time domain of the cube.
    pub domain: Domain,
    /// Kernel bandwidths (world units).
    pub bandwidth: Bandwidth,
    /// Sliding-window length (time units).
    pub window: f64,
    /// Drift-correcting rebuild cadence in insert/evict pairs
    /// (`None` = never; the serving cube is `f64`, where drift is ULPs).
    pub auto_rebuild_every: Option<usize>,
    /// LRU capacity for region/slice responses (`0` disables caching).
    pub cache_capacity: usize,
    /// Largest coalesced batch the writer applies per lock acquisition.
    pub ingest_batch_cap: usize,
}

impl ServiceConfig {
    /// A config with serving defaults: cache 64 entries, coalesce up to
    /// 1024 events per write-lock acquisition, no auto-rebuild.
    pub fn new(domain: Domain, bandwidth: Bandwidth, window: f64) -> Self {
        Self {
            domain,
            bandwidth,
            window,
            auto_rebuild_every: None,
            cache_capacity: 64,
            ingest_batch_cap: 1024,
        }
    }
}

/// The long-running density service. Cheap to share: wrap in an [`Arc`]
/// (as [`DensityService::start`] does) and clone handles freely.
#[derive(Debug)]
pub struct DensityService {
    cube: Arc<RwLock<SlidingWindowStkde<f64>>>,
    tx: Mutex<Option<Sender<Vec<Point>>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    cache: Mutex<LruCache<(String, u64), Arc<str>>>,
    metrics: ServerMetrics,
    shutdown_requested: AtomicBool,
    domain: Domain,
    window: f64,
    started: Instant,
}

impl DensityService {
    /// Build the cube, spawn the writer thread, and return the service.
    pub fn start(config: ServiceConfig) -> Arc<Self> {
        let mut cube =
            SlidingWindowStkde::<f64>::new(config.domain, config.bandwidth, config.window);
        if let Some(n) = config.auto_rebuild_every {
            cube = cube.auto_rebuild_every(n);
        }
        let metrics = ServerMetrics::new();
        metrics
            .cube_bytes
            .set(cube.cube().grid().heap_bytes() as f64);
        let cube = Arc::new(RwLock::new(cube));
        let (tx, rx) = mpsc::channel::<Vec<Point>>();

        let writer = {
            let cube = Arc::clone(&cube);
            let batch_cap = config.ingest_batch_cap.max(1);
            std::thread::Builder::new()
                .name("stkde-ingest".into())
                .spawn(move || writer_loop(&rx, &cube, metrics, batch_cap))
                .expect("spawn ingest writer")
        };

        Arc::new(Self {
            cube,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            metrics,
            shutdown_requested: AtomicBool::new(false),
            domain: config.domain,
            window: config.window,
            started: Instant::now(),
        })
    }

    /// The cube's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Queue events for ingestion. Never blocks on the cube; returns the
    /// number of events accepted after dropping non-finite coordinates.
    ///
    /// # Errors
    /// Fails once shutdown has begun.
    pub fn enqueue(&self, mut events: Vec<Point>) -> Result<usize, ShutdownError> {
        events.retain(Point::is_finite);
        let n = events.len();
        if n == 0 {
            return Ok(0);
        }
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(ShutdownError);
        };
        // Count before sending so `is_drained` can never report quiescence
        // while this batch is still in flight.
        self.metrics.received.add_release(n as u64);
        if tx.send(events).is_err() {
            self.metrics.received.sub_release(n as u64);
            return Err(ShutdownError);
        }
        Ok(n)
    }

    /// Run `f` against the live cube under the read lock.
    pub fn read<R>(&self, f: impl FnOnce(&SlidingWindowStkde<f64>) -> R) -> R {
        f(&self.cube.read())
    }

    /// The cube's current generation (see
    /// [`stkde_core::IncrementalStkde::generation`]).
    pub fn generation(&self) -> u64 {
        self.cube.read().generation()
    }

    /// Bounds-checked voxel density read, plus the generation it was
    /// read at.
    pub fn density(&self, x: usize, y: usize, t: usize) -> (Option<f64>, u64) {
        let cube = self.cube.read();
        (cube.cube().density_checked(x, y, t), cube.generation())
    }

    /// Normalized aggregate over a voxel box (see
    /// [`stkde_core::IncrementalStkde::density_range`]).
    pub fn region(&self, r: VoxelRange) -> GridStats {
        self.cube.read().cube().density_range(r)
    }

    /// Serve `key` from the LRU if the cube generation still matches,
    /// else compute it under the read lock and memoize. The cache holds
    /// the *encoded* response body, so a hit is one `Arc` clone — no Json
    /// tree clone and no re-serialization per request.
    pub fn cached_read(
        &self,
        key: &str,
        compute: impl FnOnce(&SlidingWindowStkde<f64>) -> Json,
    ) -> Arc<str> {
        let cube = self.cube.read();
        let full_key = (key.to_string(), cube.generation());
        if let Some(hit) = self.cache.lock().get(&full_key) {
            self.metrics.cache_hits.inc();
            return hit;
        }
        self.metrics.cache_misses.inc();
        let encoded: Arc<str> = compute(&cube).encode().into();
        drop(cube);
        let mut cache = self.cache.lock();
        cache.insert(full_key, Arc::clone(&encoded));
        self.metrics.cache_entries.set(cache.len() as f64);
        encoded
    }

    /// Push point-in-time values (queue depth, uptime, cache size) into
    /// their gauges. Called on every `/stats` and `/metrics` render so
    /// scrapes see current values, not writer-thread leftovers.
    pub fn refresh_gauges(&self) {
        let m = &self.metrics;
        let received = m.received.get_acquire();
        let settled = m.settled_acquire();
        m.queue_depth.set(received.saturating_sub(settled) as f64);
        m.uptime.set(self.started.elapsed().as_secs_f64());
        m.cache_entries.set(self.cache.lock().len() as f64);
    }

    /// Service counters as a JSON object (the `/stats` payload).
    ///
    /// Every count is read from the same `stkde-obs` registry cells that
    /// `/metrics` renders, so the two endpoints cannot drift.
    pub fn stats_json(&self) -> Json {
        self.refresh_gauges();
        let (live, generation, rebuilds) = {
            let cube = self.cube.read();
            (cube.len(), cube.generation(), cube.rebuilds())
        };
        let dims = self.domain.dims();
        let m = &self.metrics;
        Json::obj([
            ("events_received", Json::from(m.received.get())),
            ("events_applied", Json::from(m.applied.get())),
            ("events_stale", Json::from(m.stale.get())),
            ("events_aged_in_batch", Json::from(m.aged_in_batch.get())),
            ("events_evicted", Json::from(m.evicted.get())),
            ("ingest_batches", Json::from(m.batches.get())),
            ("ingest_queue_depth", Json::from(m.queue_depth.get())),
            (
                "last_batch_coalesce_ratio",
                Json::from(m.last_coalesce_ratio.get()),
            ),
            ("live_events", Json::from(live)),
            ("generation", Json::from(generation)),
            ("rebuilds", Json::from(rebuilds)),
            ("window", Json::from(self.window)),
            (
                "dims",
                Json::obj([
                    ("gx", Json::from(dims.gx)),
                    ("gy", Json::from(dims.gy)),
                    ("gt", Json::from(dims.gt)),
                ]),
            ),
            ("cache_entries", Json::from(self.cache.lock().len())),
            ("cache_hits", Json::from(m.cache_hits.get())),
            ("cache_misses", Json::from(m.cache_misses.get())),
            (
                "uptime_seconds",
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
        ])
    }

    /// `true` once every queued event has been applied (or dropped as
    /// stale). Lets callers await ingest quiescence without sleeping on a
    /// magic number.
    pub fn is_drained(&self) -> bool {
        let m = &self.metrics;
        m.settled_acquire() == m.received.get_acquire()
    }

    /// Block (politely) until ingest is quiescent. Intended for tests,
    /// examples, and probes that want read-your-writes; a serving client
    /// would instead poll `/stats` until `events_applied` catches up.
    pub fn wait_drained(&self) {
        while !self.is_drained() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Ask the hosting process to stop (`POST /shutdown` sets this; the
    /// daemon's main loop polls it).
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// `true` once [`request_shutdown`](Self::request_shutdown) ran.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting events, let the writer drain
    /// everything already queued, and join it. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender ends the writer's `recv` loop *after* the
        // queued batches: `mpsc` delivers everything sent before the
        // disconnect.
        drop(self.tx.lock().take());
        if let Some(writer) = self.writer.lock().take() {
            let _ = writer.join();
        }
    }
}

impl Drop for DensityService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Error returned by [`DensityService::enqueue`] after shutdown began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownError;

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service is shutting down")
    }
}

impl std::error::Error for ShutdownError {}

fn writer_loop(
    rx: &Receiver<Vec<Point>>,
    cube: &RwLock<SlidingWindowStkde<f64>>,
    m: ServerMetrics,
    batch_cap: usize,
) {
    while let Ok(first) = rx.recv() {
        let _span = stkde_obs::span("ingest_batch");
        let mut batch = first;
        let mut sends = 1u64;
        // Coalesce: drain whatever else is already queued, up to the cap,
        // so the write lock is taken once per burst instead of per event.
        while batch.len() < batch_cap {
            match rx.try_recv() {
                Ok(mut more) => {
                    sends += 1;
                    batch.append(&mut more);
                }
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        batch.sort_by(|a, b| a.t.total_cmp(&b.t));

        let apply_start = Instant::now();
        let mut cube = cube.write();
        // Events behind the window head would trip the time-ordering
        // contract; a serving system drops them as stale instead.
        let stale = match cube.newest_time() {
            Some(newest) => batch.partition_point(|p| p.t < newest),
            None => 0,
        };
        let rebuilds_before = cube.rebuilds();
        let result = cube.push_batch(&batch[stale..]);
        let rebuilds_after = cube.rebuilds();
        m.generation.set(cube.generation() as f64);
        m.live_events.set(cube.len() as f64);
        m.cube_bytes.set(cube.cube().grid().heap_bytes() as f64);
        drop(cube);

        m.apply_seconds.observe(apply_start.elapsed().as_secs_f64());
        m.batch_size.observe(batch.len() as f64);
        m.last_coalesce_ratio.set(batch.len() as f64 / sends as f64);
        m.batches.inc();
        m.coalesced_sends.add(sends);
        m.rebuilds.add((rebuilds_after - rebuilds_before) as u64);
        m.stale.add_release(stale as u64);
        m.evicted.add(result.evicted as u64);
        m.aged_in_batch.add_release(result.skipped as u64);
        m.applied.add_release(result.inserted as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::GridDims;

    fn config() -> ServiceConfig {
        ServiceConfig::new(
            Domain::from_dims(GridDims::new(16, 16, 12)),
            Bandwidth::new(3.0, 2.0),
            6.0,
        )
    }

    fn drain(svc: &DensityService) {
        for _ in 0..2000 {
            if svc.is_drained() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("ingest did not drain");
    }

    // NOTE: the obs registry is process-global, so counter values in
    // these tests are cumulative across services in the same test
    // binary. Tests assert on per-service quantities (drain, deltas,
    // stats keys whose gauges are service-scoped), never on absolute
    // global counter values.

    #[test]
    fn enqueue_applies_and_generation_advances() {
        let svc = DensityService::start(config());
        let g0 = svc.generation();
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        assert!(svc.generation() > g0);
        let (d, _) = svc.density(8, 8, 2);
        assert!(d.unwrap() > 0.0);
        assert_eq!(svc.density(99, 0, 0).0, None);
    }

    #[test]
    fn non_finite_and_stale_events_are_dropped_not_fatal() {
        let _serial = crate::test_support::serial();
        let svc = DensityService::start(config());
        let before = svc.stats_json();
        let stale0 = before.get("events_stale").unwrap().as_u64().unwrap();
        let applied0 = before.get("events_applied").unwrap().as_u64().unwrap();
        let accepted = svc
            .enqueue(vec![
                Point::new(f64::NAN, 1.0, 1.0),
                Point::new(4.0, 4.0, 5.0),
            ])
            .unwrap();
        assert_eq!(accepted, 1);
        drain(&svc);
        // Arrives behind the window head: dropped as stale, service lives on.
        svc.enqueue(vec![Point::new(4.0, 4.0, 1.0)]).unwrap();
        drain(&svc);
        let stats = svc.stats_json();
        assert_eq!(
            stats.get("events_stale").unwrap().as_u64(),
            Some(stale0 + 1)
        );
        assert_eq!(
            stats.get("events_applied").unwrap().as_u64(),
            Some(applied0 + 1)
        );
        assert_eq!(stats.get("live_events").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn cached_read_hits_within_generation_and_misses_across() {
        let svc = DensityService::start(config());
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        let computed = std::cell::Cell::new(0);
        let read = || {
            svc.cached_read("k", |cube| {
                computed.set(computed.get() + 1);
                Json::from(cube.generation())
            })
        };
        let a = read();
        let b = read();
        assert_eq!(a, b);
        assert_eq!(computed.get(), 1, "second read must be a cache hit");
        svc.enqueue(vec![Point::new(8.0, 8.0, 3.0)]).unwrap();
        drain(&svc);
        let c = read();
        assert_ne!(a, c, "write must invalidate via the generation key");
        assert_eq!(computed.get(), 2);
    }

    #[test]
    fn shutdown_drains_queued_events_then_rejects() {
        let _serial = crate::test_support::serial();
        let svc = DensityService::start(config());
        let batches0 = {
            let stats = svc.stats_json();
            stats.get("ingest_batches").unwrap().as_u64().unwrap()
        };
        for k in 0..50 {
            svc.enqueue(vec![Point::new(8.0, 8.0, 0.1 * k as f64)])
                .unwrap();
        }
        svc.shutdown();
        assert!(
            svc.is_drained(),
            "queued events must be applied before join"
        );
        assert_eq!(
            svc.enqueue(vec![Point::new(1.0, 1.0, 9.0)]),
            Err(ShutdownError)
        );
        let stats = svc.stats_json();
        // Coalescing: 50 sends must need far fewer lock acquisitions.
        let batches = stats.get("ingest_batches").unwrap().as_u64().unwrap();
        assert!(batches - batches0 <= 50);
        // The drained queue reports zero depth, and the writer recorded a
        // coalesce ratio for its final batch.
        assert_eq!(stats.get("ingest_queue_depth").unwrap().as_f64(), Some(0.0));
        assert!(
            stats
                .get("last_batch_coalesce_ratio")
                .unwrap()
                .as_f64()
                .unwrap()
                >= 1.0
        );
    }
}
