//! The density service: a [`SlidingWindowStkde`] shared between one
//! writer and many readers.
//!
//! The ingest-then-query split mirrors the serving architecture of
//! temporal KDE systems: estimation cost is paid once per event on a
//! dedicated writer thread, then amortized across arbitrarily many
//! queries. Concretely:
//!
//! - **Writers** call [`DensityService::enqueue`], which only pushes onto
//!   an unbounded channel — ingestion never blocks on the cube lock.
//! - **The writer thread** drains the channel, sorts the drained batch by
//!   time, drops events that arrive behind the window head (stale), and
//!   applies the rest with [`SlidingWindowStkde::push_batch`] under a
//!   *single* write-lock acquisition — N cylinders per lock, not one.
//! - **Readers** take the read lock concurrently; region and slice
//!   results are memoized in an LRU keyed on `(query, generation)`, so a
//!   cache entry can never outlive the cube state it was computed from.

use crate::cache::LruCache;
use crate::json::Json;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use stkde_core::SlidingWindowStkde;
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, GridStats, VoxelRange};

/// Configuration of a [`DensityService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The discretized space-time domain of the cube.
    pub domain: Domain,
    /// Kernel bandwidths (world units).
    pub bandwidth: Bandwidth,
    /// Sliding-window length (time units).
    pub window: f64,
    /// Drift-correcting rebuild cadence in insert/evict pairs
    /// (`None` = never; the serving cube is `f64`, where drift is ULPs).
    pub auto_rebuild_every: Option<usize>,
    /// LRU capacity for region/slice responses (`0` disables caching).
    pub cache_capacity: usize,
    /// Largest coalesced batch the writer applies per lock acquisition.
    pub ingest_batch_cap: usize,
}

impl ServiceConfig {
    /// A config with serving defaults: cache 64 entries, coalesce up to
    /// 1024 events per write-lock acquisition, no auto-rebuild.
    pub fn new(domain: Domain, bandwidth: Bandwidth, window: f64) -> Self {
        Self {
            domain,
            bandwidth,
            window,
            auto_rebuild_every: None,
            cache_capacity: 64,
            ingest_batch_cap: 1024,
        }
    }
}

/// Ingest/serve counters, shared with the writer thread.
///
/// Ordering discipline: counters that participate in the [`settled`]
/// quiescence check (`received`, and the settling side of `applied`/
/// `aged_in_batch`) use Release increments paired with Acquire loads;
/// everything else is Relaxed — monotone statistics where readers
/// tolerate lag and no other memory depends on their order.
#[derive(Debug, Default)]
struct Counters {
    /// Events accepted by `enqueue` (finite coordinates).
    received: AtomicU64,
    /// Events rasterized into the cube.
    applied: AtomicU64,
    /// Events dropped because they arrived behind the window head.
    stale: AtomicU64,
    /// Events that aged out within their own batch (never rasterized).
    aged_in_batch: AtomicU64,
    /// Stored events evicted by window advance.
    evicted: AtomicU64,
    /// Write-lock acquisitions (coalesced batches applied).
    batches: AtomicU64,
}

/// The long-running density service. Cheap to share: wrap in an [`Arc`]
/// (as [`DensityService::start`] does) and clone handles freely.
#[derive(Debug)]
pub struct DensityService {
    cube: Arc<RwLock<SlidingWindowStkde<f64>>>,
    tx: Mutex<Option<Sender<Vec<Point>>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    cache: Mutex<LruCache<(String, u64), Arc<str>>>,
    counters: Arc<Counters>,
    shutdown_requested: AtomicBool,
    domain: Domain,
    window: f64,
    started: Instant,
}

impl DensityService {
    /// Build the cube, spawn the writer thread, and return the service.
    pub fn start(config: ServiceConfig) -> Arc<Self> {
        let mut cube =
            SlidingWindowStkde::<f64>::new(config.domain, config.bandwidth, config.window);
        if let Some(n) = config.auto_rebuild_every {
            cube = cube.auto_rebuild_every(n);
        }
        let cube = Arc::new(RwLock::new(cube));
        let counters = Arc::new(Counters::default());
        let (tx, rx) = mpsc::channel::<Vec<Point>>();

        let writer = {
            let cube = Arc::clone(&cube);
            let counters = Arc::clone(&counters);
            let batch_cap = config.ingest_batch_cap.max(1);
            std::thread::Builder::new()
                .name("stkde-ingest".into())
                .spawn(move || writer_loop(&rx, &cube, &counters, batch_cap))
                .expect("spawn ingest writer")
        };

        Arc::new(Self {
            cube,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            counters,
            shutdown_requested: AtomicBool::new(false),
            domain: config.domain,
            window: config.window,
            started: Instant::now(),
        })
    }

    /// The cube's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Queue events for ingestion. Never blocks on the cube; returns the
    /// number of events accepted after dropping non-finite coordinates.
    ///
    /// # Errors
    /// Fails once shutdown has begun.
    pub fn enqueue(&self, mut events: Vec<Point>) -> Result<usize, ShutdownError> {
        events.retain(Point::is_finite);
        let n = events.len();
        if n == 0 {
            return Ok(0);
        }
        let tx = self.tx.lock();
        let Some(tx) = tx.as_ref() else {
            return Err(ShutdownError);
        };
        // Count before sending so `is_drained` can never report quiescence
        // while this batch is still in flight.
        self.counters
            .received
            .fetch_add(n as u64, Ordering::Release);
        if tx.send(events).is_err() {
            self.counters
                .received
                .fetch_sub(n as u64, Ordering::Release);
            return Err(ShutdownError);
        }
        Ok(n)
    }

    /// Run `f` against the live cube under the read lock.
    pub fn read<R>(&self, f: impl FnOnce(&SlidingWindowStkde<f64>) -> R) -> R {
        f(&self.cube.read())
    }

    /// The cube's current generation (see
    /// [`stkde_core::IncrementalStkde::generation`]).
    pub fn generation(&self) -> u64 {
        self.cube.read().generation()
    }

    /// Bounds-checked voxel density read, plus the generation it was
    /// read at.
    pub fn density(&self, x: usize, y: usize, t: usize) -> (Option<f64>, u64) {
        let cube = self.cube.read();
        (cube.cube().density_checked(x, y, t), cube.generation())
    }

    /// Normalized aggregate over a voxel box (see
    /// [`stkde_core::IncrementalStkde::density_range`]).
    pub fn region(&self, r: VoxelRange) -> GridStats {
        self.cube.read().cube().density_range(r)
    }

    /// Serve `key` from the LRU if the cube generation still matches,
    /// else compute it under the read lock and memoize. The cache holds
    /// the *encoded* response body, so a hit is one `Arc` clone — no Json
    /// tree clone and no re-serialization per request.
    pub fn cached_read(
        &self,
        key: &str,
        compute: impl FnOnce(&SlidingWindowStkde<f64>) -> Json,
    ) -> Arc<str> {
        let cube = self.cube.read();
        let full_key = (key.to_string(), cube.generation());
        if let Some(hit) = self.cache.lock().get(&full_key) {
            return hit;
        }
        let encoded: Arc<str> = compute(&cube).encode().into();
        drop(cube);
        self.cache.lock().insert(full_key, Arc::clone(&encoded));
        encoded
    }

    /// Service counters as a JSON object (the `/stats` payload).
    pub fn stats_json(&self) -> Json {
        let (live, generation, rebuilds) = {
            let cube = self.cube.read();
            (cube.len(), cube.generation(), cube.rebuilds())
        };
        let cache = self.cache.lock();
        let dims = self.domain.dims();
        let c = &self.counters;
        Json::obj([
            (
                "events_received",
                Json::from(c.received.load(Ordering::Relaxed)),
            ),
            (
                "events_applied",
                Json::from(c.applied.load(Ordering::Relaxed)),
            ),
            ("events_stale", Json::from(c.stale.load(Ordering::Relaxed))),
            (
                "events_aged_in_batch",
                Json::from(c.aged_in_batch.load(Ordering::Relaxed)),
            ),
            (
                "events_evicted",
                Json::from(c.evicted.load(Ordering::Relaxed)),
            ),
            (
                "ingest_batches",
                Json::from(c.batches.load(Ordering::Relaxed)),
            ),
            ("live_events", Json::from(live)),
            ("generation", Json::from(generation)),
            ("rebuilds", Json::from(rebuilds)),
            ("window", Json::from(self.window)),
            (
                "dims",
                Json::obj([
                    ("gx", Json::from(dims.gx)),
                    ("gy", Json::from(dims.gy)),
                    ("gt", Json::from(dims.gt)),
                ]),
            ),
            ("cache_entries", Json::from(cache.len())),
            ("cache_hits", Json::from(cache.hits())),
            ("cache_misses", Json::from(cache.misses())),
            (
                "uptime_seconds",
                Json::from(self.started.elapsed().as_secs_f64()),
            ),
        ])
    }

    /// `true` once every queued event has been applied (or dropped as
    /// stale). Lets callers await ingest quiescence without sleeping on a
    /// magic number.
    pub fn is_drained(&self) -> bool {
        let c = &self.counters;
        let settled = c.applied.load(Ordering::Acquire)
            + c.stale.load(Ordering::Acquire)
            + c.aged_in_batch.load(Ordering::Acquire);
        settled == c.received.load(Ordering::Acquire)
    }

    /// Block (politely) until ingest is quiescent. Intended for tests,
    /// examples, and probes that want read-your-writes; a serving client
    /// would instead poll `/stats` until `events_applied` catches up.
    pub fn wait_drained(&self) {
        while !self.is_drained() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Ask the hosting process to stop (`POST /shutdown` sets this; the
    /// daemon's main loop polls it).
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::SeqCst);
    }

    /// `true` once [`request_shutdown`](Self::request_shutdown) ran.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop accepting events, let the writer drain
    /// everything already queued, and join it. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender ends the writer's `recv` loop *after* the
        // queued batches: `mpsc` delivers everything sent before the
        // disconnect.
        drop(self.tx.lock().take());
        if let Some(writer) = self.writer.lock().take() {
            let _ = writer.join();
        }
    }
}

impl Drop for DensityService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Error returned by [`DensityService::enqueue`] after shutdown began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownError;

impl std::fmt::Display for ShutdownError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service is shutting down")
    }
}

impl std::error::Error for ShutdownError {}

fn writer_loop(
    rx: &Receiver<Vec<Point>>,
    cube: &RwLock<SlidingWindowStkde<f64>>,
    counters: &Counters,
    batch_cap: usize,
) {
    while let Ok(first) = rx.recv() {
        let mut batch = first;
        // Coalesce: drain whatever else is already queued, up to the cap,
        // so the write lock is taken once per burst instead of per event.
        while batch.len() < batch_cap {
            match rx.try_recv() {
                Ok(mut more) => batch.append(&mut more),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        batch.sort_by(|a, b| a.t.total_cmp(&b.t));

        let mut cube = cube.write();
        // Events behind the window head would trip the time-ordering
        // contract; a serving system drops them as stale instead.
        let stale = match cube.newest_time() {
            Some(newest) => batch.partition_point(|p| p.t < newest),
            None => 0,
        };
        let result = cube.push_batch(&batch[stale..]);
        drop(cube);

        counters.batches.fetch_add(1, Ordering::Relaxed);
        counters.stale.fetch_add(stale as u64, Ordering::Relaxed);
        counters
            .evicted
            .fetch_add(result.evicted as u64, Ordering::Relaxed);
        counters
            .aged_in_batch
            .fetch_add(result.skipped as u64, Ordering::Release);
        counters
            .applied
            .fetch_add(result.inserted as u64, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::GridDims;

    fn config() -> ServiceConfig {
        ServiceConfig::new(
            Domain::from_dims(GridDims::new(16, 16, 12)),
            Bandwidth::new(3.0, 2.0),
            6.0,
        )
    }

    fn drain(svc: &DensityService) {
        for _ in 0..2000 {
            if svc.is_drained() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("ingest did not drain");
    }

    #[test]
    fn enqueue_applies_and_generation_advances() {
        let svc = DensityService::start(config());
        let g0 = svc.generation();
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        assert!(svc.generation() > g0);
        let (d, _) = svc.density(8, 8, 2);
        assert!(d.unwrap() > 0.0);
        assert_eq!(svc.density(99, 0, 0).0, None);
    }

    #[test]
    fn non_finite_and_stale_events_are_dropped_not_fatal() {
        let svc = DensityService::start(config());
        let accepted = svc
            .enqueue(vec![
                Point::new(f64::NAN, 1.0, 1.0),
                Point::new(4.0, 4.0, 5.0),
            ])
            .unwrap();
        assert_eq!(accepted, 1);
        drain(&svc);
        // Arrives behind the window head: dropped as stale, service lives on.
        svc.enqueue(vec![Point::new(4.0, 4.0, 1.0)]).unwrap();
        drain(&svc);
        let stats = svc.stats_json();
        assert_eq!(stats.get("events_stale").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("events_applied").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("live_events").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn cached_read_hits_within_generation_and_misses_across() {
        let svc = DensityService::start(config());
        svc.enqueue(vec![Point::new(8.0, 8.0, 2.0)]).unwrap();
        drain(&svc);
        let computed = std::cell::Cell::new(0);
        let read = || {
            svc.cached_read("k", |cube| {
                computed.set(computed.get() + 1);
                Json::from(cube.generation())
            })
        };
        let a = read();
        let b = read();
        assert_eq!(a, b);
        assert_eq!(computed.get(), 1, "second read must be a cache hit");
        svc.enqueue(vec![Point::new(8.0, 8.0, 3.0)]).unwrap();
        drain(&svc);
        let c = read();
        assert_ne!(a, c, "write must invalidate via the generation key");
        assert_eq!(computed.get(), 2);
    }

    #[test]
    fn shutdown_drains_queued_events_then_rejects() {
        let svc = DensityService::start(config());
        for k in 0..50 {
            svc.enqueue(vec![Point::new(8.0, 8.0, 0.1 * k as f64)])
                .unwrap();
        }
        svc.shutdown();
        assert!(
            svc.is_drained(),
            "queued events must be applied before join"
        );
        assert_eq!(
            svc.enqueue(vec![Point::new(1.0, 1.0, 9.0)]),
            Err(ShutdownError)
        );
        let stats = svc.stats_json();
        // Coalescing: 50 sends must need far fewer lock acquisitions.
        let batches = stats.get("ingest_batches").unwrap().as_u64().unwrap();
        assert!(batches <= 50);
    }
}
