//! Zero-dependency JSON encoding and decoding.
//!
//! The build environment has no access to crates.io, so the wire format
//! is implemented in-tree: a [`Json`] value tree, a writer that always
//! produces valid JSON (non-finite numbers become `null`), and a strict
//! recursive-descent parser with a nesting-depth limit. Object members
//! keep insertion order, which keeps encoded responses stable and
//! readable; lookups are linear scans, fine for the handful of keys an
//! endpoint payload carries.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (arrays + objects).
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member of an object by key (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.trunc() == *v && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Encode to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (exactly one value plus whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// JSON numbers have no NaN/∞; encode non-finite values as `null` rather
/// than emitting an invalid document. Finite values round-trip: plain
/// notation in the human range, exponent notation outside it (both use
/// Rust's shortest-representation float formatting).
fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let a = v.abs();
    if v == v.trunc() && a < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else if (1e-4..1e15).contains(&a) {
        let _ = write!(out, "{v}");
    } else {
        let _ = write!(out, "{v:e}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        let mut run = self.pos; // start of the current escape-free run
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.raw_run(run)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.raw_run(run)?);
                    self.pos += 1;
                    self.escape(&mut out)?;
                    run = self.pos;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The escape-free run `[start, pos)`. Runs start and end at ASCII
    /// delimiters, so the slice is always on UTF-8 boundaries of the
    /// original `&str` input.
    fn raw_run(&self, start: usize) -> Result<&str, JsonError> {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: the low half must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.encode()).expect("roundtrip parse")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-3.25),
            Json::Num(1e-12),
            Json::Num(6.02e23),
            Json::Str("hé \"quoted\" \\ \n ✓".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn containers_roundtrip_in_order() {
        let v = Json::obj([
            ("b", Json::from(2.0)),
            (
                "a",
                Json::Arr(vec![Json::Null, Json::from(true), Json::from("x")]),
            ),
            ("nested", Json::obj([("k", Json::from(1.5))])),
        ]);
        assert_eq!(
            v.encode(),
            r#"{"b":2,"a":[null,true,"x"],"nested":{"k":1.5}}"#
        );
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e-1 , \"a\\u00e9\\n\", \"\\ud83d\\ude00\" ] } ")
            .unwrap();
        let arr = v.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-0.25));
        assert_eq!(arr[2].as_str(), Some("aé\n"));
        assert_eq!(arr[3].as_str(), Some("😀"));
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::from(7usize)), ("s", Json::from("hi"))]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800\"", // unpaired surrogate
            "01e",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(60) + &"]".repeat(60);
        assert!(Json::parse(&ok).is_ok());
    }
}
