//! HTTP endpoint routing for the density service.
//!
//! | endpoint | verb | what it answers |
//! |---|---|---|
//! | `/healthz`  | GET  | liveness + generation |
//! | `/stats`    | GET  | ingest/serve counters |
//! | `/metrics`  | GET  | Prometheus text exposition of the obs registry |
//! | `/trace`    | GET  | recent spans from the obs trace ring |
//! | `/density`  | GET  | one voxel's density (`x`, `y`, `t`) |
//! | `/region`   | GET  | aggregate over a voxel box (`x0..t1`, default full grid; optional `max_err`) |
//! | `/slice`    | GET  | one time plane (`t`; optional `max_err`) |
//! | `/events`   | POST | ingest one event or a batch |
//! | `/reshard`  | POST | repartition the cube into `shards` temporal slabs |
//! | `/shutdown` | POST | ask the daemon to stop gracefully |
//!
//! All reads serve from the published copy-on-write snapshot — they
//! never take the writer's cube lock. Region and slice responses are
//! additionally memoized in the epoch-vector-keyed LRU cache; voxel
//! reads are cheap enough to always hit the snapshot.
//!
//! `max_err` on `/region` and `/slice` is a *relative* error budget:
//! the answer may deviate from the exact density by at most
//! `max_err × peak_density`. The service walks the slab mip pyramids
//! down from the coarsest level and serves the first level whose
//! certified bound (pyramid envelope + float-summation slack + the
//! serve kernel's LUT error) fits; such responses carry `approx`,
//! `level`, and the certified `error_bound` (per-voxel, density units).
//! Omitting `max_err` (or sending `0`) takes the exact path,
//! byte-identical to a request without the parameter.

use crate::http::{Request, Response};
use crate::json::Json;
use crate::service::DensityService;
use stkde_data::Point;
use stkde_grid::VoxelRange;

/// Dispatch one request against the service.
pub fn handle(svc: &DensityService, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(svc),
        ("GET", "/stats") => Response::json(200, &svc.stats_json()),
        ("GET", "/metrics") => metrics(svc),
        ("GET", "/trace") => Response::raw_json(200, stkde_obs::trace_json()),
        ("GET", "/density") => density(svc, req),
        ("GET", "/region") => region(svc, req),
        ("GET", "/slice") => slice(svc, req),
        ("POST", "/events") => events(svc, req),
        ("POST", "/reshard") => reshard(svc, req),
        ("POST", "/shutdown") => shutdown(svc),
        (_, "/healthz" | "/stats" | "/metrics" | "/trace" | "/density" | "/region" | "/slice") => {
            Response::error(405, "use GET")
        }
        (_, "/events" | "/reshard" | "/shutdown") => Response::error(405, "use POST"),
        _ => Response::error(404, format!("no such endpoint {}", req.path)),
    }
}

fn metrics(svc: &DensityService) -> Response {
    // Point-in-time gauges (queue depth, uptime, cache size) are pushed
    // at scrape time; counters and histograms are always current.
    svc.refresh_gauges();
    Response::prometheus(stkde_obs::global().render())
}

fn healthz(svc: &DensityService) -> Response {
    Response::json(
        200,
        &Json::obj([
            ("status", Json::from("ok")),
            ("generation", Json::from(svc.generation())),
        ]),
    )
}

/// A required numeric query parameter, or the 400 explaining what's wrong.
fn param_usize(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .query_param(name)
        .ok_or_else(|| Response::error(400, format!("missing query parameter `{name}`")))?;
    raw.parse()
        .map_err(|_| Response::error(400, format!("bad `{name}`: {raw:?} is not a voxel index")))
}

/// An optional numeric query parameter with a default.
fn param_usize_or(req: &Request, name: &str, default: usize) -> Result<usize, Response> {
    match req.query_param(name) {
        None => Ok(default),
        Some(_) => param_usize(req, name),
    }
}

/// The optional `max_err` relative error budget (absent ⇒ `0` = exact).
fn param_max_err(req: &Request) -> Result<f64, Response> {
    let Some(raw) = req.query_param("max_err") else {
        return Ok(0.0);
    };
    match raw.parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
        _ => Err(Response::error(
            400,
            format!("bad `max_err`: {raw:?} is not a finite non-negative number"),
        )),
    }
}

fn density(svc: &DensityService, req: &Request) -> Response {
    let (x, y, t) = match (
        param_usize(req, "x"),
        param_usize(req, "y"),
        param_usize(req, "t"),
    ) {
        (Ok(x), Ok(y), Ok(t)) => (x, y, t),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return e,
    };
    let (value, generation) = svc.density(x, y, t);
    match value {
        Some(d) => Response::json(
            200,
            &Json::obj([
                ("x", Json::from(x)),
                ("y", Json::from(y)),
                ("t", Json::from(t)),
                ("density", Json::from(d)),
                ("generation", Json::from(generation)),
            ]),
        ),
        None => Response::error(
            400,
            format!("voxel ({x}, {y}, {t}) outside grid {}", svc.domain().dims()),
        ),
    }
}

fn region(svc: &DensityService, req: &Request) -> Response {
    let dims = svc.domain().dims();
    let parse = || -> Result<VoxelRange, Response> {
        Ok(VoxelRange {
            x0: param_usize_or(req, "x0", 0)?,
            x1: param_usize_or(req, "x1", dims.gx)?,
            y0: param_usize_or(req, "y0", 0)?,
            y1: param_usize_or(req, "y1", dims.gy)?,
            t0: param_usize_or(req, "t0", 0)?,
            t1: param_usize_or(req, "t1", dims.gt)?,
        })
    };
    let r = match parse() {
        Ok(r) => r,
        Err(e) => return e,
    };
    let max_err = match param_max_err(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    // Clamp client voxel indices to the grid; a box that is inverted
    // (`x0 >= x1`) or lies entirely outside the grid clips to nothing —
    // that is a caller error, not a degenerate zero-voxel answer.
    let clipped = r.clipped(dims);
    if clipped.is_empty() {
        return Response::error(
            400,
            format!(
                "empty voxel box {}-{},{}-{},{}-{} after clipping to grid {dims} \
                 (bounds must satisfy lo < hi and intersect the grid)",
                r.x0, r.x1, r.y0, r.y1, r.t0, r.t1
            ),
        );
    }
    let mut key = format!(
        "region:{}-{},{}-{},{}-{}",
        clipped.x0, clipped.x1, clipped.y0, clipped.y1, clipped.t0, clipped.t1
    );
    if max_err > 0.0 {
        // Approximate answers are distinct cache entries; the exact-path
        // key (and therefore its bytes) is untouched by this feature.
        key.push_str(&format!(",e{max_err}"));
        let body = svc.cached_read(&key, clipped.t0, clipped.t1, |snap| {
            svc.note_pyramid_build(&snap.ensure_pyramids());
            let a = snap.density_range_approx(clipped, max_err, svc.kernel_error_bound());
            svc.note_approx_query(a.level);
            let s = &a.stats;
            Json::obj([
                ("x0", Json::from(clipped.x0)),
                ("x1", Json::from(clipped.x1)),
                ("y0", Json::from(clipped.y0)),
                ("y1", Json::from(clipped.y1)),
                ("t0", Json::from(clipped.t0)),
                ("t1", Json::from(clipped.t1)),
                ("sum", Json::from(s.sum)),
                ("max", Json::from(s.max)),
                ("min", Json::from(s.min)),
                ("nonzero", Json::from(s.nonzero)),
                ("voxels", Json::from(s.total)),
                ("approx", Json::from(a.level > 0)),
                ("level", Json::from(a.level)),
                ("error_bound", Json::from(a.error_bound)),
                ("generation", Json::from(snap.generation())),
            ])
        });
        return Response::json_body(200, body);
    }
    let body = svc.cached_read(&key, clipped.t0, clipped.t1, |snap| {
        let s = snap.density_range(clipped);
        let empty = s.total == 0;
        Json::obj([
            ("x0", Json::from(clipped.x0)),
            ("x1", Json::from(clipped.x1)),
            ("y0", Json::from(clipped.y0)),
            ("y1", Json::from(clipped.y1)),
            ("t0", Json::from(clipped.t0)),
            ("t1", Json::from(clipped.t1)),
            ("sum", Json::from(s.sum)),
            // ±∞ of an empty box has no JSON encoding; report null.
            ("max", if empty { Json::Null } else { Json::from(s.max) }),
            ("min", if empty { Json::Null } else { Json::from(s.min) }),
            ("nonzero", Json::from(s.nonzero)),
            ("voxels", Json::from(s.total)),
            ("generation", Json::from(snap.generation())),
        ])
    });
    Response::json_body(200, body)
}

fn slice(svc: &DensityService, req: &Request) -> Response {
    let t = match param_usize(req, "t") {
        Ok(t) => t,
        Err(e) => return e,
    };
    let dims = svc.domain().dims();
    if t >= dims.gt {
        return Response::error(400, format!("t={t} outside grid {dims}"));
    }
    let max_err = match param_max_err(req) {
        Ok(v) => v,
        Err(e) => return e,
    };
    if max_err > 0.0 {
        let key = format!("slice:{t},e{max_err}");
        let body = svc.cached_read(&key, t, t + 1, |snap| {
            svc.note_pyramid_build(&snap.ensure_pyramids());
            let a = snap
                .density_slice_approx(t, max_err, svc.kernel_error_bound())
                .expect("t bounds checked above");
            svc.note_approx_query(a.level);
            let values = a.values.into_iter().map(Json::from).collect();
            Json::obj([
                ("t", Json::from(t)),
                ("gx", Json::from(dims.gx)),
                ("gy", Json::from(dims.gy)),
                ("approx", Json::from(a.level > 0)),
                ("level", Json::from(a.level)),
                ("cell", Json::from(a.cell)),
                ("width", Json::from(a.width)),
                ("height", Json::from(a.height)),
                ("error_bound", Json::from(a.error_bound)),
                ("generation", Json::from(snap.generation())),
                ("values", Json::Arr(values)),
            ])
        });
        return Response::json_body(200, body);
    }
    let key = format!("slice:{t}");
    let body = svc.cached_read(&key, t, t + 1, |snap| {
        let values = snap
            .density_slice(t)
            .expect("t bounds checked above")
            .into_iter()
            .map(Json::from)
            .collect();
        Json::obj([
            ("t", Json::from(t)),
            ("gx", Json::from(dims.gx)),
            ("gy", Json::from(dims.gy)),
            ("generation", Json::from(snap.generation())),
            ("values", Json::Arr(values)),
        ])
    });
    Response::json_body(200, body)
}

/// Parse one event object `{"x": .., "y": .., "t": ..}`.
fn parse_event(v: &Json) -> Result<Point, String> {
    let coord = |name: &str| {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event needs numeric `{name}`: got {}", v.encode()))
    };
    let p = Point::new(coord("x")?, coord("y")?, coord("t")?);
    if !p.is_finite() {
        return Err(format!("event has non-finite coordinates: {}", v.encode()));
    }
    Ok(p)
}

fn events(svc: &DensityService, req: &Request) -> Response {
    let text = match req.body_str() {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, format!("body is not JSON: {e}")),
    };
    // Accept one event object, a bare array, or {"events": [...]}.
    let list: Vec<&Json> = if parsed.get("x").is_some() {
        vec![&parsed]
    } else if let Some(arr) = parsed.as_array() {
        arr.iter().collect()
    } else if let Some(arr) = parsed.get("events").and_then(Json::as_array) {
        arr.iter().collect()
    } else {
        return Response::error(
            400,
            "expected an event object, an array of events, or {\"events\": [...]}",
        );
    };
    let mut points = Vec::with_capacity(list.len());
    for v in list {
        match parse_event(v) {
            Ok(p) => points.push(p),
            Err(msg) => return Response::error(400, msg),
        }
    }
    match svc.enqueue(points) {
        Ok(accepted) => Response::json(202, &Json::obj([("accepted", Json::from(accepted))])),
        Err(e) => Response::error(500, e.to_string()),
    }
}

fn reshard(svc: &DensityService, req: &Request) -> Response {
    let shards = match param_usize(req, "shards") {
        Ok(n) => n,
        Err(e) => return e,
    };
    if shards == 0 {
        return Response::error(400, "`shards` must be >= 1");
    }
    let actual = svc.reshard(shards);
    Response::json(
        200,
        &Json::obj([
            ("shards", Json::from(actual)),
            ("generation", Json::from(svc.generation())),
        ]),
    )
}

fn shutdown(svc: &DensityService) -> Response {
    svc.request_shutdown();
    Response::json(200, &Json::obj([("status", Json::from("shutting down"))]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use stkde_grid::{Bandwidth, Domain, GridDims};

    fn request(method: &str, path: &str, query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn service() -> std::sync::Arc<DensityService> {
        DensityService::start(ServiceConfig::new(
            Domain::from_dims(GridDims::new(12, 10, 8)),
            Bandwidth::new(2.0, 1.5),
            5.0,
        ))
    }

    #[test]
    fn routing_table() {
        let svc = service();
        assert_eq!(
            handle(&svc, &request("GET", "/healthz", &[], "")).status,
            200
        );
        assert_eq!(handle(&svc, &request("GET", "/stats", &[], "")).status, 200);
        assert_eq!(
            handle(&svc, &request("POST", "/healthz", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&svc, &request("GET", "/events", &[], "")).status,
            405
        );
        assert_eq!(handle(&svc, &request("GET", "/nope", &[], "")).status, 404);
        assert_eq!(
            handle(&svc, &request("POST", "/metrics", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&svc, &request("POST", "/trace", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&svc, &request("GET", "/reshard", &[], "")).status,
            405
        );
    }

    #[test]
    fn reshard_endpoint_validates_and_repartitions() {
        let svc = service();
        let missing = handle(&svc, &request("POST", "/reshard", &[], ""));
        assert_eq!(missing.status, 400);
        let zero = handle(&svc, &request("POST", "/reshard", &[("shards", "0")], ""));
        assert_eq!(zero.status, 400);
        let ok = handle(&svc, &request("POST", "/reshard", &[("shards", "2")], ""));
        assert_eq!(ok.status, 200);
        let body = Json::parse(std::str::from_utf8(ok.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("shards").unwrap().as_u64(), Some(2));
        assert_eq!(svc.shard_count(), 2);
        // Oversized requests clamp to the T axis instead of erroring.
        let clamped = handle(&svc, &request("POST", "/reshard", &[("shards", "999")], ""));
        let body = Json::parse(std::str::from_utf8(clamped.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("shards").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn metrics_exposes_prometheus_text_and_trace_is_json() {
        let svc = service();
        let resp = handle(&svc, &request("GET", "/metrics", &[], ""));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        let text = std::str::from_utf8(resp.body.as_bytes()).unwrap();
        assert!(text.contains("# TYPE stkde_ingest_events_received_total counter"));
        assert!(text.contains("# TYPE stkde_http_request_seconds histogram"));
        assert!(text.contains("stkde_ingest_queue_depth 0"));

        let trace = handle(&svc, &request("GET", "/trace", &[], ""));
        assert_eq!(trace.status, 200);
        let body = std::str::from_utf8(trace.body.as_bytes()).unwrap();
        assert!(crate::json::Json::parse(body).is_ok(), "bad JSON: {body}");
    }

    #[test]
    fn density_validates_parameters() {
        let svc = service();
        let missing = handle(&svc, &request("GET", "/density", &[("x", "1")], ""));
        assert_eq!(missing.status, 400);
        let bad = handle(
            &svc,
            &request("GET", "/density", &[("x", "a"), ("y", "0"), ("t", "0")], ""),
        );
        assert_eq!(bad.status, 400);
        let oob = handle(
            &svc,
            &request(
                "GET",
                "/density",
                &[("x", "99"), ("y", "0"), ("t", "0")],
                "",
            ),
        );
        assert_eq!(oob.status, 400);
        let ok = handle(
            &svc,
            &request("GET", "/density", &[("x", "3"), ("y", "3"), ("t", "3")], ""),
        );
        assert_eq!(ok.status, 200);
    }

    #[test]
    fn events_accepts_all_three_shapes() {
        let _serial = crate::test_support::serial();
        let svc = service();
        let single = handle(
            &svc,
            &request("POST", "/events", &[], r#"{"x":1.0,"y":2.0,"t":0.5}"#),
        );
        assert_eq!(single.status, 202);
        let bare = handle(
            &svc,
            &request("POST", "/events", &[], r#"[{"x":1,"y":2,"t":1.0}]"#),
        );
        assert_eq!(bare.status, 202);
        let wrapped = handle(
            &svc,
            &request(
                "POST",
                "/events",
                &[],
                r#"{"events":[{"x":1,"y":2,"t":1.5},{"x":3,"y":4,"t":2.0}]}"#,
            ),
        );
        assert_eq!(wrapped.status, 202);
        let garbage = handle(&svc, &request("POST", "/events", &[], "not json"));
        assert_eq!(garbage.status, 400);
        let wrong_shape = handle(&svc, &request("POST", "/events", &[], r#"{"a":1}"#));
        assert_eq!(wrong_shape.status, 400);
        let non_finite = handle(
            &svc,
            &request("POST", "/events", &[], r#"{"x":1,"y":2,"t":1e999}"#),
        );
        assert_eq!(non_finite.status, 400);
    }

    #[test]
    fn region_defaults_to_full_grid_and_clips() {
        let svc = service();
        let full = handle(&svc, &request("GET", "/region", &[], ""));
        assert_eq!(full.status, 200);
        let body = Json::parse(std::str::from_utf8(full.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("voxels").unwrap().as_u64(), Some(12 * 10 * 8));
        // Out-of-range bounds clip rather than error.
        let clipped = handle(&svc, &request("GET", "/region", &[("x1", "999")], ""));
        assert_eq!(clipped.status, 200);
        let body = Json::parse(std::str::from_utf8(clipped.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("x1").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn region_rejects_inverted_and_empty_boxes() {
        // Regression: these used to be trusted verbatim and served as a
        // degenerate zero-voxel answer (sum 0, max null) with a cache
        // entry to boot. They are client errors.
        let svc = service();
        for (name, params) in [
            ("inverted x", vec![("x0", "5"), ("x1", "2")]),
            ("zero-width t", vec![("t0", "3"), ("t1", "3")]),
            ("entirely outside grid", vec![("x0", "100"), ("x1", "200")]),
            ("inverted after clip", vec![("y0", "999")]),
        ] {
            let resp = handle(&svc, &request("GET", "/region", &params, ""));
            assert_eq!(resp.status, 400, "{name} must be rejected");
            let msg = std::str::from_utf8(resp.body.as_bytes()).unwrap();
            assert!(msg.contains("empty voxel box"), "unhelpful 400: {msg}");
        }
    }

    #[test]
    fn region_max_err_validates_and_serves_certified_answers() {
        let _serial = crate::test_support::serial();
        let svc = service();
        for raw in ["-1", "abc", "NaN", "inf"] {
            let resp = handle(&svc, &request("GET", "/region", &[("max_err", raw)], ""));
            assert_eq!(resp.status, 400, "max_err={raw} must be rejected");
        }
        svc.enqueue(
            (0..40)
                .map(|k| Point::new((k % 12) as f64, (k % 10) as f64, 0.1 * k as f64))
                .collect(),
        )
        .unwrap();
        svc.wait_drained();

        let parse = |resp: Response| {
            assert_eq!(resp.status, 200);
            Json::parse(std::str::from_utf8(resp.body.as_bytes()).unwrap()).unwrap()
        };
        let exact = parse(handle(&svc, &request("GET", "/region", &[], "")));
        let approx = parse(handle(
            &svc,
            &request("GET", "/region", &[("max_err", "0.5")], ""),
        ));
        let bound = approx.get("error_bound").unwrap().as_f64().unwrap();
        assert!(approx.get("approx").unwrap().as_bool().is_some());
        assert!(approx.get("level").unwrap().as_u64().is_some());
        assert!(bound >= 0.0);
        let voxels = exact.get("voxels").unwrap().as_f64().unwrap();
        let d_sum = (approx.get("sum").unwrap().as_f64().unwrap()
            - exact.get("sum").unwrap().as_f64().unwrap())
        .abs();
        assert!(
            d_sum <= bound * voxels,
            "sum off by {d_sum}, certified {bound} × {voxels} voxels"
        );
        let d_max = (approx.get("max").unwrap().as_f64().unwrap()
            - exact.get("max").unwrap().as_f64().unwrap())
        .abs();
        assert!(d_max <= bound, "max off by {d_max}, certified {bound}");
        // The certified nonzero count is an upper bound on the truth.
        assert!(
            approx.get("nonzero").unwrap().as_u64().unwrap()
                >= exact.get("nonzero").unwrap().as_u64().unwrap()
        );

        // `max_err=0` is the exact path, byte-for-byte.
        let plain = handle(&svc, &request("GET", "/region", &[], ""));
        let zero = handle(&svc, &request("GET", "/region", &[("max_err", "0")], ""));
        assert_eq!(plain.body.as_bytes(), zero.body.as_bytes());
    }

    #[test]
    fn slice_max_err_downsamples_within_bound() {
        let _serial = crate::test_support::serial();
        let svc = service();
        svc.enqueue(
            (0..30)
                .map(|k| Point::new((k % 12) as f64, ((k * 3) % 10) as f64, 0.05 * k as f64))
                .collect(),
        )
        .unwrap();
        svc.wait_drained();

        let parse = |resp: Response| {
            assert_eq!(resp.status, 200);
            Json::parse(std::str::from_utf8(resp.body.as_bytes()).unwrap()).unwrap()
        };
        let exact = parse(handle(&svc, &request("GET", "/slice", &[("t", "1")], "")));
        let approx = parse(handle(
            &svc,
            &request("GET", "/slice", &[("t", "1"), ("max_err", "0.9")], ""),
        ));
        let level = approx.get("level").unwrap().as_u64().unwrap() as usize;
        let width = approx.get("width").unwrap().as_u64().unwrap() as usize;
        let height = approx.get("height").unwrap().as_u64().unwrap() as usize;
        let cell = approx.get("cell").unwrap().as_u64().unwrap() as usize;
        assert_eq!(cell, 1 << level);
        let bound = approx.get("error_bound").unwrap().as_f64().unwrap();
        let coarse: Vec<f64> = approx
            .get("values")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(coarse.len(), width * height);
        let fine: Vec<f64> = exact
            .get("values")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        // Every base voxel must sit within the certified bound of the
        // cell mean that covers it.
        for (i, &v) in fine.iter().enumerate() {
            let (x, y) = (i % 12, i / 12);
            let c = coarse[(y >> level) * width + (x >> level)];
            assert!(
                (c - v).abs() <= bound,
                "voxel ({x},{y}): |{c} − {v}| > {bound} at level {level}"
            );
        }

        // `max_err=0` is the exact path, byte-for-byte.
        let plain = handle(&svc, &request("GET", "/slice", &[("t", "1")], ""));
        let zero = handle(
            &svc,
            &request("GET", "/slice", &[("t", "1"), ("max_err", "0")], ""),
        );
        assert_eq!(plain.body.as_bytes(), zero.body.as_bytes());
        let bad = handle(
            &svc,
            &request("GET", "/slice", &[("t", "1"), ("max_err", "-0.5")], ""),
        );
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn shutdown_endpoint_raises_the_flag() {
        let svc = service();
        assert!(!svc.shutdown_requested());
        let resp = handle(&svc, &request("POST", "/shutdown", &[], ""));
        assert_eq!(resp.status, 200);
        assert!(svc.shutdown_requested());
    }
}
