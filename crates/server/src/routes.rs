//! HTTP endpoint routing for the density service.
//!
//! | endpoint | verb | what it answers |
//! |---|---|---|
//! | `/healthz`  | GET  | liveness + generation |
//! | `/stats`    | GET  | ingest/serve counters |
//! | `/metrics`  | GET  | Prometheus text exposition of the obs registry |
//! | `/trace`    | GET  | recent spans from the obs trace ring |
//! | `/density`  | GET  | one voxel's density (`x`, `y`, `t`) |
//! | `/region`   | GET  | aggregate over a voxel box (`x0..t1`, default full grid) |
//! | `/slice`    | GET  | one time plane (`t`) |
//! | `/events`   | POST | ingest one event or a batch |
//! | `/reshard`  | POST | repartition the cube into `shards` temporal slabs |
//! | `/shutdown` | POST | ask the daemon to stop gracefully |
//!
//! All reads serve from the published copy-on-write snapshot — they
//! never take the writer's cube lock. Region and slice responses are
//! additionally memoized in the epoch-vector-keyed LRU cache; voxel
//! reads are cheap enough to always hit the snapshot.

use crate::http::{Request, Response};
use crate::json::Json;
use crate::service::DensityService;
use stkde_data::Point;
use stkde_grid::VoxelRange;

/// Dispatch one request against the service.
pub fn handle(svc: &DensityService, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(svc),
        ("GET", "/stats") => Response::json(200, &svc.stats_json()),
        ("GET", "/metrics") => metrics(svc),
        ("GET", "/trace") => Response::raw_json(200, stkde_obs::trace_json()),
        ("GET", "/density") => density(svc, req),
        ("GET", "/region") => region(svc, req),
        ("GET", "/slice") => slice(svc, req),
        ("POST", "/events") => events(svc, req),
        ("POST", "/reshard") => reshard(svc, req),
        ("POST", "/shutdown") => shutdown(svc),
        (_, "/healthz" | "/stats" | "/metrics" | "/trace" | "/density" | "/region" | "/slice") => {
            Response::error(405, "use GET")
        }
        (_, "/events" | "/reshard" | "/shutdown") => Response::error(405, "use POST"),
        _ => Response::error(404, format!("no such endpoint {}", req.path)),
    }
}

fn metrics(svc: &DensityService) -> Response {
    // Point-in-time gauges (queue depth, uptime, cache size) are pushed
    // at scrape time; counters and histograms are always current.
    svc.refresh_gauges();
    Response::prometheus(stkde_obs::global().render())
}

fn healthz(svc: &DensityService) -> Response {
    Response::json(
        200,
        &Json::obj([
            ("status", Json::from("ok")),
            ("generation", Json::from(svc.generation())),
        ]),
    )
}

/// A required numeric query parameter, or the 400 explaining what's wrong.
fn param_usize(req: &Request, name: &str) -> Result<usize, Response> {
    let raw = req
        .query_param(name)
        .ok_or_else(|| Response::error(400, format!("missing query parameter `{name}`")))?;
    raw.parse()
        .map_err(|_| Response::error(400, format!("bad `{name}`: {raw:?} is not a voxel index")))
}

/// An optional numeric query parameter with a default.
fn param_usize_or(req: &Request, name: &str, default: usize) -> Result<usize, Response> {
    match req.query_param(name) {
        None => Ok(default),
        Some(_) => param_usize(req, name),
    }
}

fn density(svc: &DensityService, req: &Request) -> Response {
    let (x, y, t) = match (
        param_usize(req, "x"),
        param_usize(req, "y"),
        param_usize(req, "t"),
    ) {
        (Ok(x), Ok(y), Ok(t)) => (x, y, t),
        (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return e,
    };
    let (value, generation) = svc.density(x, y, t);
    match value {
        Some(d) => Response::json(
            200,
            &Json::obj([
                ("x", Json::from(x)),
                ("y", Json::from(y)),
                ("t", Json::from(t)),
                ("density", Json::from(d)),
                ("generation", Json::from(generation)),
            ]),
        ),
        None => Response::error(
            400,
            format!("voxel ({x}, {y}, {t}) outside grid {}", svc.domain().dims()),
        ),
    }
}

fn region(svc: &DensityService, req: &Request) -> Response {
    let dims = svc.domain().dims();
    let parse = || -> Result<VoxelRange, Response> {
        Ok(VoxelRange {
            x0: param_usize_or(req, "x0", 0)?,
            x1: param_usize_or(req, "x1", dims.gx)?,
            y0: param_usize_or(req, "y0", 0)?,
            y1: param_usize_or(req, "y1", dims.gy)?,
            t0: param_usize_or(req, "t0", 0)?,
            t1: param_usize_or(req, "t1", dims.gt)?,
        })
    };
    let r = match parse() {
        Ok(r) => r,
        Err(e) => return e,
    };
    let clipped = r.clipped(dims);
    let key = format!(
        "region:{}-{},{}-{},{}-{}",
        clipped.x0, clipped.x1, clipped.y0, clipped.y1, clipped.t0, clipped.t1
    );
    let body = svc.cached_read(&key, clipped.t0, clipped.t1, |snap| {
        let s = snap.density_range(clipped);
        let empty = s.total == 0;
        Json::obj([
            ("x0", Json::from(clipped.x0)),
            ("x1", Json::from(clipped.x1)),
            ("y0", Json::from(clipped.y0)),
            ("y1", Json::from(clipped.y1)),
            ("t0", Json::from(clipped.t0)),
            ("t1", Json::from(clipped.t1)),
            ("sum", Json::from(s.sum)),
            // ±∞ of an empty box has no JSON encoding; report null.
            ("max", if empty { Json::Null } else { Json::from(s.max) }),
            ("min", if empty { Json::Null } else { Json::from(s.min) }),
            ("nonzero", Json::from(s.nonzero)),
            ("voxels", Json::from(s.total)),
            ("generation", Json::from(snap.generation())),
        ])
    });
    Response::json_body(200, body)
}

fn slice(svc: &DensityService, req: &Request) -> Response {
    let t = match param_usize(req, "t") {
        Ok(t) => t,
        Err(e) => return e,
    };
    let dims = svc.domain().dims();
    if t >= dims.gt {
        return Response::error(400, format!("t={t} outside grid {dims}"));
    }
    let key = format!("slice:{t}");
    let body = svc.cached_read(&key, t, t + 1, |snap| {
        let values = snap
            .density_slice(t)
            .expect("t bounds checked above")
            .into_iter()
            .map(Json::from)
            .collect();
        Json::obj([
            ("t", Json::from(t)),
            ("gx", Json::from(dims.gx)),
            ("gy", Json::from(dims.gy)),
            ("generation", Json::from(snap.generation())),
            ("values", Json::Arr(values)),
        ])
    });
    Response::json_body(200, body)
}

/// Parse one event object `{"x": .., "y": .., "t": ..}`.
fn parse_event(v: &Json) -> Result<Point, String> {
    let coord = |name: &str| {
        v.get(name)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event needs numeric `{name}`: got {}", v.encode()))
    };
    let p = Point::new(coord("x")?, coord("y")?, coord("t")?);
    if !p.is_finite() {
        return Err(format!("event has non-finite coordinates: {}", v.encode()));
    }
    Ok(p)
}

fn events(svc: &DensityService, req: &Request) -> Response {
    let text = match req.body_str() {
        Ok(t) => t,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, format!("body is not JSON: {e}")),
    };
    // Accept one event object, a bare array, or {"events": [...]}.
    let list: Vec<&Json> = if parsed.get("x").is_some() {
        vec![&parsed]
    } else if let Some(arr) = parsed.as_array() {
        arr.iter().collect()
    } else if let Some(arr) = parsed.get("events").and_then(Json::as_array) {
        arr.iter().collect()
    } else {
        return Response::error(
            400,
            "expected an event object, an array of events, or {\"events\": [...]}",
        );
    };
    let mut points = Vec::with_capacity(list.len());
    for v in list {
        match parse_event(v) {
            Ok(p) => points.push(p),
            Err(msg) => return Response::error(400, msg),
        }
    }
    match svc.enqueue(points) {
        Ok(accepted) => Response::json(202, &Json::obj([("accepted", Json::from(accepted))])),
        Err(e) => Response::error(500, e.to_string()),
    }
}

fn reshard(svc: &DensityService, req: &Request) -> Response {
    let shards = match param_usize(req, "shards") {
        Ok(n) => n,
        Err(e) => return e,
    };
    if shards == 0 {
        return Response::error(400, "`shards` must be >= 1");
    }
    let actual = svc.reshard(shards);
    Response::json(
        200,
        &Json::obj([
            ("shards", Json::from(actual)),
            ("generation", Json::from(svc.generation())),
        ]),
    )
}

fn shutdown(svc: &DensityService) -> Response {
    svc.request_shutdown();
    Response::json(200, &Json::obj([("status", Json::from("shutting down"))]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use stkde_grid::{Bandwidth, Domain, GridDims};

    fn request(method: &str, path: &str, query: &[(&str, &str)], body: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn service() -> std::sync::Arc<DensityService> {
        DensityService::start(ServiceConfig::new(
            Domain::from_dims(GridDims::new(12, 10, 8)),
            Bandwidth::new(2.0, 1.5),
            5.0,
        ))
    }

    #[test]
    fn routing_table() {
        let svc = service();
        assert_eq!(
            handle(&svc, &request("GET", "/healthz", &[], "")).status,
            200
        );
        assert_eq!(handle(&svc, &request("GET", "/stats", &[], "")).status, 200);
        assert_eq!(
            handle(&svc, &request("POST", "/healthz", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&svc, &request("GET", "/events", &[], "")).status,
            405
        );
        assert_eq!(handle(&svc, &request("GET", "/nope", &[], "")).status, 404);
        assert_eq!(
            handle(&svc, &request("POST", "/metrics", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&svc, &request("POST", "/trace", &[], "")).status,
            405
        );
        assert_eq!(
            handle(&svc, &request("GET", "/reshard", &[], "")).status,
            405
        );
    }

    #[test]
    fn reshard_endpoint_validates_and_repartitions() {
        let svc = service();
        let missing = handle(&svc, &request("POST", "/reshard", &[], ""));
        assert_eq!(missing.status, 400);
        let zero = handle(&svc, &request("POST", "/reshard", &[("shards", "0")], ""));
        assert_eq!(zero.status, 400);
        let ok = handle(&svc, &request("POST", "/reshard", &[("shards", "2")], ""));
        assert_eq!(ok.status, 200);
        let body = Json::parse(std::str::from_utf8(ok.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("shards").unwrap().as_u64(), Some(2));
        assert_eq!(svc.shard_count(), 2);
        // Oversized requests clamp to the T axis instead of erroring.
        let clamped = handle(&svc, &request("POST", "/reshard", &[("shards", "999")], ""));
        let body = Json::parse(std::str::from_utf8(clamped.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("shards").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn metrics_exposes_prometheus_text_and_trace_is_json() {
        let svc = service();
        let resp = handle(&svc, &request("GET", "/metrics", &[], ""));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        let text = std::str::from_utf8(resp.body.as_bytes()).unwrap();
        assert!(text.contains("# TYPE stkde_ingest_events_received_total counter"));
        assert!(text.contains("# TYPE stkde_http_request_seconds histogram"));
        assert!(text.contains("stkde_ingest_queue_depth 0"));

        let trace = handle(&svc, &request("GET", "/trace", &[], ""));
        assert_eq!(trace.status, 200);
        let body = std::str::from_utf8(trace.body.as_bytes()).unwrap();
        assert!(crate::json::Json::parse(body).is_ok(), "bad JSON: {body}");
    }

    #[test]
    fn density_validates_parameters() {
        let svc = service();
        let missing = handle(&svc, &request("GET", "/density", &[("x", "1")], ""));
        assert_eq!(missing.status, 400);
        let bad = handle(
            &svc,
            &request("GET", "/density", &[("x", "a"), ("y", "0"), ("t", "0")], ""),
        );
        assert_eq!(bad.status, 400);
        let oob = handle(
            &svc,
            &request(
                "GET",
                "/density",
                &[("x", "99"), ("y", "0"), ("t", "0")],
                "",
            ),
        );
        assert_eq!(oob.status, 400);
        let ok = handle(
            &svc,
            &request("GET", "/density", &[("x", "3"), ("y", "3"), ("t", "3")], ""),
        );
        assert_eq!(ok.status, 200);
    }

    #[test]
    fn events_accepts_all_three_shapes() {
        let _serial = crate::test_support::serial();
        let svc = service();
        let single = handle(
            &svc,
            &request("POST", "/events", &[], r#"{"x":1.0,"y":2.0,"t":0.5}"#),
        );
        assert_eq!(single.status, 202);
        let bare = handle(
            &svc,
            &request("POST", "/events", &[], r#"[{"x":1,"y":2,"t":1.0}]"#),
        );
        assert_eq!(bare.status, 202);
        let wrapped = handle(
            &svc,
            &request(
                "POST",
                "/events",
                &[],
                r#"{"events":[{"x":1,"y":2,"t":1.5},{"x":3,"y":4,"t":2.0}]}"#,
            ),
        );
        assert_eq!(wrapped.status, 202);
        let garbage = handle(&svc, &request("POST", "/events", &[], "not json"));
        assert_eq!(garbage.status, 400);
        let wrong_shape = handle(&svc, &request("POST", "/events", &[], r#"{"a":1}"#));
        assert_eq!(wrong_shape.status, 400);
        let non_finite = handle(
            &svc,
            &request("POST", "/events", &[], r#"{"x":1,"y":2,"t":1e999}"#),
        );
        assert_eq!(non_finite.status, 400);
    }

    #[test]
    fn region_defaults_to_full_grid_and_clips() {
        let svc = service();
        let full = handle(&svc, &request("GET", "/region", &[], ""));
        assert_eq!(full.status, 200);
        let body = Json::parse(std::str::from_utf8(full.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("voxels").unwrap().as_u64(), Some(12 * 10 * 8));
        // Out-of-range bounds clip rather than error.
        let clipped = handle(&svc, &request("GET", "/region", &[("x1", "999")], ""));
        let body = Json::parse(std::str::from_utf8(clipped.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("x1").unwrap().as_u64(), Some(12));
        // Inverted bounds are an empty box, not a panic.
        let inverted = handle(
            &svc,
            &request("GET", "/region", &[("x0", "5"), ("x1", "2")], ""),
        );
        assert_eq!(inverted.status, 200);
        let body = Json::parse(std::str::from_utf8(inverted.body.as_bytes()).unwrap()).unwrap();
        assert_eq!(body.get("voxels").unwrap().as_u64(), Some(0));
        assert_eq!(body.get("max"), Some(&Json::Null));
    }

    #[test]
    fn shutdown_endpoint_raises_the_flag() {
        let svc = service();
        assert!(!svc.shutdown_requested());
        let resp = handle(&svc, &request("POST", "/shutdown", &[], ""));
        assert_eq!(resp.status, 200);
        assert!(svc.shutdown_requested());
    }
}
