//! Minimal in-tree HTTP/1.1 layer over `std::net`.
//!
//! crates.io is unreachable in this build environment, so the serve path
//! brings its own wire protocol: a strict request parser (request line,
//! headers, `Content-Length` body), a response writer, and a
//! [`HttpServer`] that accepts connections on a dedicated thread and
//! dispatches them to a fixed worker pool. Connections are keep-alive by
//! default (HTTP/1.1 semantics) with a read timeout so an idle client
//! cannot pin a worker, and shutdown is graceful: stop accepting, let
//! every worker finish its in-flight connection, join all threads.
//!
//! The layer covers exactly what a JSON query service needs — it is not
//! a general web server (no chunked encoding, no TLS, no multipart).

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// Reject request heads (request line + headers) larger than this.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Reject request bodies larger than this.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Per-connection read timeout: an idle keep-alive client is dropped
/// after this long, freeing its worker.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Path component, without the query string (e.g. `/density`).
    pub path: String,
    /// Query parameters, percent-decoded, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }

    fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Response body storage: owned bytes for one-off payloads, shared for
/// cached ones — a cache hit goes to the socket without copying the
/// (potentially multi-kilobyte) encoded payload.
#[derive(Debug, Clone)]
pub enum Body {
    /// Bytes owned by this response.
    Owned(Vec<u8>),
    /// Bytes shared with the query cache (refcounted, never copied).
    Shared(Arc<[u8]>),
}

impl Body {
    /// The bytes to send.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(s) => s,
        }
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Body,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, value: &Json) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: Body::Owned(value.encode().into_bytes()),
        }
    }

    /// A JSON response from an already-encoded body (the cached-read
    /// path: the cached bytes are shared, not copied, per request).
    pub fn json_body(status: u16, body: Arc<[u8]>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: Body::Shared(body),
        }
    }

    /// A JSON error payload `{"error": msg}` with the given status.
    pub fn error(status: u16, msg: impl Into<String>) -> Self {
        Self::json(status, &Json::obj([("error", Json::from(msg.into()))]))
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Owned(body.into().into_bytes()),
        }
    }

    /// A Prometheus text-exposition response (the `/metrics` payload).
    pub fn prometheus(body: String) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: Body::Owned(body.into_bytes()),
        }
    }

    /// A response from text that is already serialized JSON (the
    /// `/trace` payload, whose encoder lives in `stkde-obs`).
    pub fn raw_json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: Body::Owned(body.into_bytes()),
        }
    }

    fn write_to(&self, w: &mut impl Write, close: bool) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.as_bytes().len(),
            if close { "close" } else { "keep-alive" },
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Why reading a request failed.
#[derive(Debug)]
enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// Transport failure (including read timeout); the connection is
    /// dropped, so the error detail has nowhere to go.
    Io,
    /// The bytes did not form a valid request; the message is sent back
    /// in a 400 before closing.
    Bad(String),
    /// Head or body exceeded the configured limits.
    TooLarge,
}

/// Percent-decode a query component (`%XX` and `+` for space).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a raw query string into decoded key/value pairs.
fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    // Cap the head read *before* buffering: `read_line` on the raw reader
    // would happily grow its String on a newline-free flood, so every head
    // byte goes through a `take` that cuts the peer off at the limit.
    let mut head = (&mut *reader).take(MAX_HEAD_BYTES as u64 + 1);
    let mut line = String::new();
    match head.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Closed),
        Ok(_) => {}
        Err(_) => return Err(ReadError::Io),
    }
    if head.limit() == 0 {
        return Err(ReadError::TooLarge);
    }
    let mut parts = line.trim_end().splitn(3, ' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => return Err(ReadError::Bad(format!("malformed request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Bad(format!("unsupported version {version:?}")));
    }
    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: parse_query(raw_query),
        headers: Vec::new(),
        body: Vec::new(),
    };

    loop {
        let mut hline = String::new();
        match head.read_line(&mut hline) {
            Ok(0) => return Err(ReadError::Bad("connection closed mid-headers".into())),
            Ok(_) => {}
            Err(_) => return Err(ReadError::Io),
        }
        if head.limit() == 0 {
            return Err(ReadError::TooLarge);
        }
        let trimmed = hline.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ReadError::Bad(format!("malformed header {trimmed:?}")));
        };
        req.headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| ReadError::Bad(format!("bad content-length {len:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(ReadError::TooLarge);
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|_| ReadError::Io)?;
        req.body = body;
    }
    Ok(req)
}

/// The request handler a server dispatches to. Handlers run on worker
/// threads and must be safe to call concurrently.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server: an acceptor thread plus a fixed pool of
/// connection workers.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl HttpServer {
    /// Bind `addr` (port 0 picks an ephemeral port) and start serving
    /// `handler` on `threads` workers.
    pub fn serve(addr: impl ToSocketAddrs, threads: usize, handler: Handler) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let threads = threads.max(1);

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("http-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &handler, &shutdown))
                    .expect("spawn http worker")
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("http-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        match conn {
                            // A send can only fail after shutdown started.
                            Ok(stream) => {
                                if tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(_) => continue,
                        }
                    }
                    // Dropping `tx` here lets every worker drain and exit.
                })
                .expect("spawn http acceptor")
        };

        Ok(Self {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, finish in-flight connections, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `incoming()` with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        // `shutdown()` consumed the handles; if the server is dropped
        // without it, still stop the acceptor so threads do not leak
        // accept work, but do not block on joins in a destructor.
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, handler: &Handler, shutdown: &AtomicBool) {
    loop {
        // Holding the lock only for the recv keeps the pool work-stealing:
        // whichever worker is free picks up the next connection.
        let stream = match rx.lock().recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone: shutdown
        };
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let mut reader = BufReader::new(stream);
        loop {
            match read_request(&mut reader) {
                Ok(req) => {
                    let close = req.wants_close() || shutdown.load(Ordering::SeqCst);
                    // A panicking handler must cost one 500, not a worker:
                    // an unisolated panic would shrink the fixed pool until
                    // the daemon silently stops serving.
                    let resp =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&req)))
                            .unwrap_or_else(|_| {
                                Response::error(500, "handler panicked; see server stderr")
                            });
                    if resp.write_to(&mut writer, close).is_err() || close {
                        break;
                    }
                }
                Err(ReadError::Closed | ReadError::Io) => break,
                Err(ReadError::Bad(msg)) => {
                    let _ = Response::error(400, msg).write_to(&mut writer, true);
                    break;
                }
                Err(ReadError::TooLarge) => {
                    let _ = Response::error(413, "request too large").write_to(&mut writer, true);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn echo_server(threads: usize) -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::json(
                200,
                &Json::obj([
                    ("method", Json::from(req.method.as_str())),
                    ("path", Json::from(req.path.as_str())),
                    (
                        "q",
                        Json::obj(
                            req.query
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::from(v.as_str()))),
                        ),
                    ),
                    (
                        "body",
                        Json::from(String::from_utf8_lossy(&req.body).into_owned()),
                    ),
                ]),
            )
        });
        HttpServer::serve("127.0.0.1:0", threads, handler).expect("bind")
    }

    #[test]
    fn serves_get_with_query_decoding() {
        let server = echo_server(2);
        let client = Client::new(server.addr());
        let (status, body) = client.get("/where?a=1&msg=hello%20world&plus=a+b").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("path").unwrap().as_str(), Some("/where"));
        let q = body.get("q").unwrap();
        assert_eq!(q.get("a").unwrap().as_str(), Some("1"));
        assert_eq!(q.get("msg").unwrap().as_str(), Some("hello world"));
        assert_eq!(q.get("plus").unwrap().as_str(), Some("a b"));
        server.shutdown();
    }

    #[test]
    fn serves_post_with_body() {
        let server = echo_server(2);
        let client = Client::new(server.addr());
        let payload = Json::obj([("x", Json::from(1.5))]);
        let (status, body) = client.post_json("/events", &payload).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("method").unwrap().as_str(), Some("POST"));
        assert_eq!(body.get("body").unwrap().as_str(), Some(r#"{"x":1.5}"#));
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let server = echo_server(1);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 400"), "got {buf:?}");
        server.shutdown();
    }

    #[test]
    fn newline_free_flood_is_cut_off_at_the_head_limit() {
        let server = echo_server(1);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Well past MAX_HEAD_BYTES with no newline: the server must answer
        // 413 after at most limit+1 bytes instead of buffering the flood.
        let flood = vec![b'A'; MAX_HEAD_BYTES + 1024];
        let _ = s.write_all(&flood); // may fail once the server stops reading
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut buf = String::new();
        let _ = s.read_to_string(&mut buf);
        assert!(
            buf.starts_with("HTTP/1.1 413"),
            "got {:?}",
            &buf[..buf.len().min(64)]
        );
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let server = echo_server(1);
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for i in 0..3 {
            s.write_all(format!("GET /r{i} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            // Read the head.
            let mut len = None;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = Some(v.trim().parse::<usize>().unwrap());
                }
            }
            let mut body = vec![0u8; len.expect("content-length present")];
            reader.read_exact(&mut body).unwrap();
            assert!(String::from_utf8(body).unwrap().contains(&format!("/r{i}")));
        }
        server.shutdown();
    }

    #[test]
    fn handler_panic_costs_a_500_not_a_worker() {
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path == "/panic" {
                panic!("boom");
            }
            Response::json(200, &Json::Bool(true))
        });
        // One worker: if the panic killed it, the follow-up request would
        // hang or fail instead of answering 200.
        let server = HttpServer::serve("127.0.0.1:0", 1, handler).expect("bind");
        let client = Client::new(server.addr());
        let (status, _) = client.get("/panic").unwrap();
        assert_eq!(status, 500);
        let (status, _) = client.get("/fine").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_with_concurrent_clients() {
        let server = echo_server(4);
        let addr = server.addr();
        let clients: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = Client::new(addr);
                    client.get(&format!("/c{i}")).map(|(status, _)| status)
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap().unwrap(), 200);
        }
        server.shutdown(); // must not hang
    }
}
