//! In-tree HTTP client for the density service.
//!
//! One-shot requests over `std::net::TcpStream` (`Connection: close`,
//! read-to-EOF): enough for the example programs, the integration tests,
//! and the CI health probe, without pulling in an HTTP dependency.

use crate::json::{Json, JsonError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a probe waits for connect/read/write before giving up.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The peer's bytes were not a valid HTTP response.
    BadResponse(String),
    /// The response body was not valid JSON.
    Json(JsonError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
            ClientError::Json(e) => write!(f, "bad response body: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Json(e)
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// Client for the given address.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// Resolve `host:port` and build a client for it.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::BadResponse("address resolved to nothing".into()))?;
        Ok(Self { addr })
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `GET path` (may include a query string). Returns the status code
    /// and the parsed JSON body (`Null` for an empty body).
    pub fn get(&self, path_and_query: &str) -> Result<(u16, Json), ClientError> {
        self.request("GET", path_and_query, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&self, path: &str, body: &Json) -> Result<(u16, Json), ClientError> {
        self.request("POST", path, Some(body.encode()))
    }

    /// `GET path`, returning the status code and the body as raw text —
    /// for non-JSON endpoints (`/metrics` is Prometheus text).
    pub fn get_text(&self, path_and_query: &str) -> Result<(u16, String), ClientError> {
        let raw = self.request_raw("GET", path_and_query, None)?;
        let (status, body) = split_response(&raw)?;
        let text = std::str::from_utf8(body)
            .map_err(|_| ClientError::BadResponse("non-UTF-8 body".into()))?;
        Ok((status, text.to_string()))
    }

    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
    ) -> Result<(u16, Json), ClientError> {
        let raw = self.request_raw(method, path, body)?;
        parse_response(&raw)
    }

    fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<String>,
    ) -> Result<Vec<u8>, ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
            self.addr
        );
        if let Some(body) = &body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        if let Some(body) = &body {
            stream.write_all(body.as_bytes())?;
        }

        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        Ok(raw)
    }
}

/// Split a raw HTTP response into status code and body bytes.
fn split_response(raw: &[u8]) -> Result<(u16, &[u8]), ClientError> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::BadResponse("no header terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::BadResponse("non-UTF-8 response head".into()))?;
    let status_line = head.lines().next().unwrap_or_default();
    let mut parts = status_line.splitn(3, ' ');
    let status: u16 = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse()
            .map_err(|_| ClientError::BadResponse(format!("bad status line {status_line:?}")))?,
        _ => {
            return Err(ClientError::BadResponse(format!(
                "bad status line {status_line:?}"
            )))
        }
    };
    Ok((status, &raw[head_end + 4..]))
}

fn parse_response(raw: &[u8]) -> Result<(u16, Json), ClientError> {
    let (status, body) = split_response(raw)?;
    let json = if body.is_empty() {
        Json::Null
    } else {
        let text = std::str::from_utf8(body)
            .map_err(|_| ClientError::BadResponse("non-UTF-8 body".into()))?;
        Json::parse(text)?
    };
    Ok((status, json))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_with_json_body() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\r\n{\"ok\":true}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_empty_body_as_null() {
        let (status, body) = parse_response(b"HTTP/1.1 202 Accepted\r\n\r\n").unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"BOGUS 200\r\n\r\n").is_err());
    }
}
