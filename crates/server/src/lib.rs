//! # stkde-server — a long-running density service over the incremental STKDE cube
//!
//! The paper's point is making STKDE fast enough for *interactive*
//! exploration; this crate adds the missing serve path: a daemon that
//! owns a [`ShardedWindowStkde`](stkde_core::ShardedWindowStkde) — the
//! cube split into temporal-slab shards — ingests events through a
//! write-coalescing writer thread (`Θ(Hs²·Ht)` per event, N cylinders
//! per lock acquisition, fanned across the shards in parallel), and
//! serves reads from published copy-on-write
//! [`CubeSnapshot`](stkde_core::CubeSnapshot)s: a read clones one `Arc`
//! and never takes the writer's lock, so long region scans cannot stall
//! ingest and can never observe a torn cube. This is the
//! ingest-then-query split that amortizes estimation cost across many
//! queries, sharded so it keeps scaling when readers and writers arrive
//! together.
//!
//! Everything is in-tree and zero-dependency (the build environment has
//! no crates.io): [`json`] is the wire format, [`http`] the HTTP/1.1
//! server, [`client`] the matching client, [`cache`] the
//! epoch-vector-keyed LRU, [`service`] the shared cube, and [`routes`]
//! the endpoint table.
//!
//! ## Endpoints
//!
//! | endpoint | verb | answers |
//! |---|---|---|
//! | `/healthz`  | GET  | liveness |
//! | `/stats`    | GET  | ingest/serve/cache counters |
//! | `/metrics`  | GET  | Prometheus text exposition (see OBSERVABILITY.md) |
//! | `/trace`    | GET  | recent spans from the trace ring |
//! | `/density`  | GET  | one voxel (`x`, `y`, `t`) |
//! | `/region`   | GET  | aggregate over a voxel box |
//! | `/slice`    | GET  | one time plane (`t`) |
//! | `/events`   | POST | ingest a single event or a batch |
//! | `/reshard`  | POST | repartition into `shards` temporal slabs |
//! | `/shutdown` | POST | graceful stop |
//!
//! ## In-process quick start
//!
//! ```
//! use stkde_server::{json::Json, Client, ServiceConfig, StkdeServer};
//! use stkde_grid::{Bandwidth, Domain, GridDims};
//!
//! let config = ServiceConfig::new(
//!     Domain::from_dims(GridDims::new(16, 16, 8)),
//!     Bandwidth::new(3.0, 2.0),
//!     4.0,
//! );
//! let server = StkdeServer::start("127.0.0.1:0", 2, config).unwrap();
//! let client = Client::new(server.addr());
//!
//! let (status, _) = client
//!     .post_json("/events", &Json::parse(r#"{"x":8.0,"y":8.0,"t":1.0}"#).unwrap())
//!     .unwrap();
//! assert_eq!(status, 202);
//! server.service().wait_drained();
//!
//! let (status, body) = client.get("/density?x=8&y=8&t=1").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.get("density").unwrap().as_f64().unwrap() > 0.0);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod config;
pub mod http;
pub mod json;
pub(crate) mod metrics;
pub mod routes;
pub mod service;

#[cfg(test)]
pub(crate) mod test_support {
    //! The obs registry is process-global, so counters accumulate across
    //! every service a test binary starts. Tests that assert on counter
    //! deltas hold this lock so a concurrently running test cannot skew
    //! the delta between their before/after reads.
    use std::sync::{Mutex, MutexGuard};

    static SERIAL: Mutex<()> = Mutex::new(());

    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|e| e.into_inner())
    }
}

pub use client::{Client, ClientError};
pub use config::{ServerConfig, USAGE};
pub use http::{HttpServer, Request, Response};
pub use service::{DensityService, ServeKernel, ServiceConfig, ShutdownError};

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// A running daemon: the HTTP front end plus the density service behind
/// it. Dropping it without [`shutdown`](Self::shutdown) stops accepting
/// connections but does not block on joins; call `shutdown` for the
/// orderly path (drain ingest, finish in-flight requests, join all
/// threads).
#[derive(Debug)]
pub struct StkdeServer {
    service: Arc<DensityService>,
    http: HttpServer,
}

impl StkdeServer {
    /// Start the service and serve it on `addr` (port 0 picks an
    /// ephemeral port) with `threads` HTTP workers.
    pub fn start(
        addr: impl ToSocketAddrs,
        threads: usize,
        config: ServiceConfig,
    ) -> io::Result<Self> {
        let service = DensityService::start(config);
        let handler_service = Arc::clone(&service);
        let http = HttpServer::serve(
            addr,
            threads,
            Arc::new(move |req: &Request| {
                let start = std::time::Instant::now();
                let resp = routes::handle(&handler_service, req);
                metrics::record_http(
                    &req.method,
                    &req.path,
                    resp.status,
                    start.elapsed().as_secs_f64(),
                );
                resp
            }),
        )?;
        Ok(Self { service, http })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// The service behind the HTTP front end (for in-process callers).
    pub fn service(&self) -> &Arc<DensityService> {
        &self.service
    }

    /// Graceful shutdown: stop the HTTP layer (finishing in-flight
    /// connections), then drain and join the ingest writer.
    pub fn shutdown(self) {
        self.http.shutdown();
        self.service.shutdown();
    }
}
