//! Summary statistics over density grids (used for validation and by the
//! example applications to locate hotspots).

use crate::grid3::Grid3;
use crate::range::VoxelRange;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Summary statistics of a grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridStats {
    /// Sum of all voxel values.
    pub sum: f64,
    /// Maximum voxel value.
    pub max: f64,
    /// Minimum voxel value.
    pub min: f64,
    /// Number of non-zero voxels.
    pub nonzero: usize,
    /// Total number of voxels.
    pub total: usize,
}

impl GridStats {
    /// Fraction of voxels that are non-zero (the *density sparsity* that
    /// drives the init-vs-compute balance of Figure 7).
    pub fn occupancy(&self) -> f64 {
        self.nonzero as f64 / self.total as f64
    }

    /// Mean voxel value.
    pub fn mean(&self) -> f64 {
        self.sum / self.total as f64
    }
}

/// Compute summary statistics in parallel.
pub fn stats<S: Scalar>(grid: &Grid3<S>) -> GridStats {
    let id = (0.0f64, f64::NEG_INFINITY, f64::INFINITY, 0usize);
    let (sum, max, min, nonzero) = grid
        .as_slice()
        .par_chunks(1 << 16)
        .map(|chunk| {
            let mut acc = id;
            for &v in chunk {
                let v = v.to_f64();
                acc.0 += v;
                acc.1 = acc.1.max(v);
                acc.2 = acc.2.min(v);
                acc.3 += (v != 0.0) as usize;
            }
            acc
        })
        .reduce(
            || id,
            |a, b| (a.0 + b.0, a.1.max(b.1), a.2.min(b.2), a.3 + b.3),
        );
    GridStats {
        sum,
        max,
        min,
        nonzero,
        total: grid.as_slice().len(),
    }
}

/// Compute summary statistics over a voxel sub-box only (clipped to the
/// grid). This is the aggregate behind region queries: a density server
/// answers "how much mass / what peak inside this space-time box" without
/// materializing a copy of the region.
///
/// An empty (or fully clipped-away) range yields the statistics of zero
/// voxels: `sum = 0`, `max = -∞`, `min = +∞`, `total = 0`.
pub fn range_stats<S: Scalar>(grid: &Grid3<S>, r: VoxelRange) -> GridStats {
    let r = r.clipped(grid.dims());
    let mut acc = GridStats {
        sum: 0.0,
        max: f64::NEG_INFINITY,
        min: f64::INFINITY,
        nonzero: 0,
        total: r.volume(),
    };
    // An inverted axis (x0 > x1) survives clipping; without this guard the
    // row slicing below would panic on `x0..x1`.
    if r.is_empty() {
        acc.total = 0;
        return acc;
    }
    range_stats_into(grid, r, &mut acc);
    acc
}

/// Fold the voxels of `r` (which must lie inside `grid`, non-empty) into
/// an existing accumulator, continuing its running `sum`/`max`/`min`/
/// `nonzero` — `total` is left to the caller.
///
/// This is the continuation form behind [`range_stats`]: a reader holding
/// a T-partitioned cube (e.g. per-shard copy-on-write planes) can fold
/// each slab's sub-box in ascending T order through one accumulator and
/// reproduce the *exact* float summation sequence of a single-grid
/// `range_stats` — bit-identical aggregates across shard layouts.
pub fn range_stats_into<S: Scalar>(grid: &Grid3<S>, r: VoxelRange, acc: &mut GridStats) {
    for t in r.t0..r.t1 {
        for y in r.y0..r.y1 {
            for &v in grid.row(y, t, r.x0, r.x1) {
                let v = v.to_f64();
                acc.sum += v;
                acc.max = acc.max.max(v);
                acc.min = acc.min.min(v);
                acc.nonzero += (v != 0.0) as usize;
            }
        }
    }
}

/// Sum of each time slice — the temporal marginal `Σ_{x,y} f̂(x,y,t)`,
/// useful for "activity over time" readings (cf. the epidemic waves of the
/// paper's Dengue data).
pub fn temporal_marginal<S: Scalar>(grid: &Grid3<S>) -> Vec<f64> {
    (0..grid.dims().gt)
        .map(|t| grid.time_slice(t).iter().map(|&v| v.to_f64()).sum())
        .collect()
}

/// Sum over time of each spatial cell — the spatial marginal
/// `Σ_t f̂(x,y,t)` as a row-major `Gy × Gx` image (a classic 2-D KDE
/// heatmap collapsed from the space-time cube).
pub fn spatial_marginal<S: Scalar>(grid: &Grid3<S>) -> Vec<f64> {
    let dims = grid.dims();
    let n = dims.gx * dims.gy;
    let mut acc = vec![0.0f64; n];
    for t in 0..dims.gt {
        for (a, &v) in acc.iter_mut().zip(grid.time_slice(t)) {
            *a += v.to_f64();
        }
    }
    acc
}

/// The voxel coordinates and value of the `k` largest voxels,
/// sorted descending by value (ties broken by flat index).
pub fn top_k<S: Scalar>(grid: &Grid3<S>, k: usize) -> Vec<((usize, usize, usize), f64)> {
    let mut indexed: Vec<(usize, f64)> = grid
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, &v)| (i, v.to_f64()))
        .collect();
    let k = k.min(indexed.len());
    if k == 0 {
        return Vec::new();
    }
    let pivot = k - 1;
    // total_cmp, not partial_cmp().unwrap(): a NaN voxel (conceivable from
    // corrupted ingest) must not panic the stats path — IEEE total order
    // ranks NaNs deterministically instead.
    indexed.select_nth_unstable_by(pivot, |a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    indexed.truncate(k);
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    indexed
        .into_iter()
        .map(|(i, v)| (grid.dims().coords(i), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::GridDims;

    #[test]
    fn range_stats_counts_box_only() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        g.add(0, 0, 0, 1.0);
        g.add(1, 1, 1, 2.0);
        g.add(3, 3, 3, 10.0);
        let r = VoxelRange {
            x0: 0,
            x1: 2,
            y0: 0,
            y1: 2,
            t0: 0,
            t1: 2,
        };
        let s = range_stats(&g, r);
        assert_eq!(s.sum, 3.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.nonzero, 2);
        assert_eq!(s.total, 8);
        // The full grid agrees with the global statistics.
        let full = range_stats(&g, VoxelRange::full(g.dims()));
        let global = stats(&g);
        assert_eq!(full, global);
    }

    #[test]
    fn range_stats_of_empty_range() {
        let g: Grid3<f32> = Grid3::zeros(GridDims::new(3, 3, 3));
        let s = range_stats(&g, VoxelRange::empty());
        assert_eq!(s.total, 0);
        assert_eq!(s.sum, 0.0);
        assert!(s.max.is_infinite() && s.max < 0.0);
        assert!(s.min.is_infinite() && s.min > 0.0);
    }

    #[test]
    fn range_stats_tolerates_inverted_axes() {
        // x0 > x1 survives clipping; must report an empty box, not panic.
        let g: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        let r = VoxelRange {
            x0: 3,
            x1: 1,
            y0: 0,
            y1: 4,
            t0: 0,
            t1: 4,
        };
        let s = range_stats(&g, r);
        assert_eq!(s.total, 0);
        assert_eq!(s.nonzero, 0);
    }

    #[test]
    fn stats_of_zero_grid() {
        let g: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        let s = stats(&g);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.nonzero, 0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn stats_counts_values() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        g.add(0, 0, 0, 3.0);
        g.add(1, 1, 1, -1.0);
        let s = stats(&g);
        assert_eq!(s.sum, 2.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.nonzero, 2);
        assert_eq!(s.total, 64);
        assert!((s.mean() - 2.0 / 64.0).abs() < 1e-15);
    }

    #[test]
    fn top_k_orders_descending() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(3, 3, 3));
        g.add(0, 0, 0, 1.0);
        g.add(1, 1, 1, 5.0);
        g.add(2, 2, 2, 3.0);
        let top = top_k(&g, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], ((1, 1, 1), 5.0));
        assert_eq!(top[1], ((2, 2, 2), 3.0));
    }

    #[test]
    fn top_k_handles_k_larger_than_grid() {
        let g: Grid3<f32> = Grid3::zeros(GridDims::new(2, 1, 1));
        let top = top_k(&g, 100);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn temporal_marginal_sums_slices() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(2, 2, 3));
        g.add(0, 0, 0, 1.0);
        g.add(1, 1, 0, 2.0);
        g.add(0, 1, 2, 5.0);
        let m = temporal_marginal(&g);
        assert_eq!(m, vec![3.0, 0.0, 5.0]);
    }

    #[test]
    fn spatial_marginal_collapses_time() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(2, 2, 3));
        g.add(1, 0, 0, 1.0);
        g.add(1, 0, 2, 4.0);
        let m = spatial_marginal(&g);
        assert_eq!(m, vec![0.0, 5.0, 0.0, 0.0]); // row-major (y, x)
    }

    #[test]
    fn marginals_conserve_mass() {
        let mut g: Grid3<f32> = Grid3::zeros(GridDims::new(3, 4, 5));
        for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 7) as f32;
        }
        let total = stats(&g).sum;
        let mt: f64 = temporal_marginal(&g).iter().sum();
        let ms: f64 = spatial_marginal(&g).iter().sum();
        assert!((mt - total).abs() < 1e-6);
        assert!((ms - total).abs() < 1e-6);
    }
}
