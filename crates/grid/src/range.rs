//! Axis-aligned voxel boxes (half-open ranges on each axis).

use crate::dims::GridDims;
use serde::{Deserialize, Serialize};

/// An axis-aligned box of voxels, half-open on each axis:
/// `x ∈ [x0, x1), y ∈ [y0, y1), t ∈ [t0, t1)`.
///
/// Used for cylinder bounding boxes, subdomain extents, and clipped write
/// regions. An empty range has `x0 >= x1` (or similarly on another axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoxelRange {
    /// Inclusive start along x.
    pub x0: usize,
    /// Exclusive end along x.
    pub x1: usize,
    /// Inclusive start along y.
    pub y0: usize,
    /// Exclusive end along y.
    pub y1: usize,
    /// Inclusive start along t.
    pub t0: usize,
    /// Exclusive end along t.
    pub t1: usize,
}

impl VoxelRange {
    /// The whole grid as a range.
    pub fn full(dims: GridDims) -> Self {
        Self {
            x0: 0,
            x1: dims.gx,
            y0: 0,
            y1: dims.gy,
            t0: 0,
            t1: dims.gt,
        }
    }

    /// An empty range.
    pub fn empty() -> Self {
        Self {
            x0: 0,
            x1: 0,
            y0: 0,
            y1: 0,
            t0: 0,
            t1: 0,
        }
    }

    /// The (unclipped, saturating at 0) bounding box of a cylinder centered
    /// on voxel `(x, y, t)` with voxel bandwidths `hs`, `ht`:
    /// `x ∈ [x-hs, x+hs]` inclusive, i.e. half-open `[x-hs, x+hs+1)`.
    pub fn centered(x: usize, y: usize, t: usize, hs: usize, ht: usize) -> Self {
        Self {
            x0: x.saturating_sub(hs),
            x1: x + hs + 1,
            y0: y.saturating_sub(hs),
            y1: y + hs + 1,
            t0: t.saturating_sub(ht),
            t1: t + ht + 1,
        }
    }

    /// Clip this range to the grid bounds.
    pub fn clipped(self, dims: GridDims) -> Self {
        Self {
            x0: self.x0.min(dims.gx),
            x1: self.x1.min(dims.gx),
            y0: self.y0.min(dims.gy),
            y1: self.y1.min(dims.gy),
            t0: self.t0.min(dims.gt),
            t1: self.t1.min(dims.gt),
        }
    }

    /// Intersection with another range (possibly empty).
    pub fn intersect(self, other: Self) -> Self {
        Self {
            x0: self.x0.max(other.x0),
            x1: self.x1.min(other.x1),
            y0: self.y0.max(other.y0),
            y1: self.y1.min(other.y1),
            t0: self.t0.max(other.t0),
            t1: self.t1.min(other.t1),
        }
    }

    /// `true` if the two ranges share at least one voxel.
    pub fn intersects(self, other: Self) -> bool {
        !self.intersect(other).is_empty()
    }

    /// `true` if no voxels are inside.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x0 >= self.x1 || self.y0 >= self.y1 || self.t0 >= self.t1
    }

    /// Number of voxels inside.
    #[inline]
    pub fn volume(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0) * (self.y1 - self.y0) * (self.t1 - self.t0)
        }
    }

    /// `true` if the voxel is inside the range.
    #[inline]
    pub fn contains(&self, x: usize, y: usize, t: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1 && t >= self.t0 && t < self.t1
    }

    /// `true` if `other` is entirely inside `self`.
    pub fn contains_range(&self, other: &Self) -> bool {
        other.is_empty()
            || (self.x0 <= other.x0
                && self.x1 >= other.x1
                && self.y0 <= other.y0
                && self.y1 >= other.y1
                && self.t0 <= other.t0
                && self.t1 >= other.t1)
    }

    /// Grow the range by `hs` voxels on x/y and `ht` on t (saturating at 0,
    /// not clipped above). Used to compute the *influence halo* of a
    /// subdomain: the set of voxels its points may write to.
    pub fn expanded(self, hs: usize, ht: usize) -> Self {
        Self {
            x0: self.x0.saturating_sub(hs),
            x1: self.x1 + hs,
            y0: self.y0.saturating_sub(hs),
            y1: self.y1 + hs,
            t0: self.t0.saturating_sub(ht),
            t1: self.t1 + ht,
        }
    }

    /// Iterate over all voxels in the range in layout order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let r = *self;
        (r.t0..r.t1)
            .flat_map(move |t| (r.y0..r.y1).flat_map(move |y| (r.x0..r.x1).map(move |x| (x, y, t))))
    }

    /// Width along x, `x1 - x0` (0 if empty on that axis).
    #[inline]
    pub fn width_x(&self) -> usize {
        self.x1.saturating_sub(self.x0)
    }

    /// Width along y.
    #[inline]
    pub fn width_y(&self) -> usize {
        self.y1.saturating_sub(self.y0)
    }

    /// Width along t.
    #[inline]
    pub fn width_t(&self) -> usize {
        self.t1.saturating_sub(self.t0)
    }
}

impl std::fmt::Display for VoxelRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}..{})x[{}..{})x[{}..{})",
            self.x0, self.x1, self.y0, self.y1, self.t0, self.t1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn centered_saturates_at_zero() {
        let r = VoxelRange::centered(1, 0, 2, 3, 3);
        assert_eq!((r.x0, r.x1), (0, 5));
        assert_eq!((r.y0, r.y1), (0, 4));
        assert_eq!((r.t0, r.t1), (0, 6));
    }

    #[test]
    fn clip_limits_to_dims() {
        let dims = GridDims::new(10, 10, 10);
        let r = VoxelRange::centered(9, 9, 9, 4, 4).clipped(dims);
        assert_eq!((r.x0, r.x1), (5, 10));
        assert_eq!(r.volume(), 5 * 5 * 5);
    }

    #[test]
    fn intersect_and_empty() {
        let a = VoxelRange {
            x0: 0,
            x1: 5,
            y0: 0,
            y1: 5,
            t0: 0,
            t1: 5,
        };
        let b = VoxelRange {
            x0: 5,
            x1: 9,
            y0: 0,
            y1: 5,
            t0: 0,
            t1: 5,
        };
        assert!(a.intersect(b).is_empty());
        assert!(!a.intersects(b));
        let c = VoxelRange {
            x0: 4,
            x1: 9,
            y0: 4,
            y1: 9,
            t0: 4,
            t1: 9,
        };
        let i = a.intersect(c);
        assert_eq!(i.volume(), 1);
        assert!(i.contains(4, 4, 4));
    }

    #[test]
    fn expanded_is_halo() {
        let r = VoxelRange {
            x0: 4,
            x1: 8,
            y0: 4,
            y1: 8,
            t0: 2,
            t1: 4,
        };
        let h = r.expanded(2, 1);
        assert_eq!((h.x0, h.x1), (2, 10));
        assert_eq!((h.t0, h.t1), (1, 5));
        assert!(h.contains_range(&r));
    }

    #[test]
    fn iter_count_matches_volume() {
        let r = VoxelRange {
            x0: 1,
            x1: 4,
            y0: 0,
            y1: 2,
            t0: 3,
            t1: 5,
        };
        assert_eq!(r.iter().count(), r.volume());
        assert_eq!(r.volume(), 3 * 2 * 2);
        for (x, y, t) in r.iter() {
            assert!(r.contains(x, y, t));
        }
    }

    #[test]
    fn full_covers_grid() {
        let dims = GridDims::new(3, 4, 5);
        let r = VoxelRange::full(dims);
        assert_eq!(r.volume(), dims.volume());
    }

    #[test]
    fn contains_range_cases() {
        let outer = VoxelRange::full(GridDims::new(10, 10, 10));
        let inner = VoxelRange {
            x0: 2,
            x1: 5,
            y0: 2,
            y1: 5,
            t0: 2,
            t1: 5,
        };
        assert!(outer.contains_range(&inner));
        assert!(!inner.contains_range(&outer));
        assert!(inner.contains_range(&VoxelRange::empty()));
    }

    proptest! {
        #[test]
        fn intersect_is_commutative_and_bounded(
            ax0 in 0usize..20, aw in 0usize..20, ay0 in 0usize..20, ah in 0usize..20,
            at0 in 0usize..20, ad in 0usize..20,
            bx0 in 0usize..20, bw in 0usize..20, by0 in 0usize..20, bh in 0usize..20,
            bt0 in 0usize..20, bd in 0usize..20
        ) {
            let a = VoxelRange { x0: ax0, x1: ax0 + aw, y0: ay0, y1: ay0 + ah, t0: at0, t1: at0 + ad };
            let b = VoxelRange { x0: bx0, x1: bx0 + bw, y0: by0, y1: by0 + bh, t0: bt0, t1: bt0 + bd };
            let ab = a.intersect(b);
            let ba = b.intersect(a);
            prop_assert_eq!(ab.volume(), ba.volume());
            prop_assert!(ab.volume() <= a.volume().min(b.volume()));
            // Every voxel of the intersection is in both.
            for (x, y, t) in ab.iter().take(200) {
                prop_assert!(a.contains(x, y, t) && b.contains(x, y, t));
            }
        }

        #[test]
        fn clipped_centered_volume_le_box(
            x in 0usize..30, y in 0usize..30, t in 0usize..30,
            hs in 1usize..6, ht in 1usize..6
        ) {
            let dims = GridDims::new(30, 30, 30);
            let r = VoxelRange::centered(x, y, t, hs, ht).clipped(dims);
            prop_assert!(r.volume() <= (2*hs+1)*(2*hs+1)*(2*ht+1));
            prop_assert!(r.contains(x, y, t));
        }
    }
}
