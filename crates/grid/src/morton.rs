//! 3-D Morton (Z-order) encoding for the sparse brick hierarchy.
//!
//! A Morton code interleaves the bits of three coordinates —
//! `x` lands on bits `3i`, `y` on `3i + 1`, `t` on `3i + 2` — so that
//! coordinates close in 3-D space map to table indices close in memory.
//! [`super::brick`] uses the 3-bit-per-axis special case to lay out the
//! 8×8×8 bricks of a chunk: sibling bricks share cache lines, and a
//! cylinder walking `+x`/`+y` touches table slots in a Z-curve instead of
//! striding `nbx·nby` entries apart the way a row-major block table does.
//!
//! The general encoder supports 21 bits per axis (the full 63-bit Morton
//! range of a `u64`) via the classic magic-mask bit spreading; the
//! brick-local fast path ([`interleave3_3bit`]) spreads its 3-bit
//! coordinates with a handful of shift/mask ALU ops, keeping the voxel
//! read path free of table loads. Both are verified against a naive
//! bit-by-bit reference in the tests below.

/// Bits per axis supported by the general encoder.
pub const MORTON_BITS: u32 = 21;

/// Mask of the low [`MORTON_BITS`] bits of a coordinate.
pub const COORD_MASK: u32 = (1 << MORTON_BITS) - 1;

/// Spread the low 21 bits of `x` so bit `i` moves to bit `3i`.
#[inline]
pub const fn split3(x: u32) -> u64 {
    let mut v = (x & COORD_MASK) as u64;
    v = (v | (v << 32)) & 0x001f_0000_0000_ffff;
    v = (v | (v << 16)) & 0x001f_0000_ff00_00ff;
    v = (v | (v << 8)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v << 4)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v << 2)) & 0x1249_2492_4924_9249;
    v
}

/// Inverse of [`split3`]: gather bits `3i` of `m` back into bit `i`.
#[inline]
pub const fn compact3(m: u64) -> u32 {
    let mut v = m & 0x1249_2492_4924_9249;
    v = (v | (v >> 2)) & 0x10c3_0c30_c30c_30c3;
    v = (v | (v >> 4)) & 0x100f_00f0_0f00_f00f;
    v = (v | (v >> 8)) & 0x001f_0000_ff00_00ff;
    v = (v | (v >> 16)) & 0x001f_0000_0000_ffff;
    v = (v | (v >> 32)) & 0x001f_ffff;
    v as u32
}

/// Interleave three 21-bit coordinates into a 63-bit Morton code.
///
/// Bit `i` of `x` maps to bit `3i`, of `y` to `3i + 1`, of `t` to `3i + 2`.
#[inline]
pub const fn encode3(x: u32, y: u32, t: u32) -> u64 {
    split3(x) | (split3(y) << 1) | (split3(t) << 2)
}

/// Inverse of [`encode3`].
#[inline]
pub const fn decode3(m: u64) -> (u32, u32, u32) {
    (compact3(m), compact3(m >> 1), compact3(m >> 2))
}

/// Spread the low 3 bits of `v` so bit `i` moves to bit `3i` — the
/// 3-bit special case of [`split3`], done in five ALU ops so the brick
/// addressing hot path stays free of table loads.
#[inline(always)]
const fn spread3_3bit(v: usize) -> usize {
    (v & 1) | ((v & 2) << 2) | ((v & 4) << 4)
}

/// Interleave three 3-bit coordinates (`< 8`) into a 9-bit Morton index —
/// the within-chunk brick addressing hot path.
///
/// Coordinates are masked to their low 3 bits, so callers may pass global
/// brick coordinates directly.
#[inline(always)]
pub const fn interleave3_3bit(x: usize, y: usize, t: usize) -> usize {
    spread3_3bit(x) | (spread3_3bit(y) << 1) | (spread3_3bit(t) << 2)
}

/// Inverse of [`interleave3_3bit`] for indices `< 512`.
#[inline]
pub const fn deinterleave3_3bit(m: usize) -> (usize, usize, usize) {
    let (x, y, t) = decode3(m as u64);
    (x as usize, y as usize, t as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive bit-by-bit reference encoder.
    fn encode3_naive(x: u32, y: u32, t: u32) -> u64 {
        let mut m = 0u64;
        for i in 0..MORTON_BITS {
            m |= ((x as u64 >> i) & 1) << (3 * i);
            m |= ((y as u64 >> i) & 1) << (3 * i + 1);
            m |= ((t as u64 >> i) & 1) << (3 * i + 2);
        }
        m
    }

    #[test]
    fn matches_naive_reference_on_edge_and_pseudorandom_inputs() {
        let edge = [
            0u32,
            1,
            2,
            7,
            8,
            63,
            64,
            511,
            512,
            COORD_MASK,
            COORD_MASK - 1,
            0x15555,
            0x0aaaa,
        ];
        for &x in &edge {
            for &y in &edge {
                for &t in &edge {
                    assert_eq!(encode3(x, y, t), encode3_naive(x, y, t), "({x},{y},{t})");
                }
            }
        }
        // Deterministic LCG sweep for broader coverage.
        let mut s = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..10_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (s >> 11) as u32 & COORD_MASK;
            let y = (s >> 32) as u32 & COORD_MASK;
            let t = (s >> 43) as u32 & COORD_MASK;
            assert_eq!(encode3(x, y, t), encode3_naive(x, y, t));
        }
    }

    #[test]
    fn decode_roundtrips_encode() {
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..10_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (s >> 7) as u32 & COORD_MASK;
            let y = (s >> 28) as u32 & COORD_MASK;
            let t = (s >> 43) as u32 & COORD_MASK;
            assert_eq!(decode3(encode3(x, y, t)), (x, y, t));
        }
    }

    #[test]
    fn fast_path_agrees_with_general_encoder_on_all_512_cells() {
        for x in 0..8usize {
            for y in 0..8usize {
                for t in 0..8usize {
                    let fast = interleave3_3bit(x, y, t);
                    assert_eq!(fast as u64, encode3(x as u32, y as u32, t as u32));
                    assert_eq!(deinterleave3_3bit(fast), (x, y, t));
                }
            }
        }
    }

    #[test]
    fn fast_path_masks_global_coordinates() {
        assert_eq!(
            interleave3_3bit(8 + 3, 16 + 5, 24 + 7),
            interleave3_3bit(3, 5, 7)
        );
    }

    #[test]
    fn morton_is_a_bijection_within_a_chunk() {
        let mut seen = [false; 512];
        for x in 0..8 {
            for y in 0..8 {
                for t in 0..8 {
                    let m = interleave3_3bit(x, y, t);
                    assert!(m < 512);
                    assert!(!seen[m], "collision at {m}");
                    seen[m] = true;
                }
            }
        }
    }
}
