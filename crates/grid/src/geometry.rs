//! World-space ↔ voxel-space geometry.
//!
//! Follows the notation of Table 1 in the paper: lowercase quantities
//! (`x`, `y`, `t`, `hs`, `ht`, `gx`, …) are in *world space* (e.g. meters and
//! days); uppercase quantities (`X`, `Y`, `T`, `Hs`, `Ht`, `Gx`, …) are in
//! *voxel space*.

use crate::dims::GridDims;
use crate::range::VoxelRange;
use serde::{Deserialize, Serialize};

/// Axis-aligned world-space bounding box of the modeled region:
/// `gx × gy × gt` in the paper, anchored at `min`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extent {
    /// Minimum corner `(x, y, t)`.
    pub min: [f64; 3],
    /// Maximum corner `(x, y, t)`.
    pub max: [f64; 3],
}

impl Extent {
    /// Create an extent from its two corners.
    ///
    /// # Panics
    /// Panics if any `max` coordinate is not strictly greater than `min`.
    pub fn new(min: [f64; 3], max: [f64; 3]) -> Self {
        for a in 0..3 {
            assert!(
                max[a] > min[a],
                "extent axis {a} is empty: min {} >= max {}",
                min[a],
                max[a]
            );
        }
        Self { min, max }
    }

    /// World-space size of axis `a` (`gx`, `gy`, `gt`).
    #[inline]
    pub fn size(&self, a: usize) -> f64 {
        self.max[a] - self.min[a]
    }

    /// Smallest extent containing all the given `(x, y, t)` positions.
    ///
    /// Degenerate axes are widened by a tiny epsilon so that the extent is
    /// always valid. Returns `None` for an empty input.
    pub fn bounding(points: impl IntoIterator<Item = [f64; 3]>) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let (mut min, mut max) = (first, first);
        for p in iter {
            for a in 0..3 {
                min[a] = min[a].min(p[a]);
                max[a] = max[a].max(p[a]);
            }
        }
        for a in 0..3 {
            if max[a] <= min[a] {
                max[a] = min[a] + 1e-9_f64.max(min[a].abs() * 1e-12);
            }
        }
        Some(Self { min, max })
    }

    /// `true` if the position lies inside the extent (inclusive boundaries).
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|a| p[a] >= self.min[a] && p[a] <= self.max[a])
    }
}

/// Discretization resolution: spatial `sres` (same for x and y, as in the
/// paper) and temporal `tres`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Resolution {
    /// Spatial resolution (world units per voxel along x and y).
    pub sres: f64,
    /// Temporal resolution (world units per voxel along t).
    pub tres: f64,
}

impl Resolution {
    /// Create a resolution. Both values must be positive and finite.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite values.
    pub fn new(sres: f64, tres: f64) -> Self {
        assert!(sres > 0.0 && sres.is_finite(), "sres must be positive");
        assert!(tres > 0.0 && tres.is_finite(), "tres must be positive");
        Self { sres, tres }
    }

    /// Resolution of axis `a` (x and y share `sres`).
    #[inline]
    pub fn axis(&self, a: usize) -> f64 {
        if a == 2 {
            self.tres
        } else {
            self.sres
        }
    }
}

/// Kernel bandwidths in world space: spatial radius `hs`, temporal
/// half-height `ht`. Together they define the cylinder of influence of a
/// point (Figure 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bandwidth {
    /// Spatial bandwidth `hs` (cylinder radius).
    pub hs: f64,
    /// Temporal bandwidth `ht` (cylinder half-height).
    pub ht: f64,
}

impl Bandwidth {
    /// Create a bandwidth pair. Both must be positive and finite.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite values.
    pub fn new(hs: f64, ht: f64) -> Self {
        assert!(hs > 0.0 && hs.is_finite(), "hs must be positive");
        assert!(ht > 0.0 && ht.is_finite(), "ht must be positive");
        Self { hs, ht }
    }

    /// The normalization constant `1 / (n · hs² · ht)` for `n` points.
    #[inline]
    pub fn normalization(&self, n: usize) -> f64 {
        1.0 / (n as f64 * self.hs * self.hs * self.ht)
    }
}

/// Kernel bandwidths in voxel space: `Hs = ⌈hs / sres⌉`, `Ht = ⌈ht / tres⌉`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoxelBandwidth {
    /// Spatial bandwidth in voxels, `Hs`.
    pub hs: usize,
    /// Temporal bandwidth in voxels, `Ht`.
    pub ht: usize,
}

impl VoxelBandwidth {
    /// Create a voxel bandwidth pair (both must be ≥ 1).
    ///
    /// # Panics
    /// Panics if either bandwidth is zero.
    pub fn new(hs: usize, ht: usize) -> Self {
        assert!(hs > 0 && ht > 0, "voxel bandwidths must be >= 1");
        Self { hs, ht }
    }

    /// Number of voxels in the bounding box of one point's cylinder:
    /// `(2Hs+1)² · (2Ht+1)`.
    #[inline]
    pub fn cylinder_box_volume(&self) -> usize {
        let s = 2 * self.hs + 1;
        let t = 2 * self.ht + 1;
        s * s * t
    }
}

/// The discretized computation domain: world extent + resolution + derived
/// voxel dimensions (`Gx = ⌈gx/sres⌉` …), plus the world↔voxel mapping.
///
/// Voxels are sampled at their **centers**: voxel `(X, Y, T)` corresponds to
/// the world position `min + (X + ½)·sres` (and likewise for y, t). With
/// `Hs = ⌈hs/sres⌉`, a point whose containing voxel is `(Xi, Yi, Ti)` can
/// only influence voxel centers within `Xi ± Hs`, `Yi ± Hs`, `Ti ± Ht`
/// (proof: the voxel-center offset of the point is < ½ voxel on each axis),
/// which is the property the point-based algorithms rely on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Domain {
    extent: Extent,
    res: Resolution,
    dims: GridDims,
}

impl Domain {
    /// Build a domain from a world extent and a resolution; voxel dimensions
    /// are `⌈size/res⌉` per axis as in the paper.
    pub fn from_extent(extent: Extent, res: Resolution) -> Self {
        let gx = (extent.size(0) / res.sres).ceil().max(1.0) as usize;
        let gy = (extent.size(1) / res.sres).ceil().max(1.0) as usize;
        let gt = (extent.size(2) / res.tres).ceil().max(1.0) as usize;
        Self {
            extent,
            res,
            dims: GridDims::new(gx, gy, gt),
        }
    }

    /// Build a domain directly from voxel dimensions with unit resolution
    /// anchored at the origin. This is how the Table 2 instance catalog is
    /// expressed (the paper reports instances in voxel units).
    pub fn from_dims(dims: GridDims) -> Self {
        let res = Resolution::new(1.0, 1.0);
        let extent = Extent::new(
            [0.0, 0.0, 0.0],
            [dims.gx as f64, dims.gy as f64, dims.gt as f64],
        );
        Self { extent, res, dims }
    }

    /// The sub-domain covering a voxel range of this domain: same
    /// resolution, origin shifted so that the sub-domain's voxel `(0,0,0)`
    /// is this domain's voxel `(range.x0, range.y0, range.t0)`. Voxel
    /// centers of the sub-domain coincide exactly with the corresponding
    /// parent voxel centers — the property `PB-SYM-PD-REP` relies on when
    /// accumulating into private halo buffers.
    ///
    /// # Panics
    /// Panics if `range` is empty or exceeds this domain.
    pub fn subdomain(&self, range: VoxelRange) -> Domain {
        assert!(!range.is_empty(), "empty subdomain range");
        assert!(
            VoxelRange::full(self.dims).contains_range(&range),
            "range {range} exceeds domain"
        );
        let min = [
            self.extent.min[0] + range.x0 as f64 * self.res.sres,
            self.extent.min[1] + range.y0 as f64 * self.res.sres,
            self.extent.min[2] + range.t0 as f64 * self.res.tres,
        ];
        let max = [
            self.extent.min[0] + range.x1 as f64 * self.res.sres,
            self.extent.min[1] + range.y1 as f64 * self.res.sres,
            self.extent.min[2] + range.t1 as f64 * self.res.tres,
        ];
        Domain {
            extent: Extent::new(min, max),
            res: self.res,
            dims: GridDims::new(range.width_x(), range.width_y(), range.width_t()),
        }
    }

    /// The world-space extent.
    #[inline]
    pub fn extent(&self) -> Extent {
        self.extent
    }

    /// The resolution.
    #[inline]
    pub fn resolution(&self) -> Resolution {
        self.res
    }

    /// The voxel-space dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// World position of the center of voxel `(x, y, t)`.
    #[inline]
    pub fn voxel_center(&self, x: usize, y: usize, t: usize) -> [f64; 3] {
        [
            self.extent.min[0] + (x as f64 + 0.5) * self.res.sres,
            self.extent.min[1] + (y as f64 + 0.5) * self.res.sres,
            self.extent.min[2] + (t as f64 + 0.5) * self.res.tres,
        ]
    }

    /// The *fractional* voxel X-coordinate whose center is the world
    /// position `wx` — the inverse of [`Domain::voxel_center`] along X:
    /// `voxel_center(x, _, _)[0] == wx ⇔ x == frac_voxel_x(wx)`.
    ///
    /// Kernel-support span clipping solves for the voxel index where the
    /// normalized offset crosses the support boundary; exposing the
    /// inverse here keeps the world↔voxel mapping in one place.
    #[inline]
    pub fn frac_voxel_x(&self, wx: f64) -> f64 {
        (wx - self.extent.min[0]) / self.res.sres - 0.5
    }

    /// The voxel containing a world position, clamped into the grid.
    ///
    /// Positions outside the extent map to the nearest boundary voxel; this
    /// matches the reference implementation, which clamps rather than drops
    /// boundary events.
    #[inline]
    pub fn voxel_of(&self, p: [f64; 3]) -> (usize, usize, usize) {
        let f = |v: f64, min: f64, res: f64, n: usize| -> usize {
            let i = ((v - min) / res).floor();
            if i < 0.0 {
                0
            } else {
                (i as usize).min(n - 1)
            }
        };
        (
            f(p[0], self.extent.min[0], self.res.sres, self.dims.gx),
            f(p[1], self.extent.min[1], self.res.sres, self.dims.gy),
            f(p[2], self.extent.min[2], self.res.tres, self.dims.gt),
        )
    }

    /// Convert world bandwidths to voxel bandwidths:
    /// `Hs = ⌈hs/sres⌉`, `Ht = ⌈ht/tres⌉` (Table 1).
    pub fn voxel_bandwidth(&self, bw: Bandwidth) -> VoxelBandwidth {
        VoxelBandwidth::new(
            (bw.hs / self.res.sres).ceil().max(1.0) as usize,
            (bw.ht / self.res.tres).ceil().max(1.0) as usize,
        )
    }

    /// The voxel-space bounding box (clipped to the grid) of the cylinder of
    /// influence of a point located in voxel `(xi, yi, ti)`.
    pub fn cylinder_range(
        &self,
        (xi, yi, ti): (usize, usize, usize),
        vbw: VoxelBandwidth,
    ) -> VoxelRange {
        VoxelRange::centered(xi, yi, ti, vbw.hs, vbw.ht).clipped(self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn domain_100() -> Domain {
        Domain::from_extent(
            Extent::new([0.0, 0.0, 0.0], [100.0, 50.0, 10.0]),
            Resolution::new(1.0, 0.5),
        )
    }

    #[test]
    fn dims_are_ceil_of_size_over_res() {
        let d = domain_100();
        assert_eq!(d.dims(), GridDims::new(100, 50, 20));

        let d2 = Domain::from_extent(
            Extent::new([0.0, 0.0, 0.0], [10.5, 10.4, 3.1]),
            Resolution::new(1.0, 1.0),
        );
        assert_eq!(d2.dims(), GridDims::new(11, 11, 4));
    }

    #[test]
    fn voxel_center_of_first_voxel() {
        let d = domain_100();
        assert_eq!(d.voxel_center(0, 0, 0), [0.5, 0.5, 0.25]);
        assert_eq!(d.voxel_center(99, 49, 19), [99.5, 49.5, 9.75]);
    }

    #[test]
    fn voxel_of_clamps_out_of_range() {
        let d = domain_100();
        assert_eq!(d.voxel_of([-5.0, -5.0, -5.0]), (0, 0, 0));
        assert_eq!(d.voxel_of([1e9, 1e9, 1e9]), (99, 49, 19));
    }

    #[test]
    fn voxel_of_interior_point() {
        let d = domain_100();
        assert_eq!(d.voxel_of([10.2, 3.9, 1.2]), (10, 3, 2));
    }

    #[test]
    fn voxel_bandwidth_is_ceil() {
        let d = domain_100();
        let vbw = d.voxel_bandwidth(Bandwidth::new(2.5, 0.9));
        assert_eq!(vbw, VoxelBandwidth::new(3, 2));
    }

    #[test]
    fn normalization_matches_formula() {
        let bw = Bandwidth::new(2.0, 4.0);
        let norm = bw.normalization(10);
        assert!((norm - 1.0 / (10.0 * 4.0 * 4.0)).abs() < 1e-15);
    }

    #[test]
    fn cylinder_box_volume() {
        let vbw = VoxelBandwidth::new(2, 1);
        assert_eq!(vbw.cylinder_box_volume(), 5 * 5 * 3);
    }

    #[test]
    fn extent_bounding_handles_degenerate_axes() {
        let e = Extent::bounding(vec![[1.0, 2.0, 3.0], [4.0, 2.0, 1.0]]).unwrap();
        assert_eq!(e.min, [1.0, 2.0, 1.0]);
        assert!(e.max[1] > 2.0); // degenerate y axis widened
        assert!(Extent::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn subdomain_centers_coincide_with_parent() {
        let d = domain_100();
        let r = VoxelRange {
            x0: 10,
            x1: 20,
            y0: 5,
            y1: 15,
            t0: 2,
            t1: 8,
        };
        let sub = d.subdomain(r);
        assert_eq!(sub.dims(), GridDims::new(10, 10, 6));
        assert_eq!(sub.voxel_center(0, 0, 0), d.voxel_center(10, 5, 2));
        assert_eq!(sub.voxel_center(9, 9, 5), d.voxel_center(19, 14, 7));
        // Points map consistently.
        let p = [12.3, 7.7, 2.1];
        let (px, py, pt) = d.voxel_of(p);
        let (sx, sy, st) = sub.voxel_of(p);
        assert_eq!((sx + 10, sy + 5, st + 2), (px, py, pt));
    }

    #[test]
    #[should_panic(expected = "exceeds domain")]
    fn subdomain_out_of_bounds_panics() {
        let d = domain_100();
        let _ = d.subdomain(VoxelRange {
            x0: 0,
            x1: 1000,
            y0: 0,
            y1: 1,
            t0: 0,
            t1: 1,
        });
    }

    #[test]
    fn from_dims_matches_unit_resolution() {
        let d = Domain::from_dims(GridDims::new(7, 8, 9));
        assert_eq!(d.dims(), GridDims::new(7, 8, 9));
        assert_eq!(d.voxel_of([6.5, 7.5, 8.5]), (6, 7, 8));
        let vbw = d.voxel_bandwidth(Bandwidth::new(3.0, 2.0));
        assert_eq!(vbw, VoxelBandwidth::new(3, 2));
    }

    proptest! {
        /// A point's containing voxel center is within half a voxel of the
        /// point on each axis — the property underpinning the Xi ± Hs bound
        /// of the point-based algorithms.
        #[test]
        fn voxel_center_within_half_voxel(
            px in 0.0..100.0f64, py in 0.0..50.0f64, pt in 0.0..10.0f64
        ) {
            let d = domain_100();
            let (x, y, t) = d.voxel_of([px, py, pt]);
            let c = d.voxel_center(x, y, t);
            prop_assert!((c[0] - px).abs() <= 0.5 * d.resolution().sres + 1e-12);
            prop_assert!((c[1] - py).abs() <= 0.5 * d.resolution().sres + 1e-12);
            prop_assert!((c[2] - pt).abs() <= 0.5 * d.resolution().tres + 1e-12);
        }

        /// Every voxel center maps back to its own voxel.
        #[test]
        fn center_roundtrips_to_same_voxel(
            x in 0usize..100, y in 0usize..50, t in 0usize..20
        ) {
            let d = domain_100();
            let c = d.voxel_center(x, y, t);
            prop_assert_eq!(d.voxel_of(c), (x, y, t));
        }
    }
}
