//! Multi-resolution mip pyramid over a [`Grid3`] for error-bounded
//! approximate serving.
//!
//! Each level halves every axis (ceiling division), and each coarse cell
//! stores the **sum**, **max**, and **min** of the base voxels it covers:
//!
//! * sums make region aggregates cheap at any level (a cell-aligned region
//!   aggregate needs one read per cell instead of one per voxel),
//! * max and min propagate *exactly* through the reduction (`max` of `max`es
//!   is the true block max, bit-for-bit), so every level-ℓ answer carries a
//!   certified per-voxel error envelope: no voxel in a cell can differ from
//!   the cell mean by more than `max(max − mean, mean − min)`.
//!
//! Min is stored alongside the issue-level sum/max pair because float
//! cancellation in an insert/evict stream can leave ulp-negative voxels;
//! an envelope that assumed `min ≥ 0` would not be certifiable.
//!
//! The reduction is rayon-parallel over coarse T-planes; level ℓ is built
//! from level ℓ−1 so the whole pyramid costs a geometric series over the
//! base sweep (< 1/7 of the base volume in cells).

use crate::dims::GridDims;
use crate::grid3::Grid3;
use crate::range::VoxelRange;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Per-cell statistics of the base voxels a pyramid cell covers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Sum of covered base voxels (f64 tree summation).
    pub sum: f64,
    /// Exact maximum of covered base voxels.
    pub max: f64,
    /// Exact minimum of covered base voxels.
    pub min: f64,
}

impl CellStats {
    /// Reduction identity (`sum = 0`, `max = −∞`, `min = +∞`).
    pub const EMPTY: Self = Self {
        sum: 0.0,
        max: f64::NEG_INFINITY,
        min: f64::INFINITY,
    };

    #[inline]
    fn absorb(&mut self, other: Self) {
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Cell mean clamped into `[min, max]`.
    ///
    /// The clamp is what keeps the envelope certified: `min ≤ v ≤ max`
    /// holds *exactly* for every covered voxel `v` (max/min propagate
    /// without rounding), so for any representative `m ∈ [min, max]`,
    /// `|v − m| ≤ max(max − m, m − min)` is a real-number inequality —
    /// even if `sum / count` rounded outside the interval.
    #[inline]
    pub fn mean(&self, count: usize) -> f64 {
        (self.sum / count as f64).clamp(self.min, self.max)
    }

    /// Certified per-voxel error envelope around [`CellStats::mean`].
    #[inline]
    pub fn envelope(&self, count: usize) -> f64 {
        let m = self.mean(count);
        (self.max - m).max(m - self.min).max(0.0)
    }
}

/// One pyramid level: a coarse grid of [`CellStats`] in the same X-fastest
/// layout as [`Grid3`].
#[derive(Debug, Clone)]
pub struct PyramidLevel {
    level: u32,
    dims: GridDims,
    cells: Vec<CellStats>,
}

impl PyramidLevel {
    /// Level index (1 = first reduction; cells cover `2×2×2` voxels).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Coarse dimensions of this level.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The cell at coarse coordinates `(cx, cy, ct)`.
    #[inline]
    pub fn cell(&self, cx: usize, cy: usize, ct: usize) -> &CellStats {
        &self.cells[self.dims.idx(cx, cy, ct)]
    }

    /// The base-voxel box a cell covers, clipped to the base grid.
    #[inline]
    pub fn cell_base_range(&self, base: GridDims, cx: usize, cy: usize, ct: usize) -> VoxelRange {
        let s = 1usize << self.level;
        VoxelRange {
            x0: cx * s,
            x1: ((cx + 1) * s).min(base.gx),
            y0: cy * s,
            y1: ((cy + 1) * s).min(base.gy),
            t0: ct * s,
            t1: ((ct + 1) * s).min(base.gt),
        }
    }
}

/// Approximate region aggregates served from one pyramid level, together
/// with the certification material the serving tier needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxStats {
    /// Approximate sum over the region (exact cell sums for fully covered
    /// cells, `covered × mean` for partially covered cells).
    pub sum: f64,
    /// Approximate maximum (`−∞` for an empty region).
    pub max: f64,
    /// Approximate minimum (`+∞` for an empty region).
    pub min: f64,
    /// Certified *upper bound* on the number of non-zero voxels: every
    /// voxel counted lives in a cell whose `(max, min) ≠ (0, 0)`; a cell
    /// with both zero covers only zeros.
    pub nonzero_upper: usize,
    /// Voxels in the region.
    pub total: usize,
    /// Certified per-voxel error envelope: max cell envelope over the
    /// *partially covered* cells (0 when the region is cell-aligned).
    /// `|approx − exact| ≤ env` holds for `max` and `min`, and
    /// `|sum_approx − sum_exact| ≤ env · total`, all up to float-summation
    /// rounding covered by [`ApproxStats::rounding_slack`].
    pub env: f64,
    /// Magnitude scale of the covered values (`max(|max|, |min|)` over
    /// covered cells) — the multiplier for rounding slack.
    pub scale: f64,
    /// Pyramid cells visited to produce this answer.
    pub cells: usize,
}

impl ApproxStats {
    /// Conservative per-voxel allowance for float-summation rounding, in
    /// the same unit as the voxel values.
    ///
    /// Both the pyramid's tree summation and an exact sequential
    /// `range_stats` sweep accumulate `n` values with worst-case relative
    /// error `O(n·ε)`; `16·ε·(n + 64)·scale` covers both sides with
    /// headroom. This is what lets a *zero* envelope (cell-aligned query
    /// over a constant region) still certify against a reference that
    /// summed in a different order.
    pub fn rounding_slack(&self) -> f64 {
        16.0 * f64::EPSILON * (self.total as f64 + 64.0) * self.scale
    }
}

/// A downsampled time plane served from one pyramid level: cell means at
/// the level's spatial resolution, plus the certification material.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceEstimate {
    /// Cells per row (the level's `gx`).
    pub width: usize,
    /// Rows (the level's `gy`).
    pub height: usize,
    /// Row-major `height × width` cell means (each replicates to a
    /// `2^ℓ × 2^ℓ` base block).
    pub values: Vec<f64>,
    /// Certified per-voxel error envelope: max cell envelope over the
    /// plane (`|mean − voxel| ≤ env` for every base voxel in the plane).
    pub env: f64,
    /// Magnitude scale of the plane's cells (rounding-slack multiplier).
    pub scale: f64,
}

impl SliceEstimate {
    /// Conservative per-value float-rounding allowance (cell means come
    /// from one division over a tree sum; see [`ApproxStats::rounding_slack`]).
    pub fn rounding_slack(&self) -> f64 {
        16.0 * f64::EPSILON * 64.0 * self.scale
    }
}

/// A mip pyramid: successive 2×2×2 (ceiling) reductions of a base grid
/// down to a single root cell.
#[derive(Debug, Clone)]
pub struct MipPyramid {
    base: GridDims,
    levels: Vec<PyramidLevel>,
}

impl MipPyramid {
    /// Build the full pyramid (levels `1..=L` until a `1×1×1` root) with a
    /// rayon-parallel reduction per level.
    ///
    /// A `1×1×1` base grid yields an empty pyramid (`levels() == 0`).
    pub fn build<S: Scalar>(grid: &Grid3<S>) -> Self {
        let base = grid.dims();
        let mut levels: Vec<PyramidLevel> = Vec::new();
        let mut child_dims = base;
        let mut level = 0u32;
        while child_dims.volume() > 1 {
            level += 1;
            let dims = halved(child_dims);
            let cells = match levels.last() {
                None => reduce_from(dims, child_dims, |x, y, t| {
                    let v = grid.get(x, y, t).to_f64();
                    CellStats {
                        sum: v,
                        max: v,
                        min: v,
                    }
                }),
                Some(prev) => {
                    let (pc, pd) = (&prev.cells, prev.dims);
                    reduce_from(dims, child_dims, |x, y, t| pc[pd.idx(x, y, t)])
                }
            };
            levels.push(PyramidLevel { level, dims, cells });
            child_dims = dims;
        }
        Self { base, levels }
    }

    /// Base grid dimensions the pyramid was built from.
    #[inline]
    pub fn base_dims(&self) -> GridDims {
        self.base
    }

    /// Number of levels, `L` (the coarsest usable level index).
    #[inline]
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Level `l ∈ 1..=L`, or `None` outside that range.
    #[inline]
    pub fn level(&self, l: usize) -> Option<&PyramidLevel> {
        if l == 0 {
            return None;
        }
        self.levels.get(l - 1)
    }

    /// Root statistics of the whole base grid: `(sum, max, min)`.
    /// Max and min are *exact*; only meaningful when `levels() > 0`.
    pub fn root(&self) -> Option<CellStats> {
        self.levels.last().map(|l| l.cells[0])
    }

    /// Heap bytes held by all levels (the resident-bytes gauge).
    pub fn heap_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.cells.capacity() * std::mem::size_of::<CellStats>())
            .sum()
    }

    /// Approximate the aggregates of region `r` from level `l`.
    ///
    /// `r` must already be clipped to the base grid. An empty `r` returns
    /// the empty-region identity (like `range_stats`). Panics if `l` is
    /// not in `1..=levels()`.
    pub fn range_estimate(&self, l: usize, r: VoxelRange) -> ApproxStats {
        let lvl = self.level(l).expect("pyramid level out of range");
        let mut acc = ApproxStats {
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            nonzero_upper: 0,
            total: r.volume(),
            env: 0.0,
            scale: 0.0,
            cells: 0,
        };
        if r.is_empty() {
            return acc;
        }
        let s = l as u32;
        let (cx0, cx1) = (r.x0 >> s, ((r.x1 - 1) >> s) + 1);
        let (cy0, cy1) = (r.y0 >> s, ((r.y1 - 1) >> s) + 1);
        let (ct0, ct1) = (r.t0 >> s, ((r.t1 - 1) >> s) + 1);
        for ct in ct0..ct1 {
            for cy in cy0..cy1 {
                for cx in cx0..cx1 {
                    let cell = lvl.cell(cx, cy, ct);
                    let bounds = lvl.cell_base_range(self.base, cx, cy, ct);
                    let count = bounds.volume();
                    let covered = bounds.intersect(r).volume();
                    debug_assert!(covered > 0);
                    acc.cells += 1;
                    acc.scale = acc.scale.max(cell.max.abs()).max(cell.min.abs());
                    if cell.max != 0.0 || cell.min != 0.0 {
                        acc.nonzero_upper += covered;
                    }
                    if covered == count {
                        acc.sum += cell.sum;
                        acc.max = acc.max.max(cell.max);
                        acc.min = acc.min.min(cell.min);
                    } else {
                        let m = cell.mean(count);
                        acc.sum += covered as f64 * m;
                        acc.max = acc.max.max(m);
                        acc.min = acc.min.min(m);
                        acc.env = acc.env.max(cell.envelope(count));
                    }
                }
            }
        }
        acc
    }

    /// The downsampled plane covering base time layer `t` at level `l`.
    ///
    /// Every base voxel `(x, y, t)` maps to the cell at
    /// `(x >> l, y >> l)` in the returned plane, and differs from that
    /// cell's value by at most [`SliceEstimate::env`] (the cell also
    /// aggregates the other time layers it covers, so the envelope
    /// accounts for temporal variation too). Panics if `l` is not in
    /// `1..=levels()` or `t` is out of range.
    pub fn slice_estimate(&self, l: usize, t: usize) -> SliceEstimate {
        assert!(t < self.base.gt, "time layer out of range");
        let lvl = self.level(l).expect("pyramid level out of range");
        let d = lvl.dims();
        let ct = t >> l as u32;
        let mut out = SliceEstimate {
            width: d.gx,
            height: d.gy,
            values: Vec::with_capacity(d.gx * d.gy),
            env: 0.0,
            scale: 0.0,
        };
        for cy in 0..d.gy {
            for cx in 0..d.gx {
                let cell = lvl.cell(cx, cy, ct);
                let count = lvl.cell_base_range(self.base, cx, cy, ct).volume();
                out.values.push(cell.mean(count));
                out.env = out.env.max(cell.envelope(count));
                out.scale = out.scale.max(cell.max.abs()).max(cell.min.abs());
            }
        }
        out
    }
}

/// Ceiling-halved dimensions (axes saturate at 1).
fn halved(d: GridDims) -> GridDims {
    GridDims::new(d.gx.div_ceil(2), d.gy.div_ceil(2), d.gt.div_ceil(2))
}

/// Reduce a child layer (grid voxels or a finer level) into coarse cells,
/// parallel over coarse T-planes.
fn reduce_from(
    dims: GridDims,
    child: GridDims,
    fetch: impl Fn(usize, usize, usize) -> CellStats + Sync,
) -> Vec<CellStats> {
    let plane = dims.gx * dims.gy;
    let mut cells = vec![CellStats::EMPTY; dims.volume()];
    cells
        .par_chunks_mut(plane)
        .enumerate()
        .for_each(|(ct, out)| {
            let (t0, t1) = (ct * 2, (ct * 2 + 2).min(child.gt));
            for cy in 0..dims.gy {
                let (y0, y1) = (cy * 2, (cy * 2 + 2).min(child.gy));
                for cx in 0..dims.gx {
                    let (x0, x1) = (cx * 2, (cx * 2 + 2).min(child.gx));
                    let mut acc = CellStats::EMPTY;
                    for t in t0..t1 {
                        for y in y0..y1 {
                            for x in x0..x1 {
                                acc.absorb(fetch(x, y, t));
                            }
                        }
                    }
                    out[cy * dims.gx + cx] = acc;
                }
            }
        });
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::range_stats;
    use proptest::prelude::*;

    fn filled_grid(dims: GridDims, f: impl Fn(usize) -> f64) -> Grid3<f64> {
        let mut g = Grid3::zeros(dims);
        for (i, v) in g.as_mut_slice().iter_mut().enumerate() {
            *v = f(i);
        }
        g
    }

    fn brute_cell(g: &Grid3<f64>, r: VoxelRange) -> CellStats {
        let mut acc = CellStats::EMPTY;
        for (x, y, t) in r.iter() {
            let v = g.get(x, y, t);
            acc.absorb(CellStats {
                sum: v,
                max: v,
                min: v,
            });
        }
        acc
    }

    #[test]
    fn level_count_reaches_root() {
        let g: Grid3<f64> = Grid3::zeros(GridDims::new(64, 64, 32));
        let p = MipPyramid::build(&g);
        assert_eq!(p.levels(), 6);
        assert_eq!(p.level(6).unwrap().dims(), GridDims::new(1, 1, 1));
        assert!(p.level(0).is_none());
        assert!(p.level(7).is_none());
        assert!(p.heap_bytes() > 0);
    }

    #[test]
    fn unit_grid_has_no_levels() {
        let g: Grid3<f32> = Grid3::zeros(GridDims::new(1, 1, 1));
        let p = MipPyramid::build(&g);
        assert_eq!(p.levels(), 0);
        assert!(p.root().is_none());
    }

    #[test]
    fn root_max_min_are_exact() {
        let g = filled_grid(GridDims::new(13, 7, 5), |i| ((i * 37) % 101) as f64 - 50.0);
        let p = MipPyramid::build(&g);
        let root = p.root().unwrap();
        let s = range_stats(&g, VoxelRange::full(g.dims()));
        assert_eq!(root.max, s.max);
        assert_eq!(root.min, s.min);
        assert!((root.sum - s.sum).abs() <= 1e-9 * s.sum.abs().max(1.0));
    }

    #[test]
    fn aligned_region_max_is_exact() {
        let g = filled_grid(GridDims::new(16, 16, 8), |i| (i % 17) as f64);
        let p = MipPyramid::build(&g);
        let r = VoxelRange {
            x0: 4,
            x1: 12,
            y0: 0,
            y1: 8,
            t0: 0,
            t1: 4,
        };
        let a = p.range_estimate(2, r);
        let s = range_stats(&g, r);
        assert_eq!(a.env, 0.0);
        assert_eq!(a.max, s.max);
        assert_eq!(a.min, s.min);
        assert!((a.sum - s.sum).abs() <= a.rounding_slack() * a.total as f64);
        assert!(a.nonzero_upper >= s.nonzero);
    }

    #[test]
    fn slice_estimate_envelope_holds() {
        let g = filled_grid(GridDims::new(11, 9, 6), |i| ((i * 31) % 57) as f64 - 20.0);
        let p = MipPyramid::build(&g);
        for t in 0..6 {
            for l in 1..=p.levels() {
                let s = p.slice_estimate(l, t);
                let d = p.level(l).unwrap().dims();
                assert_eq!((s.width, s.height), (d.gx, d.gy));
                for y in 0..9 {
                    for x in 0..11 {
                        let cell_val = s.values[(y >> l) * s.width + (x >> l)];
                        let exact = g.get(x, y, t);
                        assert!(
                            (cell_val - exact).abs() <= s.env + s.rounding_slack(),
                            "l={l} t={t} ({x},{y}): {cell_val} vs {exact} env {}",
                            s.env
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_region_is_identity() {
        let g: Grid3<f64> = Grid3::zeros(GridDims::new(8, 8, 8));
        let p = MipPyramid::build(&g);
        let a = p.range_estimate(1, VoxelRange::empty());
        assert_eq!(a.total, 0);
        assert_eq!(a.sum, 0.0);
        assert!(a.max.is_infinite() && a.max < 0.0);
    }

    proptest! {
        #[test]
        fn cells_match_brute_force(
            gx in 1usize..20, gy in 1usize..20, gt in 1usize..12,
            seed in 0u64..1000
        ) {
            let dims = GridDims::new(gx, gy, gt);
            // Deterministic pseudo-random values, sign-mixed to exercise min.
            let g = filled_grid(dims, |i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
                ((h >> 32) as i64 % 1000) as f64 / 10.0
            });
            let p = MipPyramid::build(&g);
            prop_assert!(p.levels() >= 1 || dims.volume() == 1);
            for l in 1..=p.levels() {
                let lvl = p.level(l).unwrap();
                for (cx, cy, ct) in lvl.dims().iter() {
                    let r = lvl.cell_base_range(dims, cx, cy, ct);
                    prop_assert!(!r.is_empty());
                    let b = brute_cell(&g, r);
                    let c = lvl.cell(cx, cy, ct);
                    prop_assert_eq!(c.max, b.max);
                    prop_assert_eq!(c.min, b.min);
                    let tol = 1e-9 * b.sum.abs().max(1.0);
                    prop_assert!((c.sum - b.sum).abs() <= tol);
                }
            }
        }

        #[test]
        fn range_estimate_envelope_holds(
            gx in 2usize..24, gy in 2usize..24, gt in 1usize..10,
            x0 in 0usize..24, xw in 1usize..24,
            y0 in 0usize..24, yw in 1usize..24,
            t0 in 0usize..10, tw in 1usize..10,
            seed in 0u64..500
        ) {
            let dims = GridDims::new(gx, gy, gt);
            let g = filled_grid(dims, |i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed * 7919);
                ((h >> 32) as i64 % 1000) as f64 / 25.0
            });
            let p = MipPyramid::build(&g);
            let r = VoxelRange { x0, x1: x0 + xw, y0, y1: y0 + yw, t0, t1: t0 + tw }
                .clipped(dims);
            prop_assume!(!r.is_empty());
            let s = range_stats(&g, r);
            for l in 1..=p.levels() {
                let a = p.range_estimate(l, r);
                let slack = a.rounding_slack();
                prop_assert_eq!(a.total, s.total);
                prop_assert!((a.max - s.max).abs() <= a.env + slack,
                    "level {} max: approx {} exact {} env {}", l, a.max, s.max, a.env);
                prop_assert!((a.min - s.min).abs() <= a.env + slack,
                    "level {} min: approx {} exact {} env {}", l, a.min, s.min, a.env);
                prop_assert!((a.sum - s.sum).abs() <= (a.env + slack) * a.total as f64,
                    "level {} sum: approx {} exact {} env {}", l, a.sum, s.sum, a.env);
                prop_assert!(a.nonzero_upper >= s.nonzero);
                prop_assert!(a.nonzero_upper <= a.total);
            }
        }
    }
}
