//! Instrumentation seam for the `stkde-analyze` concurrency model
//! checker, mirroring the seam in the `rayon` shim.
//!
//! The brick slot-allocation protocol ([`crate::brick`]) calls
//! [`yield_point`] immediately before each shared-memory access that
//! participates in the allocation race (the published-slot load and the
//! install CAS). Without the `model` feature the call compiles to
//! nothing. With it, the call consults a *thread-local* hook: threads
//! spawned by the model checker install a hook that parks the thread
//! until the checker's deterministic scheduler grants the next step,
//! turning "which writer wins the brick CAS" into an enumerable choice.
//! Threads without a hook (real workers, even in instrumented builds)
//! pay one thread-local read per yield point and continue immediately.
//!
//! The `model` feature also exposes [`TestSparse`], a thin `Arc`-shared
//! facade over a real [`SparseGrid3`](crate::SparseGrid3) so checker
//! scenarios can drive the *actual* CAS allocation path from multiple
//! model threads rather than a port of it.

#[cfg(not(feature = "model"))]
#[inline(always)]
pub(crate) fn yield_point(_label: &'static str) {}

#[cfg(feature = "model")]
pub(crate) fn yield_point(label: &'static str) {
    imp::yield_point(label)
}

#[cfg(feature = "model")]
mod imp {
    use std::cell::RefCell;

    type Hook = Box<dyn Fn(&'static str)>;

    thread_local! {
        static HOOK: RefCell<Option<Hook>> = const { RefCell::new(None) };
    }

    pub(super) fn yield_point(label: &'static str) {
        HOOK.with(|h| {
            // `try_borrow`: a hook that itself trips a yield point must
            // not re-enter.
            if let Ok(guard) = h.try_borrow() {
                if let Some(hook) = guard.as_ref() {
                    hook(label);
                }
            }
        });
    }

    /// Install this thread's scheduler hook; model-checker threads call
    /// this first thing.
    pub fn set_yield_hook(hook: Hook) {
        HOOK.with(|h| *h.borrow_mut() = Some(hook));
    }

    /// Remove this thread's hook (end of a model run).
    pub fn clear_yield_hook() {
        HOOK.with(|h| *h.borrow_mut() = None);
    }
}

#[cfg(feature = "model")]
pub use facade::*;

#[cfg(feature = "model")]
mod facade {
    use crate::{GridDims, SparseGrid3};
    use std::sync::Arc;

    pub use super::imp::{clear_yield_hook, set_yield_hook};

    /// A real [`SparseGrid3<f64>`] behind an `Arc`, with the shared-writer
    /// entry points surfaced so model scenarios can race two writers
    /// through the genuine CAS-on-brick-slot allocation path.
    #[derive(Clone)]
    pub struct TestSparse {
        inner: Arc<SparseGrid3<f64>>,
    }

    impl TestSparse {
        /// An empty sparse grid over `gx × gy × gt` voxels.
        pub fn new(gx: usize, gy: usize, gt: usize) -> Self {
            TestSparse {
                inner: Arc::new(SparseGrid3::new(GridDims::new(gx, gy, gt))),
            }
        }

        /// Add `v` to voxel `(x, y, t)` through the concurrent write path
        /// (slot load → CAS-install on miss → payload write).
        ///
        /// # Safety
        /// The scenario must guarantee no two threads target the same
        /// voxel concurrently (brick *slots* may race — that is the point
        /// — but payload cells must be disjoint).
        pub unsafe fn add_racing(&self, x: usize, y: usize, t: usize, v: f64) {
            // SAFETY: forwarded — the scenario keeps voxels disjoint.
            unsafe { self.inner.table().add_shared(x, y, t, v) };
        }

        /// Read voxel `(x, y, t)`.
        pub fn get(&self, x: usize, y: usize, t: usize) -> f64 {
            self.inner.get(x, y, t)
        }

        /// Bricks materialized so far.
        pub fn allocated_bricks(&self) -> usize {
            self.inner.allocated_bricks()
        }

        /// Allocations lost to a concurrent winner.
        pub fn cas_races(&self) -> u64 {
            self.inner.alloc_cas_races()
        }
    }
}
