//! A×B×C subdomain decomposition of the voxel grid.
//!
//! Both parallel families of the paper partition the grid into an A×B×C
//! lattice of box subdomains: `PB-SYM-DD` (§4.2) assigns *voxels* to
//! subdomains and replicates points whose cylinder crosses a boundary, while
//! `PB-SYM-PD` (§5.1) assigns *points* to subdomains and requires each
//! subdomain to be at least twice the bandwidth wide so that non-adjacent
//! subdomains can be processed concurrently.

use crate::dims::GridDims;
use crate::geometry::VoxelBandwidth;
use crate::range::VoxelRange;
use serde::{Deserialize, Serialize};

/// Requested subdomain counts along each axis (A along x, B along y,
/// C along t).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decomp {
    /// Number of subdomains along x.
    pub a: usize,
    /// Number of subdomains along y.
    pub b: usize,
    /// Number of subdomains along t.
    pub c: usize,
}

impl Decomp {
    /// An `a × b × c` decomposition.
    ///
    /// # Panics
    /// Panics if any count is zero.
    pub fn new(a: usize, b: usize, c: usize) -> Self {
        assert!(a > 0 && b > 0 && c > 0, "decomposition counts must be >= 1");
        Self { a, b, c }
    }

    /// The cubic `k × k × k` decomposition (the paper sweeps 1³ … 64³).
    pub fn cubic(k: usize) -> Self {
        Self::new(k, k, k)
    }

    /// Total number of subdomains.
    #[inline]
    pub fn count(&self) -> usize {
        self.a * self.b * self.c
    }
}

impl std::fmt::Display for Decomp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.a, self.b, self.c)
    }
}

/// Identifier of a subdomain inside a [`Decomposition`]: linear index
/// `id = (ic·B + ib)·A + ia`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubdomainId(pub usize);

/// A realized decomposition: per-axis boundary arrays over a concrete grid.
///
/// Boundaries follow the paper's convention `⌊i·G/K⌋`, giving subdomain
/// widths that differ by at most one voxel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    dims: GridDims,
    decomp: Decomp,
    bx: Vec<usize>,
    by: Vec<usize>,
    bt: Vec<usize>,
}

fn boundaries(g: usize, k: usize) -> Vec<usize> {
    (0..=k).map(|i| i * g / k).collect()
}

impl Decomposition {
    /// Decompose `dims` into exactly the requested counts (clamped so no
    /// axis has more subdomains than voxels).
    pub fn new(dims: GridDims, decomp: Decomp) -> Self {
        let d = Decomp::new(
            decomp.a.min(dims.gx),
            decomp.b.min(dims.gy),
            decomp.c.min(dims.gt),
        );
        Self {
            dims,
            decomp: d,
            bx: boundaries(dims.gx, d.a),
            by: boundaries(dims.gy, d.b),
            bt: boundaries(dims.gt, d.c),
        }
    }

    /// Decompose with the `PB-SYM-PD` size constraint: every subdomain must
    /// be at least `2·Hs` voxels wide spatially and `2·Ht` temporally, so
    /// that points in non-adjacent subdomains have non-overlapping cylinders
    /// (§5.1: “decompositions of subdomain smaller than twice the bandwidths
    /// are adjusted”). Requested counts are reduced as needed.
    pub fn adjusted(dims: GridDims, decomp: Decomp, vbw: VoxelBandwidth) -> Self {
        let cap = |g: usize, k: usize, min_w: usize| -> usize {
            // Largest k' <= k with floor(g/k') >= min_w, i.e. k' <= g/min_w.
            k.min((g / min_w.max(1)).max(1))
        };
        let d = Decomp::new(
            cap(dims.gx, decomp.a, 2 * vbw.hs),
            cap(dims.gy, decomp.b, 2 * vbw.hs),
            cap(dims.gt, decomp.c, 2 * vbw.ht),
        );
        Self::new(dims, d)
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Effective (possibly clamped/adjusted) subdomain counts.
    #[inline]
    pub fn decomp(&self) -> Decomp {
        self.decomp
    }

    /// Total number of subdomains.
    #[inline]
    pub fn count(&self) -> usize {
        self.decomp.count()
    }

    /// Linear id of lattice cell `(ia, ib, ic)`.
    #[inline]
    pub fn id(&self, ia: usize, ib: usize, ic: usize) -> SubdomainId {
        debug_assert!(ia < self.decomp.a && ib < self.decomp.b && ic < self.decomp.c);
        SubdomainId((ic * self.decomp.b + ib) * self.decomp.a + ia)
    }

    /// Lattice cell of a linear id.
    #[inline]
    pub fn cell(&self, id: SubdomainId) -> (usize, usize, usize) {
        let ia = id.0 % self.decomp.a;
        let rest = id.0 / self.decomp.a;
        let ib = rest % self.decomp.b;
        let ic = rest / self.decomp.b;
        debug_assert!(ic < self.decomp.c);
        (ia, ib, ic)
    }

    /// The subdomain containing voxel `(x, y, t)`.
    pub fn subdomain_of(&self, x: usize, y: usize, t: usize) -> SubdomainId {
        debug_assert!(self.dims.contains(x, y, t));
        let find = |b: &[usize], v: usize| -> usize {
            // partition_point gives the first boundary > v; cell index is
            // that minus one. Boundaries are ⌊i·G/K⌋, may repeat when K > G
            // is clamped away, so binary search on the boundary array.
            b.partition_point(|&e| e <= v) - 1
        };
        self.id(find(&self.bx, x), find(&self.by, y), find(&self.bt, t))
    }

    /// The voxel range `[⌊ia·Gx/A⌋, ⌊(ia+1)·Gx/A⌋) × …` of a subdomain.
    pub fn voxel_range(&self, id: SubdomainId) -> VoxelRange {
        let (ia, ib, ic) = self.cell(id);
        VoxelRange {
            x0: self.bx[ia],
            x1: self.bx[ia + 1],
            y0: self.by[ib],
            y1: self.by[ib + 1],
            t0: self.bt[ic],
            t1: self.bt[ic + 1],
        }
    }

    /// The influence halo of a subdomain: its voxel range expanded by the
    /// bandwidth and clipped to the grid. Points *in* the subdomain can only
    /// write voxels *in* the halo.
    pub fn halo(&self, id: SubdomainId, vbw: VoxelBandwidth) -> VoxelRange {
        self.voxel_range(id)
            .expanded(vbw.hs, vbw.ht)
            .clipped(self.dims)
    }

    /// Iterate over all subdomain ids.
    pub fn ids(&self) -> impl Iterator<Item = SubdomainId> + '_ {
        (0..self.count()).map(SubdomainId)
    }

    /// The ids of all subdomains whose voxel range intersects `range`
    /// (used by DD to find which subdomains a cylinder touches).
    pub fn intersecting(&self, range: VoxelRange) -> Vec<SubdomainId> {
        let range = range.clipped(self.dims);
        if range.is_empty() {
            return Vec::new();
        }
        let cells = |b: &[usize], lo: usize, hi_excl: usize| -> (usize, usize) {
            let first = b.partition_point(|&e| e <= lo) - 1;
            let last = b.partition_point(|&e| e < hi_excl) - 1;
            (first, last)
        };
        let (ax0, ax1) = cells(&self.bx, range.x0, range.x1);
        let (ay0, ay1) = cells(&self.by, range.y0, range.y1);
        let (at0, at1) = cells(&self.bt, range.t0, range.t1);
        let mut out = Vec::with_capacity((ax1 - ax0 + 1) * (ay1 - ay0 + 1) * (at1 - at0 + 1));
        for ic in at0..=at1 {
            for ib in ay0..=ay1 {
                for ia in ax0..=ax1 {
                    out.push(self.id(ia, ib, ic));
                }
            }
        }
        out
    }

    /// The (up to 26) lattice neighbors of a subdomain — the 27-point
    /// stencil of §5.2 minus the center.
    pub fn neighbors(&self, id: SubdomainId) -> Vec<SubdomainId> {
        let (ia, ib, ic) = self.cell(id);
        let mut out = Vec::with_capacity(26);
        for dc in -1i64..=1 {
            for db in -1i64..=1 {
                for da in -1i64..=1 {
                    if da == 0 && db == 0 && dc == 0 {
                        continue;
                    }
                    let (na, nb, nc) = (ia as i64 + da, ib as i64 + db, ic as i64 + dc);
                    if na >= 0
                        && nb >= 0
                        && nc >= 0
                        && (na as usize) < self.decomp.a
                        && (nb as usize) < self.decomp.b
                        && (nc as usize) < self.decomp.c
                    {
                        out.push(self.id(na as usize, nb as usize, nc as usize));
                    }
                }
            }
        }
        out
    }

    /// `true` if two subdomains are adjacent (or equal) in the lattice
    /// (Chebyshev distance ≤ 1 on every axis).
    pub fn adjacent(&self, a: SubdomainId, b: SubdomainId) -> bool {
        let (aa, ab, ac) = self.cell(a);
        let (ba, bb, bc) = self.cell(b);
        aa.abs_diff(ba) <= 1 && ab.abs_diff(bb) <= 1 && ac.abs_diff(bc) <= 1
    }

    /// The 8-color "base" class of a subdomain used by the phased `PB-SYM-PD`
    /// implementation (§5.1): color = parity bits of the lattice cell.
    pub fn parity_class(&self, id: SubdomainId) -> usize {
        let (ia, ib, ic) = self.cell(id);
        (ia % 2) | ((ib % 2) << 1) | ((ic % 2) << 2)
    }

    /// Minimum subdomain width on each axis (x, y, t), in voxels.
    pub fn min_widths(&self) -> (usize, usize, usize) {
        let min_w = |b: &[usize]| b.windows(2).map(|w| w[1] - w[0]).min().unwrap_or(0);
        (min_w(&self.bx), min_w(&self.by), min_w(&self.bt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dec(gx: usize, gy: usize, gt: usize, a: usize, b: usize, c: usize) -> Decomposition {
        Decomposition::new(GridDims::new(gx, gy, gt), Decomp::new(a, b, c))
    }

    #[test]
    fn boundaries_follow_floor_rule() {
        let d = dec(10, 10, 10, 3, 3, 3);
        assert_eq!(d.bx, vec![0, 3, 6, 10]);
    }

    #[test]
    fn counts_clamped_to_dims() {
        let d = dec(2, 3, 4, 10, 10, 10);
        assert_eq!(d.decomp(), Decomp::new(2, 3, 4));
    }

    #[test]
    fn id_cell_roundtrip() {
        let d = dec(20, 20, 20, 2, 3, 4);
        for id in d.ids() {
            let (ia, ib, ic) = d.cell(id);
            assert_eq!(d.id(ia, ib, ic), id);
        }
        assert_eq!(d.count(), 24);
    }

    #[test]
    fn subdomain_of_matches_voxel_range() {
        let d = dec(13, 7, 5, 4, 2, 3);
        for (x, y, t) in GridDims::new(13, 7, 5).iter() {
            let id = d.subdomain_of(x, y, t);
            assert!(
                d.voxel_range(id).contains(x, y, t),
                "voxel ({x},{y},{t}) not in its own subdomain {id:?}"
            );
        }
    }

    #[test]
    fn ranges_partition_grid() {
        let d = dec(11, 9, 6, 3, 4, 2);
        let total: usize = d.ids().map(|id| d.voxel_range(id).volume()).sum();
        assert_eq!(total, d.dims().volume());
        // Pairwise disjoint.
        let ranges: Vec<_> = d.ids().map(|id| d.voxel_range(id)).collect();
        for i in 0..ranges.len() {
            for j in (i + 1)..ranges.len() {
                assert!(!ranges[i].intersects(ranges[j]));
            }
        }
    }

    #[test]
    fn adjusted_enforces_min_width() {
        let dims = GridDims::new(64, 64, 64);
        let vbw = VoxelBandwidth::new(8, 4);
        let d = Decomposition::adjusted(dims, Decomp::cubic(64), vbw);
        let (wx, wy, wt) = d.min_widths();
        assert!(wx >= 16, "x width {wx} < 2*Hs");
        assert!(wy >= 16);
        assert!(wt >= 8, "t width {wt} < 2*Ht");
        // 64 / 16 = 4 along x/y, 64 / 8 = 8 along t.
        assert_eq!(d.decomp(), Decomp::new(4, 4, 8));
    }

    #[test]
    fn adjusted_collapses_to_one_when_bandwidth_huge() {
        let d = Decomposition::adjusted(
            GridDims::new(10, 10, 10),
            Decomp::cubic(8),
            VoxelBandwidth::new(50, 50),
        );
        assert_eq!(d.decomp(), Decomp::new(1, 1, 1));
    }

    #[test]
    fn neighbors_interior_is_26() {
        let d = dec(30, 30, 30, 3, 3, 3);
        let center = d.id(1, 1, 1);
        assert_eq!(d.neighbors(center).len(), 26);
        let corner = d.id(0, 0, 0);
        assert_eq!(d.neighbors(corner).len(), 7);
    }

    #[test]
    fn adjacency_is_symmetric_and_matches_neighbors() {
        let d = dec(24, 24, 24, 3, 2, 4);
        for a in d.ids() {
            for b in d.ids() {
                assert_eq!(d.adjacent(a, b), d.adjacent(b, a));
                if a != b {
                    assert_eq!(d.adjacent(a, b), d.neighbors(a).contains(&b));
                }
            }
        }
    }

    #[test]
    fn parity_class_has_8_values_and_no_adjacent_share() {
        let d = dec(40, 40, 40, 4, 4, 4);
        for id in d.ids() {
            assert!(d.parity_class(id) < 8);
            for n in d.neighbors(id) {
                // Neighbors at lattice distance 1 on some axis differ in
                // at least one parity bit *unless* the axis wraps… it
                // doesn't wrap, so classes must differ.
                assert_ne!(
                    d.parity_class(id),
                    d.parity_class(n),
                    "adjacent {id:?} {n:?} share parity class"
                );
            }
        }
    }

    #[test]
    fn intersecting_finds_all_touched_subdomains() {
        let d = dec(12, 12, 12, 3, 3, 3);
        // A range crossing the x boundary at 4.
        let r = VoxelRange {
            x0: 3,
            x1: 6,
            y0: 0,
            y1: 2,
            t0: 0,
            t1: 2,
        };
        let got = d.intersecting(r);
        assert_eq!(got.len(), 2);
        assert!(got.contains(&d.id(0, 0, 0)));
        assert!(got.contains(&d.id(1, 0, 0)));
    }

    #[test]
    fn halo_is_clipped_expansion() {
        let d = dec(10, 10, 10, 2, 2, 2);
        let vbw = VoxelBandwidth::new(2, 1);
        let h = d.halo(d.id(0, 0, 0), vbw);
        assert_eq!(h.x0, 0);
        assert_eq!(h.x1, 5 + 2);
        assert_eq!(h.t1, 5 + 1);
    }

    proptest! {
        #[test]
        fn prop_subdomains_partition(
            gx in 1usize..30, gy in 1usize..30, gt in 1usize..30,
            a in 1usize..8, b in 1usize..8, c in 1usize..8
        ) {
            let d = Decomposition::new(GridDims::new(gx, gy, gt), Decomp::new(a, b, c));
            let total: usize = d.ids().map(|id| d.voxel_range(id).volume()).sum();
            prop_assert_eq!(total, gx * gy * gt);
        }

        #[test]
        fn prop_subdomain_of_consistent(
            gx in 1usize..30, gy in 1usize..30, gt in 1usize..30,
            a in 1usize..8, b in 1usize..8, c in 1usize..8,
            sx in 0usize..30, sy in 0usize..30, st in 0usize..30
        ) {
            let d = Decomposition::new(GridDims::new(gx, gy, gt), Decomp::new(a, b, c));
            let (x, y, t) = (sx % gx, sy % gy, st % gt);
            let id = d.subdomain_of(x, y, t);
            prop_assert!(d.voxel_range(id).contains(x, y, t));
        }

        #[test]
        fn prop_intersecting_equals_bruteforce(
            gx in 2usize..20, gy in 2usize..20, gt in 2usize..20,
            a in 1usize..6, b in 1usize..6, c in 1usize..6,
            x in 0usize..20, y in 0usize..20, t in 0usize..20,
            hs in 1usize..4, ht in 1usize..4
        ) {
            let dims = GridDims::new(gx, gy, gt);
            let d = Decomposition::new(dims, Decomp::new(a, b, c));
            let r = VoxelRange::centered(x % gx, y % gy, t % gt, hs, ht).clipped(dims);
            let mut expect: Vec<_> = d
                .ids()
                .filter(|&id| d.voxel_range(id).intersects(r))
                .collect();
            let mut got = d.intersecting(r);
            expect.sort();
            got.sort();
            prop_assert_eq!(got, expect);
        }

        /// The PD safety property: points in non-adjacent subdomains of an
        /// adjusted decomposition have disjoint cylinder bounding boxes.
        #[test]
        fn prop_nonadjacent_halos_disjoint_under_adjustment(
            gx in 8usize..40, gy in 8usize..40, gt in 8usize..40,
            a in 1usize..10, b in 1usize..10, c in 1usize..10,
            hs in 1usize..5, ht in 1usize..5
        ) {
            let dims = GridDims::new(gx, gy, gt);
            let vbw = VoxelBandwidth::new(hs, ht);
            let d = Decomposition::adjusted(dims, Decomp::new(a, b, c), vbw);
            for s1 in d.ids() {
                for s2 in d.ids() {
                    if s1 < s2 && !d.adjacent(s1, s2) {
                        prop_assert!(
                            !d.halo(s1, vbw).intersects(d.halo(s2, vbw)),
                            "non-adjacent {:?} {:?} have overlapping halos", s1, s2
                        );
                    }
                }
            }
        }
    }
}
