//! Block-sparse 3-D voxel grid.
//!
//! The paper's complexity analysis (§3.1) splits the point-based algorithms
//! into an initialization term `Θ(Gx·Gy·Gt)` and a compute term
//! `Θ(n·Hs²·Ht)`, and Figure 7 shows the initialization term *dominating*
//! the sparse instances (Flu: 31K points spread over a 20 GB world grid).
//! §6.3 further observes that zeroing memory parallelizes poorly (≈3× on 16
//! threads), capping every parallel algorithm's speedup on those instances.
//!
//! [`SparseGrid3`] removes the `Θ(G)` term instead of parallelizing it: the
//! grid is divided into fixed-shape blocks and a block is allocated (and
//! zeroed) only when a density cylinder first touches it. Initialization
//! becomes `Θ(G/B)` table setup, and total memory is proportional to the
//! *touched* volume `O(n·Hs²·Ht)` rather than the domain volume. On
//! Flu-like instances this converts the dominant cost into a negligible
//! one (see `benches/sparse.rs` and the `ablation_sparse` harness); on
//! dense instances (eBird) the dense [`Grid3`](crate::Grid3) remains
//! preferable since every block gets allocated anyway and the block table
//! adds indirection.

use crate::dims::GridDims;
use crate::grid3::Grid3;
use crate::range::VoxelRange;
use crate::scalar::Scalar;

/// Shape of one sparse block, in voxels.
///
/// Blocks are X-fastest internally, like [`Grid3`]. The default
/// (`32×8×8` = 2048 voxels, 8 KiB of `f32`) keeps X-rows long enough for
/// the stride-1 inner loop of `PB-SYM` while staying well under typical L1
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockDims {
    /// Block extent along x.
    pub bx: usize,
    /// Block extent along y.
    pub by: usize,
    /// Block extent along t.
    pub bt: usize,
}

impl BlockDims {
    /// The default block shape (`32×8×8`).
    pub const DEFAULT: Self = Self {
        bx: 32,
        by: 8,
        bt: 8,
    };

    /// Create a block shape. All extents must be non-zero.
    ///
    /// # Panics
    /// Panics if any extent is zero.
    pub fn new(bx: usize, by: usize, bt: usize) -> Self {
        assert!(bx > 0 && by > 0 && bt > 0, "block extents must be non-zero");
        Self { bx, by, bt }
    }

    /// Voxels per block.
    #[inline]
    pub fn volume(&self) -> usize {
        self.bx * self.by * self.bt
    }

    /// Flat index of a voxel *within* a block (X-fastest).
    #[inline(always)]
    fn idx(&self, lx: usize, ly: usize, lt: usize) -> usize {
        (lt * self.by + ly) * self.bx + lx
    }
}

impl Default for BlockDims {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// A block-sparse 3-D grid: a table of lazily allocated fixed-shape blocks.
///
/// Reads of never-written voxels return zero without allocating. All
/// accumulation APIs mirror [`Grid3`] so the STKDE kernels can target
/// either backend.
///
/// ```
/// use stkde_grid::{GridDims, SparseGrid3};
///
/// // A grid that would be 256 MB dense; nothing is allocated up front.
/// let mut g: SparseGrid3<f32> = SparseGrid3::new(GridDims::new(1024, 1024, 64));
/// assert_eq!(g.allocated_blocks(), 0);
/// g.add(500, 500, 30, 1.0);
/// assert_eq!(g.get(500, 500, 30), 1.0);
/// assert_eq!(g.get(0, 0, 0), 0.0);       // never-written voxels read zero
/// assert_eq!(g.allocated_blocks(), 1);   // one 32×8×8 block materialized
/// ```
#[derive(Debug, Clone)]
pub struct SparseGrid3<S> {
    dims: GridDims,
    block: BlockDims,
    /// Blocks per axis (`⌈G/B⌉`).
    nbx: usize,
    nby: usize,
    nbt: usize,
    blocks: Vec<Option<Box<[S]>>>,
    allocated: usize,
}

impl<S: Scalar> SparseGrid3<S> {
    /// Empty sparse grid with the default block shape.
    pub fn new(dims: GridDims) -> Self {
        Self::with_blocks(dims, BlockDims::DEFAULT)
    }

    /// Empty sparse grid with an explicit block shape.
    pub fn with_blocks(dims: GridDims, block: BlockDims) -> Self {
        let nbx = dims.gx.div_ceil(block.bx);
        let nby = dims.gy.div_ceil(block.by);
        let nbt = dims.gt.div_ceil(block.bt);
        Self {
            dims,
            block,
            nbx,
            nby,
            nbt,
            blocks: vec![None; nbx * nby * nbt],
            allocated: 0,
        }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Block shape.
    #[inline]
    pub fn block_dims(&self) -> BlockDims {
        self.block
    }

    /// Number of entries in the block table (`⌈Gx/Bx⌉·⌈Gy/By⌉·⌈Gt/Bt⌉`).
    #[inline]
    pub fn table_len(&self) -> usize {
        self.blocks.len()
    }

    /// Number of blocks currently allocated.
    #[inline]
    pub fn allocated_blocks(&self) -> usize {
        self.allocated
    }

    /// Approximate heap footprint: block payloads plus the block table.
    pub fn allocated_bytes(&self) -> usize {
        self.allocated * self.block.volume() * std::mem::size_of::<S>()
            + self.blocks.len() * std::mem::size_of::<Option<Box<[S]>>>()
    }

    /// Fraction of table entries that are allocated, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.allocated as f64 / self.blocks.len() as f64
        }
    }

    #[inline(always)]
    fn table_idx(&self, bx: usize, by: usize, bt: usize) -> usize {
        debug_assert!(bx < self.nbx && by < self.nby && bt < self.nbt);
        (bt * self.nby + by) * self.nbx + bx
    }

    /// Value at voxel `(x, y, t)`; zero if its block was never written.
    ///
    /// # Panics
    /// Panics (in debug builds) if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize, t: usize) -> S {
        debug_assert!(self.dims.contains(x, y, t));
        let ti = self.table_idx(x / self.block.bx, y / self.block.by, t / self.block.bt);
        match &self.blocks[ti] {
            None => S::ZERO,
            Some(b) => {
                b[self
                    .block
                    .idx(x % self.block.bx, y % self.block.by, t % self.block.bt)]
            }
        }
    }

    fn alloc_block(block: BlockDims) -> Box<[S]> {
        vec![S::ZERO; block.volume()].into_boxed_slice()
    }

    #[inline]
    fn block_mut(&mut self, bx: usize, by: usize, bt: usize) -> &mut [S] {
        let ti = self.table_idx(bx, by, bt);
        if self.blocks[ti].is_none() {
            self.blocks[ti] = Some(Self::alloc_block(self.block));
            self.allocated += 1;
        }
        self.blocks[ti].as_deref_mut().expect("just allocated")
    }

    /// Add `v` to voxel `(x, y, t)`, allocating its block if needed.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, t: usize, v: S) {
        debug_assert!(self.dims.contains(x, y, t));
        let (bx, by, bt) = (x / self.block.bx, y / self.block.by, t / self.block.bt);
        let (lx, ly, lt) = (x % self.block.bx, y % self.block.by, t % self.block.bt);
        let li = self.block.idx(lx, ly, lt);
        self.block_mut(bx, by, bt)[li] += v;
    }

    /// Accumulate a contiguous X-row of `f64` values starting at
    /// `(x0, y, t)`, splitting the row across block columns.
    ///
    /// This is the sparse counterpart of writing through
    /// [`Grid3::row_mut`](crate::Grid3::row_mut) and is the write primitive
    /// used by the sparse `PB-SYM` kernel: values are converted with
    /// [`Scalar::from_f64`] as they are added.
    pub fn add_row_f64(&mut self, y: usize, t: usize, x0: usize, vals: &[f64]) {
        if vals.is_empty() {
            return;
        }
        debug_assert!(self.dims.contains(x0 + vals.len() - 1, y, t));
        let (by, bt) = (y / self.block.by, t / self.block.bt);
        let (ly, lt) = (y % self.block.by, t % self.block.bt);
        let row_base = self.block.idx(0, ly, lt);
        let bxw = self.block.bx;
        let mut x = x0;
        let mut off = 0;
        while off < vals.len() {
            let bx = x / bxw;
            let lx = x % bxw;
            // Length of this row segment inside block column `bx`.
            let seg = (bxw - lx).min(vals.len() - off);
            let data = self.block_mut(bx, by, bt);
            let dst = &mut data[row_base + lx..row_base + lx + seg];
            for (d, &v) in dst.iter_mut().zip(&vals[off..off + seg]) {
                *d += S::from_f64(v);
            }
            x += seg;
            off += seg;
        }
    }

    /// Merge another sparse grid into this one (block-wise addition).
    ///
    /// This is the reduction step of the sparse domain-replication
    /// algorithm: only blocks allocated in `other` are touched, so the
    /// reduce cost is proportional to the *touched* volume, not `Θ(G)` per
    /// replica as in dense `PB-SYM-DR`.
    ///
    /// # Panics
    /// Panics if dimensions or block shapes differ.
    pub fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dims, other.dims, "grid shapes must match");
        assert_eq!(self.block, other.block, "block shapes must match");
        for ti in 0..other.blocks.len() {
            let Some(src) = &other.blocks[ti] else {
                continue;
            };
            if self.blocks[ti].is_none() {
                self.blocks[ti] = Some(src.clone());
                self.allocated += 1;
            } else {
                let dst = self.blocks[ti].as_deref_mut().expect("checked above");
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d += s;
                }
            }
        }
    }

    /// Materialize as a dense [`Grid3`] (allocating `Θ(G)`).
    pub fn to_dense(&self) -> Grid3<S> {
        let mut g = Grid3::zeros(self.dims);
        for (bt, by, bx, data) in self.iter_blocks() {
            let x0 = bx * self.block.bx;
            let y0 = by * self.block.by;
            let t0 = bt * self.block.bt;
            let xw = self.block.bx.min(self.dims.gx - x0);
            for lt in 0..self.block.bt.min(self.dims.gt - t0) {
                for ly in 0..self.block.by.min(self.dims.gy - y0) {
                    let src = &data[self.block.idx(0, ly, lt)..][..xw];
                    let dst = g.row_mut(y0 + ly, t0 + lt, x0, x0 + xw);
                    dst.copy_from_slice(src);
                }
            }
        }
        g
    }

    /// Iterate allocated blocks as `(bt, by, bx, data)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, usize, &[S])> + '_ {
        self.blocks.iter().enumerate().filter_map(move |(ti, b)| {
            b.as_deref().map(|data| {
                let bx = ti % self.nbx;
                let rest = ti / self.nbx;
                (rest / self.nby, rest % self.nby, bx, data)
            })
        })
    }

    /// Sum of all stored values (unallocated blocks contribute zero).
    pub fn sum(&self) -> f64 {
        self.iter_blocks()
            .map(|(bt, by, bx, data)| {
                // Padding voxels (outside `dims` in edge blocks) are never
                // written, so summing the whole payload is safe.
                let _ = (bt, by, bx);
                data.iter().map(|v| v.to_f64()).sum::<f64>()
            })
            .sum()
    }

    /// Number of voxels with a non-zero stored value.
    pub fn nonzero_count(&self) -> usize {
        self.iter_blocks()
            .map(|(_, _, _, data)| data.iter().filter(|v| **v != S::ZERO).count())
            .sum()
    }

    /// Upper bound on the number of blocks a voxel range can touch.
    pub fn blocks_touching(&self, r: VoxelRange) -> usize {
        let r = r.clipped(self.dims);
        if r.is_empty() {
            return 0;
        }
        let nx = r.x1.div_ceil(self.block.bx) - r.x0 / self.block.bx;
        let ny = r.y1.div_ceil(self.block.by) - r.y0 / self.block.by;
        let nt = r.t1.div_ceil(self.block.bt) - r.t0 / self.block.bt;
        nx * ny * nt
    }

    /// Maximum absolute difference against a dense grid of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff_dense(&self, dense: &Grid3<S>) -> f64 {
        assert_eq!(self.dims, dense.dims(), "grid shapes must match");
        let mut worst = 0.0f64;
        for (x, y, t) in self.dims.iter() {
            let d = (self.get(x, y, t).to_f64() - dense.get(x, y, t).to_f64()).abs();
            worst = worst.max(d);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_grid_reads_zero_without_allocating() {
        let g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(100, 100, 50));
        assert_eq!(g.get(99, 99, 49), 0.0);
        assert_eq!(g.allocated_blocks(), 0);
        assert_eq!(g.occupancy(), 0.0);
    }

    #[test]
    fn add_allocates_exactly_one_block() {
        let mut g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(100, 100, 50));
        g.add(5, 5, 5, 2.0);
        g.add(6, 5, 5, 1.0);
        assert_eq!(g.allocated_blocks(), 1);
        assert_eq!(g.get(5, 5, 5), 2.0);
        assert_eq!(g.get(6, 5, 5), 1.0);
        assert_eq!(g.get(7, 5, 5), 0.0);
    }

    #[test]
    fn table_len_is_ceil_division() {
        let g: SparseGrid3<f32> =
            SparseGrid3::with_blocks(GridDims::new(33, 9, 8), BlockDims::new(32, 8, 8));
        // 2 block columns × 2 block rows × 1 block layer.
        assert_eq!(g.table_len(), 4);
    }

    #[test]
    fn add_row_spans_block_boundaries() {
        let dims = GridDims::new(70, 10, 10);
        let mut g: SparseGrid3<f64> = SparseGrid3::with_blocks(dims, BlockDims::new(32, 8, 8));
        let vals: Vec<f64> = (0..70).map(|i| i as f64).collect();
        g.add_row_f64(3, 4, 0, &vals);
        // The row crosses 3 block columns.
        assert_eq!(g.allocated_blocks(), 3);
        for x in 0..70 {
            assert_eq!(g.get(x, 3, 4), x as f64, "x={x}");
        }
        assert_eq!(g.get(0, 4, 4), 0.0);
    }

    #[test]
    fn add_row_accumulates() {
        let mut g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(40, 8, 8));
        g.add_row_f64(0, 0, 4, &[1.0, 2.0]);
        g.add_row_f64(0, 0, 5, &[10.0]);
        assert_eq!(g.get(4, 0, 0), 1.0);
        assert_eq!(g.get(5, 0, 0), 12.0);
    }

    #[test]
    fn to_dense_roundtrip() {
        let dims = GridDims::new(50, 20, 12);
        let mut g: SparseGrid3<f64> = SparseGrid3::with_blocks(dims, BlockDims::new(16, 8, 4));
        g.add(0, 0, 0, 1.0);
        g.add(49, 19, 11, 2.0); // edge block (partially outside)
        g.add(25, 10, 6, 3.0);
        let dense = g.to_dense();
        assert_eq!(dense.get(0, 0, 0), 1.0);
        assert_eq!(dense.get(49, 19, 11), 2.0);
        assert_eq!(dense.get(25, 10, 6), 3.0);
        assert_eq!(g.max_abs_diff_dense(&dense), 0.0);
        let total: f64 = dense.as_slice().iter().sum();
        assert_eq!(total, 6.0);
        assert_eq!(g.sum(), 6.0);
    }

    #[test]
    fn merge_from_adds_blockwise() {
        let dims = GridDims::new(40, 16, 8);
        let mut a: SparseGrid3<f64> = SparseGrid3::new(dims);
        let mut b: SparseGrid3<f64> = SparseGrid3::new(dims);
        a.add(1, 1, 1, 1.0);
        b.add(1, 1, 1, 2.0); // same block
        b.add(39, 15, 7, 5.0); // block only in b
        a.merge_from(&b);
        assert_eq!(a.get(1, 1, 1), 3.0);
        assert_eq!(a.get(39, 15, 7), 5.0);
        assert_eq!(a.allocated_blocks(), 2);
        // b unchanged.
        assert_eq!(b.get(1, 1, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "block shapes")]
    fn merge_mismatched_blocks_panics() {
        let dims = GridDims::new(8, 8, 8);
        let mut a: SparseGrid3<f64> = SparseGrid3::with_blocks(dims, BlockDims::new(4, 4, 4));
        let b: SparseGrid3<f64> = SparseGrid3::with_blocks(dims, BlockDims::new(8, 8, 8));
        a.merge_from(&b);
    }

    #[test]
    fn nonzero_count_ignores_padding() {
        // 5-wide grid with 4-wide blocks: edge block has 3 padding columns.
        let mut g: SparseGrid3<f64> =
            SparseGrid3::with_blocks(GridDims::new(5, 4, 4), BlockDims::new(4, 4, 4));
        g.add(4, 0, 0, 1.0);
        assert_eq!(g.nonzero_count(), 1);
        assert_eq!(g.allocated_blocks(), 1);
    }

    #[test]
    fn blocks_touching_counts_straddled_columns() {
        let g: SparseGrid3<f32> =
            SparseGrid3::with_blocks(GridDims::new(64, 64, 64), BlockDims::new(32, 8, 8));
        let r = VoxelRange {
            x0: 30,
            x1: 35, // straddles x-blocks 0 and 1
            y0: 0,
            y1: 8, // one y-block
            t0: 7,
            t1: 9, // straddles t-blocks 0 and 1
        };
        assert_eq!(
            g.blocks_touching(r),
            4,
            "2 x-blocks x 1 y-block x 2 t-blocks"
        );
        assert_eq!(g.blocks_touching(VoxelRange::empty()), 0);
    }

    #[test]
    fn allocated_bytes_grows_with_blocks() {
        let mut g: SparseGrid3<f32> =
            SparseGrid3::with_blocks(GridDims::new(64, 64, 64), BlockDims::new(8, 8, 8));
        let empty = g.allocated_bytes();
        g.add(0, 0, 0, 1.0);
        assert_eq!(g.allocated_bytes(), empty + 512 * 4);
    }

    proptest! {
        /// Random scattered adds agree voxel-for-voxel with a dense grid.
        #[test]
        fn sparse_matches_dense_scatter(
            writes in proptest::collection::vec(
                (0usize..50, 0usize..30, 0usize..20, -10.0f64..10.0), 0..200),
            bx in 1usize..40, by in 1usize..40, bt in 1usize..40,
        ) {
            let dims = GridDims::new(50, 30, 20);
            let mut sparse: SparseGrid3<f64> =
                SparseGrid3::with_blocks(dims, BlockDims::new(bx, by, bt));
            let mut dense: Grid3<f64> = Grid3::zeros(dims);
            for &(x, y, t, v) in &writes {
                sparse.add(x, y, t, v);
                dense.add(x, y, t, v);
            }
            prop_assert_eq!(sparse.max_abs_diff_dense(&dense), 0.0);
            prop_assert_eq!(sparse.to_dense(), dense);
        }

        /// Row writes agree with per-voxel writes, for any block shape and
        /// any row placement (including rows crossing many blocks).
        #[test]
        fn add_row_matches_pointwise(
            bx in 1usize..20,
            x0 in 0usize..40,
            len in 0usize..24,
            y in 0usize..16, t in 0usize..16,
            seed in 0u64..1000,
        ) {
            let dims = GridDims::new(64, 16, 16);
            let mut by_row: SparseGrid3<f64> =
                SparseGrid3::with_blocks(dims, BlockDims::new(bx, 4, 4));
            let mut by_voxel = by_row.clone();
            let vals: Vec<f64> = (0..len.min(64 - x0))
                .map(|i| ((seed + i as u64) % 17) as f64 - 8.0)
                .collect();
            by_row.add_row_f64(y, t, x0, &vals);
            for (i, &v) in vals.iter().enumerate() {
                by_voxel.add(x0 + i, y, t, v);
            }
            prop_assert_eq!(by_row.to_dense(), by_voxel.to_dense());
            prop_assert_eq!(by_row.allocated_blocks(), by_voxel.allocated_blocks());
        }

        /// Merging a split write-set equals writing everything into one grid.
        #[test]
        fn merge_is_addition(
            writes in proptest::collection::vec(
                (0usize..32, 0usize..32, 0usize..16, -5.0f64..5.0, proptest::bool::ANY),
                0..100),
        ) {
            let dims = GridDims::new(32, 32, 16);
            let mut whole: SparseGrid3<f64> = SparseGrid3::new(dims);
            let mut left: SparseGrid3<f64> = SparseGrid3::new(dims);
            let mut right: SparseGrid3<f64> = SparseGrid3::new(dims);
            for &(x, y, t, v, goes_left) in &writes {
                whole.add(x, y, t, v);
                if goes_left { left.add(x, y, t, v) } else { right.add(x, y, t, v) }
            }
            left.merge_from(&right);
            prop_assert_eq!(left.to_dense(), whole.to_dense());
        }

        /// Allocation never exceeds the blocks-touching bound of the
        /// written region, and occupancy stays in [0, 1].
        #[test]
        fn allocation_bounded_by_touched_region(
            xs in proptest::collection::vec((0usize..64, 0usize..64, 0usize..32), 1..50),
        ) {
            let dims = GridDims::new(64, 64, 32);
            let mut g: SparseGrid3<f32> = SparseGrid3::new(dims);
            let mut r = VoxelRange::empty();
            for &(x, y, t) in &xs {
                g.add(x, y, t, 1.0);
                let single = VoxelRange { x0: x, x1: x + 1, y0: y, y1: y + 1, t0: t, t1: t + 1 };
                r = if r.is_empty() { single } else {
                    VoxelRange {
                        x0: r.x0.min(x), x1: r.x1.max(x + 1),
                        y0: r.y0.min(y), y1: r.y1.max(y + 1),
                        t0: r.t0.min(t), t1: r.t1.max(t + 1),
                    }
                };
            }
            prop_assert!(g.allocated_blocks() <= g.blocks_touching(r));
            prop_assert!(g.occupancy() > 0.0 && g.occupancy() <= 1.0);
        }
    }
}
