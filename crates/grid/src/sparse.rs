//! Morton-brick sparse 3-D voxel grid.
//!
//! The paper's complexity analysis (§3.1) splits the point-based algorithms
//! into an initialization term `Θ(Gx·Gy·Gt)` and a compute term
//! `Θ(n·Hs²·Ht)`, and Figure 7 shows the initialization term *dominating*
//! the sparse instances (Flu: 31K points spread over a 20 GB world grid).
//! §6.3 further observes that zeroing memory parallelizes poorly (≈3× on 16
//! threads), capping every parallel algorithm's speedup on those instances.
//!
//! [`SparseGrid3`] removes the `Θ(G)` term instead of parallelizing it: the
//! domain is tiled by fixed 8³ **bricks** inside Morton-indexed chunks (see
//! [`crate::brick`] for the layout and [`crate::morton`] for the encoding),
//! and a brick is allocated (and zeroed) only when a density cylinder first
//! touches it. Initialization becomes `Θ(G/512)` pointer-table setup, and
//! total memory is proportional to the *touched* volume `O(n·Hs²·Ht)`
//! rather than the domain volume. Unlike the row-major block table this
//! replaced, brick slots are CAS-allocated ([`crate::brick`]'s lock-free
//! protocol), so parallel scatters share one grid through
//! [`SharedSparseGrid`] instead of merging per-thread replicas; and Morton
//! ordering keeps spatially adjacent bricks adjacent in the slot table, so
//! a cylinder's brick set stays cache-coherent. On dense instances (eBird)
//! the dense [`Grid3`](crate::Grid3) remains preferable since every brick
//! gets allocated anyway and the table adds one indirection per 8-voxel
//! row segment.

use crate::axpy::axpy_row;
use crate::brick::{BrickTable, BRICK_EDGE};
use crate::dims::GridDims;
use crate::grid3::Grid3;
use crate::range::VoxelRange;
use crate::scalar::Scalar;

/// A brick-sparse 3-D grid: Morton-chunked tables of lazily allocated 8³
/// bricks.
///
/// Reads of never-written voxels return zero without allocating. All
/// accumulation APIs mirror [`Grid3`] so the STKDE kernels can target
/// either backend; [`SharedSparseGrid`] additionally mirrors
/// [`SharedGrid`](crate::SharedGrid) for partitioned parallel writers.
///
/// ```
/// use stkde_grid::{GridDims, SparseGrid3};
///
/// // A grid that would be 256 MB dense; nothing is allocated up front.
/// let mut g: SparseGrid3<f32> = SparseGrid3::new(GridDims::new(1024, 1024, 64));
/// assert_eq!(g.allocated_bricks(), 0);
/// g.add(500, 500, 30, 1.0);
/// assert_eq!(g.get(500, 500, 30), 1.0);
/// assert_eq!(g.get(0, 0, 0), 0.0);       // never-written voxels read zero
/// assert_eq!(g.allocated_bricks(), 1);   // one 8³ brick materialized
/// ```
pub struct SparseGrid3<S> {
    table: BrickTable<S>,
}

impl<S: Scalar> SparseGrid3<S> {
    /// Empty sparse grid over `dims`; allocates only the brick pointer
    /// table (8 bytes per brick position).
    pub fn new(dims: GridDims) -> Self {
        SparseGrid3 {
            table: BrickTable::new(dims),
        }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.table.dims()
    }

    /// The underlying brick table (shared-writer entry points live there).
    /// Only the `model`-feature test facade reaches through this.
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    #[inline]
    pub(crate) fn table(&self) -> &BrickTable<S> {
        &self.table
    }

    /// Number of brick positions inside the domain
    /// (`⌈Gx/8⌉·⌈Gy/8⌉·⌈Gt/8⌉`) — the denominator for [`occupancy`](Self::occupancy).
    #[inline]
    pub fn table_len(&self) -> usize {
        self.table.domain_bricks()
    }

    /// Number of bricks currently materialized.
    #[inline]
    pub fn allocated_bricks(&self) -> usize {
        self.table.allocated()
    }

    /// Brick allocations that lost the install CAS to a concurrent
    /// writer (always zero after purely sequential writes).
    #[inline]
    pub fn alloc_cas_races(&self) -> u64 {
        self.table.cas_races()
    }

    /// Approximate heap footprint: brick payloads plus the pointer table.
    pub fn allocated_bytes(&self) -> usize {
        self.table.allocated_bytes()
    }

    /// Fraction of in-domain brick positions that are allocated, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        let denom = self.table.domain_bricks();
        if denom == 0 {
            0.0
        } else {
            self.table.allocated() as f64 / denom as f64
        }
    }

    /// Value at voxel `(x, y, t)`; zero if its brick was never written.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize, t: usize) -> S {
        self.table.get(x, y, t)
    }

    /// Add `v` to voxel `(x, y, t)`, materializing its brick if needed.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, t: usize, v: S) {
        // SAFETY: `&mut self` proves exclusive access — no concurrent
        // writer can target any voxel.
        unsafe { self.table.add_shared(x, y, t, v) }
    }

    /// `row[x0..x0+ks.len()] += kt · ks`, splitting the row across brick
    /// columns and materializing bricks on the way.
    ///
    /// Each ≤8-voxel segment goes through the same stride-1
    /// [`axpy_row`](crate::axpy_row) kernel as the dense path, and
    /// `axpy_row` is elementwise, so a row written here is bit-identical
    /// to the same row written into a dense [`Grid3`].
    #[inline]
    pub fn axpy_row(&mut self, y: usize, t: usize, x0: usize, ks: &[S], kt: S) {
        // SAFETY: `&mut self` proves exclusive access.
        unsafe {
            self.table
                .row_segments_shared(y, t, x0, ks.len(), |seg, off| {
                    axpy_row(seg, &ks[off..off + seg.len()], kt);
                });
        }
    }

    /// Accumulate a contiguous X-row of `f64` values starting at
    /// `(x0, y, t)`, splitting the row across brick columns.
    ///
    /// Values are converted with [`Scalar::from_f64`] as they are added;
    /// native-precision writers should prefer [`axpy_row`](Self::axpy_row).
    pub fn add_row_f64(&mut self, y: usize, t: usize, x0: usize, vals: &[f64]) {
        // SAFETY: `&mut self` proves exclusive access.
        unsafe {
            self.table
                .row_segments_shared(y, t, x0, vals.len(), |seg, off| {
                    let src = &vals[off..off + seg.len()];
                    for (d, &v) in seg.iter_mut().zip(src) {
                        *d += S::from_f64(v);
                    }
                });
        }
    }

    /// Merge another sparse grid into this one (brick-wise addition).
    /// Only bricks allocated in `other` are touched.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn merge_from(&mut self, other: &Self) {
        self.table.merge_from(&other.table);
    }

    /// Materialize as a dense [`Grid3`] (allocating `Θ(G)`).
    pub fn to_dense(&self) -> Grid3<S> {
        let dims = self.dims();
        let mut g = Grid3::zeros(dims);
        self.table.for_each_brick(|bx, by, bt, data| {
            let (x0, y0, t0) = (bx * BRICK_EDGE, by * BRICK_EDGE, bt * BRICK_EDGE);
            let xw = BRICK_EDGE.min(dims.gx - x0);
            for lt in 0..BRICK_EDGE.min(dims.gt - t0) {
                for ly in 0..BRICK_EDGE.min(dims.gy - y0) {
                    let src = &data[(lt * BRICK_EDGE + ly) * BRICK_EDGE..][..xw];
                    g.row_mut(y0 + ly, t0 + lt, x0, x0 + xw)
                        .copy_from_slice(src);
                }
            }
        });
        g
    }

    /// Visit every materialized brick as `(bx, by, bt, payload)`; the
    /// payload is the full 512-cell X-fastest slab (padding cells of edge
    /// bricks read zero).
    pub fn for_each_brick(&self, f: impl FnMut(usize, usize, usize, &[S])) {
        self.table.for_each_brick(f)
    }

    /// Sum of all stored values (unallocated bricks contribute zero).
    pub fn sum(&self) -> f64 {
        let mut total = 0.0;
        // Padding voxels (outside `dims` in edge bricks) are never
        // written, so summing whole payloads is safe.
        self.for_each_brick(|_, _, _, data| {
            total += data.iter().map(|v| v.to_f64()).sum::<f64>();
        });
        total
    }

    /// Number of voxels with a non-zero stored value.
    pub fn nonzero_count(&self) -> usize {
        let mut n = 0;
        self.for_each_brick(|_, _, _, data| {
            n += data.iter().filter(|v| **v != S::ZERO).count();
        });
        n
    }

    /// Upper bound on the number of bricks a voxel range can touch.
    pub fn bricks_touching(&self, r: VoxelRange) -> usize {
        let r = r.clipped(self.dims());
        if r.is_empty() {
            return 0;
        }
        let nx = r.x1.div_ceil(BRICK_EDGE) - r.x0 / BRICK_EDGE;
        let ny = r.y1.div_ceil(BRICK_EDGE) - r.y0 / BRICK_EDGE;
        let nt = r.t1.div_ceil(BRICK_EDGE) - r.t0 / BRICK_EDGE;
        nx * ny * nt
    }

    /// Maximum absolute difference against a dense grid of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff_dense(&self, dense: &Grid3<S>) -> f64 {
        assert_eq!(self.dims(), dense.dims(), "grid shapes must match");
        let mut worst = 0.0f64;
        for (x, y, t) in self.dims().iter() {
            let d = (self.get(x, y, t).to_f64() - dense.get(x, y, t).to_f64()).abs();
            worst = worst.max(d);
        }
        worst
    }
}

impl<S: Scalar> Clone for SparseGrid3<S> {
    fn clone(&self) -> Self {
        SparseGrid3 {
            table: self.table.clone(),
        }
    }
}

impl<S: Scalar> std::fmt::Debug for SparseGrid3<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseGrid3")
            .field("table", &self.table)
            .finish()
    }
}

/// A sparse grid opened for concurrent partitioned writers, mirroring
/// [`SharedGrid`](crate::SharedGrid) on the dense side.
///
/// Construction takes `&mut SparseGrid3`, so for its lifetime this handle
/// is the *only* route to the grid; workers share it by reference and
/// write through [`axpy_row`](Self::axpy_row). Brick **slots** may be
/// raced freely (the CAS protocol in [`crate::brick`] materializes each
/// brick exactly once); payload **voxels** must be disjoint across
/// concurrent writers, which the parallel scatter guarantees by
/// partitioning the time axis into worker-owned slabs.
pub struct SharedSparseGrid<'a, S> {
    table: &'a BrickTable<S>,
}

impl<'a, S: Scalar> SharedSparseGrid<'a, S> {
    /// Open `grid` for shared writing. The exclusive borrow guarantees no
    /// other access for the handle's lifetime.
    pub fn new(grid: &'a mut SparseGrid3<S>) -> Self {
        SharedSparseGrid { table: &grid.table }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.table.dims()
    }

    /// `row[x0..x0+ks.len()] += kt · ks`, exactly like
    /// [`SparseGrid3::axpy_row`], from any worker thread.
    ///
    /// # Safety
    /// Concurrent callers must target disjoint voxels: the written row
    /// `(y, t, x0..x0+ks.len())` must not overlap any row another thread
    /// writes concurrently.
    #[inline]
    pub unsafe fn axpy_row(&self, y: usize, t: usize, x0: usize, ks: &[S], kt: S) {
        // SAFETY: voxel disjointness is forwarded to the caller; slot
        // races are resolved by the brick CAS protocol.
        unsafe {
            self.table
                .row_segments_shared(y, t, x0, ks.len(), |seg, off| {
                    axpy_row(seg, &ks[off..off + seg.len()], kt);
                });
        }
    }
}

// SAFETY: the handle only exposes `unsafe` writes whose contract demands
// voxel-disjoint access, and the brick table's slot allocation is
// lock-free and thread-safe; sharing the handle across workers is the
// intended use (same argument as the dense `SharedGrid`).
unsafe impl<S: Scalar> Sync for SharedSparseGrid<'_, S> {}

/// Re-exported so callers can size buffers without reaching into
/// [`crate::brick`].
pub use crate::brick::BRICK_EDGE as SPARSE_BRICK_EDGE;
/// Voxels per sparse brick.
pub use crate::brick::BRICK_VOLUME as SPARSE_BRICK_VOLUME;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brick::BRICK_VOLUME;
    use proptest::prelude::*;

    #[test]
    fn empty_grid_reads_zero_without_allocating() {
        let g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(100, 100, 50));
        assert_eq!(g.get(99, 99, 49), 0.0);
        assert_eq!(g.allocated_bricks(), 0);
        assert_eq!(g.occupancy(), 0.0);
        assert_eq!(g.alloc_cas_races(), 0);
    }

    #[test]
    fn add_allocates_exactly_one_brick() {
        let mut g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(100, 100, 50));
        g.add(5, 5, 5, 2.0);
        g.add(6, 5, 5, 1.0);
        assert_eq!(g.allocated_bricks(), 1);
        assert_eq!(g.get(5, 5, 5), 2.0);
        assert_eq!(g.get(6, 5, 5), 1.0);
        assert_eq!(g.get(7, 5, 5), 0.0);
    }

    #[test]
    fn table_len_is_ceil_division() {
        let g: SparseGrid3<f32> = SparseGrid3::new(GridDims::new(33, 9, 8));
        // ⌈33/8⌉ × ⌈9/8⌉ × ⌈8/8⌉ = 5 × 2 × 1 brick positions.
        assert_eq!(g.table_len(), 10);
    }

    #[test]
    fn add_row_spans_brick_boundaries() {
        let dims = GridDims::new(70, 10, 10);
        let mut g: SparseGrid3<f64> = SparseGrid3::new(dims);
        let vals: Vec<f64> = (0..70).map(|i| i as f64).collect();
        g.add_row_f64(3, 4, 0, &vals);
        // The row crosses ⌈70/8⌉ = 9 brick columns.
        assert_eq!(g.allocated_bricks(), 9);
        for x in 0..70 {
            assert_eq!(g.get(x, 3, 4), x as f64, "x={x}");
        }
        assert_eq!(g.get(0, 4, 4), 0.0);
    }

    #[test]
    fn add_row_accumulates() {
        let mut g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(40, 8, 8));
        g.add_row_f64(0, 0, 4, &[1.0, 2.0]);
        g.add_row_f64(0, 0, 5, &[10.0]);
        assert_eq!(g.get(4, 0, 0), 1.0);
        assert_eq!(g.get(5, 0, 0), 12.0);
    }

    #[test]
    fn to_dense_roundtrip() {
        let dims = GridDims::new(50, 20, 12);
        let mut g: SparseGrid3<f64> = SparseGrid3::new(dims);
        g.add(0, 0, 0, 1.0);
        g.add(49, 19, 11, 2.0); // edge brick (partially outside)
        g.add(25, 10, 6, 3.0);
        let dense = g.to_dense();
        assert_eq!(dense.get(0, 0, 0), 1.0);
        assert_eq!(dense.get(49, 19, 11), 2.0);
        assert_eq!(dense.get(25, 10, 6), 3.0);
        assert_eq!(g.max_abs_diff_dense(&dense), 0.0);
        let total: f64 = dense.as_slice().iter().sum();
        assert_eq!(total, 6.0);
        assert_eq!(g.sum(), 6.0);
    }

    #[test]
    fn merge_from_adds_brickwise() {
        let dims = GridDims::new(40, 16, 8);
        let mut a: SparseGrid3<f64> = SparseGrid3::new(dims);
        let mut b: SparseGrid3<f64> = SparseGrid3::new(dims);
        a.add(1, 1, 1, 1.0);
        b.add(1, 1, 1, 2.0); // same brick
        b.add(39, 15, 7, 5.0); // brick only in b
        a.merge_from(&b);
        assert_eq!(a.get(1, 1, 1), 3.0);
        assert_eq!(a.get(39, 15, 7), 5.0);
        assert_eq!(a.allocated_bricks(), 2);
        // b unchanged.
        assert_eq!(b.get(1, 1, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "grid shapes")]
    fn merge_mismatched_dims_panics() {
        let mut a: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(8, 8, 8));
        let b: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(16, 8, 8));
        a.merge_from(&b);
    }

    #[test]
    fn nonzero_count_ignores_padding() {
        // 5-wide grid inside one 8³ brick: 3 padding columns per row.
        let mut g: SparseGrid3<f64> = SparseGrid3::new(GridDims::new(5, 4, 4));
        g.add(4, 0, 0, 1.0);
        assert_eq!(g.nonzero_count(), 1);
        assert_eq!(g.allocated_bricks(), 1);
    }

    #[test]
    fn bricks_touching_counts_straddled_columns() {
        let g: SparseGrid3<f32> = SparseGrid3::new(GridDims::new(64, 64, 64));
        let r = VoxelRange {
            x0: 6,
            x1: 11, // straddles x-bricks 0 and 1
            y0: 0,
            y1: 8, // one y-brick
            t0: 7,
            t1: 9, // straddles t-bricks 0 and 1
        };
        assert_eq!(
            g.bricks_touching(r),
            4,
            "2 x-bricks × 1 y-brick × 2 t-bricks"
        );
        assert_eq!(g.bricks_touching(VoxelRange::empty()), 0);
    }

    #[test]
    fn allocated_bytes_grows_with_bricks() {
        let mut g: SparseGrid3<f32> = SparseGrid3::new(GridDims::new(64, 64, 64));
        let empty = g.allocated_bytes();
        g.add(0, 0, 0, 1.0);
        assert_eq!(g.allocated_bytes(), empty + BRICK_VOLUME * 4);
    }

    #[test]
    fn shared_writers_on_disjoint_rows_match_sequential() {
        let dims = GridDims::new(48, 16, 16);
        let ks: Vec<f32> = (0..20).map(|i| 0.25 + i as f32).collect();

        let mut seq: SparseGrid3<f32> = SparseGrid3::new(dims);
        for t in 0..16 {
            for y in 0..16 {
                seq.axpy_row(y, t, 3, &ks, 0.5);
            }
        }

        let mut par: SparseGrid3<f32> = SparseGrid3::new(dims);
        {
            let shared = SharedSparseGrid::new(&mut par);
            std::thread::scope(|s| {
                for w in 0..4usize {
                    let shared = &shared;
                    let ks = &ks;
                    // Each worker owns t-layers w*4 .. w*4+4: disjoint voxels.
                    s.spawn(move || {
                        for t in w * 4..w * 4 + 4 {
                            for y in 0..16 {
                                // SAFETY: workers own disjoint t-layers.
                                unsafe { shared.axpy_row(y, t, 3, ks, 0.5) };
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(par.to_dense(), seq.to_dense());
        assert_eq!(par.allocated_bricks(), seq.allocated_bricks());
    }

    proptest! {
        /// Random scattered adds agree voxel-for-voxel with a dense grid.
        #[test]
        fn sparse_matches_dense_scatter(
            writes in proptest::collection::vec(
                (0usize..50, 0usize..30, 0usize..20, -10.0f64..10.0), 0..200),
        ) {
            let dims = GridDims::new(50, 30, 20);
            let mut sparse: SparseGrid3<f64> = SparseGrid3::new(dims);
            let mut dense: Grid3<f64> = Grid3::zeros(dims);
            for &(x, y, t, v) in &writes {
                sparse.add(x, y, t, v);
                dense.add(x, y, t, v);
            }
            prop_assert_eq!(sparse.max_abs_diff_dense(&dense), 0.0);
            prop_assert_eq!(sparse.to_dense(), dense);
        }

        /// Row writes agree with per-voxel writes for any row placement
        /// (including rows crossing many bricks).
        #[test]
        fn add_row_matches_pointwise(
            x0 in 0usize..40,
            len in 0usize..24,
            y in 0usize..16, t in 0usize..16,
            seed in 0u64..1000,
        ) {
            let dims = GridDims::new(64, 16, 16);
            let mut by_row: SparseGrid3<f64> = SparseGrid3::new(dims);
            let mut by_voxel = by_row.clone();
            let vals: Vec<f64> = (0..len.min(64 - x0))
                .map(|i| ((seed + i as u64) % 17) as f64 - 8.0)
                .collect();
            by_row.add_row_f64(y, t, x0, &vals);
            for (i, &v) in vals.iter().enumerate() {
                by_voxel.add(x0 + i, y, t, v);
            }
            prop_assert_eq!(by_row.to_dense(), by_voxel.to_dense());
            prop_assert_eq!(by_row.allocated_bricks(), by_voxel.allocated_bricks());
        }

        /// `axpy_row` into a sparse grid is bit-identical to `axpy_row`
        /// into a dense grid, for f32, across brick boundaries.
        #[test]
        fn axpy_row_bitwise_matches_dense(
            x0 in 0usize..40,
            len in 1usize..24,
            y in 0usize..16, t in 0usize..16,
            kt in 0.01f32..3.0,
            seed in 0u64..1000,
        ) {
            let dims = GridDims::new(64, 16, 16);
            let len = len.min(64 - x0);
            let ks: Vec<f32> = (0..len)
                .map(|i| ((seed + i as u64) % 23) as f32 * 0.37)
                .collect();
            let mut sparse: SparseGrid3<f32> = SparseGrid3::new(dims);
            let mut dense: Grid3<f32> = Grid3::zeros(dims);
            // Two passes so accumulation order is exercised too.
            for _ in 0..2 {
                sparse.axpy_row(y, t, x0, &ks, kt);
                crate::axpy_row(dense.row_mut(y, t, x0, x0 + len), &ks, kt);
            }
            prop_assert_eq!(sparse.to_dense(), dense);
        }

        /// Merging a split write-set equals writing everything into one grid.
        #[test]
        fn merge_is_addition(
            writes in proptest::collection::vec(
                (0usize..32, 0usize..32, 0usize..16, -5.0f64..5.0, proptest::bool::ANY),
                0..100),
        ) {
            let dims = GridDims::new(32, 32, 16);
            let mut whole: SparseGrid3<f64> = SparseGrid3::new(dims);
            let mut left: SparseGrid3<f64> = SparseGrid3::new(dims);
            let mut right: SparseGrid3<f64> = SparseGrid3::new(dims);
            for &(x, y, t, v, goes_left) in &writes {
                whole.add(x, y, t, v);
                if goes_left { left.add(x, y, t, v) } else { right.add(x, y, t, v) }
            }
            left.merge_from(&right);
            prop_assert_eq!(left.to_dense(), whole.to_dense());
        }

        /// Allocation never exceeds the bricks-touching bound of the
        /// written region, and occupancy stays in [0, 1].
        #[test]
        fn allocation_bounded_by_touched_region(
            xs in proptest::collection::vec((0usize..64, 0usize..64, 0usize..32), 1..50),
        ) {
            let dims = GridDims::new(64, 64, 32);
            let mut g: SparseGrid3<f32> = SparseGrid3::new(dims);
            let mut r = VoxelRange::empty();
            for &(x, y, t) in &xs {
                g.add(x, y, t, 1.0);
                let single = VoxelRange { x0: x, x1: x + 1, y0: y, y1: y + 1, t0: t, t1: t + 1 };
                r = if r.is_empty() { single } else {
                    VoxelRange {
                        x0: r.x0.min(x), x1: r.x1.max(x + 1),
                        y0: r.y0.min(y), y1: r.y1.max(y + 1),
                        t0: r.t0.min(t), t1: r.t1.max(t + 1),
                    }
                };
            }
            prop_assert!(g.allocated_bricks() <= g.bricks_touching(r));
            prop_assert!(g.occupancy() > 0.0 && g.occupancy() <= 1.0);
        }
    }
}
