//! Voxel-space grid dimensions and flat indexing.

use serde::{Deserialize, Serialize};

/// Size of the voxel grid: `Gx × Gy × Gt` (Table 1 of the paper).
///
/// The flat memory layout is **X-fastest**:
/// `idx = (T · Gy + Y) · Gx + X`, so that the innermost loop of the
/// point-based algorithms walks stride-1 memory, matching the C++ loop nest
/// of the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridDims {
    /// Number of voxels along the x (longitude/easting) axis, `Gx`.
    pub gx: usize,
    /// Number of voxels along the y (latitude/northing) axis, `Gy`.
    pub gy: usize,
    /// Number of voxels along the t (time) axis, `Gt`.
    pub gt: usize,
}

impl GridDims {
    /// Create grid dimensions. All axes must be non-zero.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(gx: usize, gy: usize, gt: usize) -> Self {
        assert!(
            gx > 0 && gy > 0 && gt > 0,
            "grid dimensions must be non-zero"
        );
        Self { gx, gy, gt }
    }

    /// Total number of voxels, `Gx · Gy · Gt`.
    #[inline]
    pub fn volume(&self) -> usize {
        self.gx * self.gy * self.gt
    }

    /// Size in bytes of a grid of `S` over these dimensions.
    #[inline]
    pub fn bytes<S>(&self) -> usize {
        self.volume() * std::mem::size_of::<S>()
    }

    /// Flat index of voxel `(x, y, t)`.
    ///
    /// Debug builds assert bounds; release builds rely on the caller.
    #[inline(always)]
    pub fn idx(&self, x: usize, y: usize, t: usize) -> usize {
        debug_assert!(x < self.gx && y < self.gy && t < self.gt);
        (t * self.gy + y) * self.gx + x
    }

    /// Inverse of [`GridDims::idx`]: voxel coordinates of a flat index.
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.volume());
        let x = idx % self.gx;
        let rest = idx / self.gx;
        let y = rest % self.gy;
        let t = rest / self.gy;
        (x, y, t)
    }

    /// `true` if `(x, y, t)` is a valid voxel coordinate.
    #[inline]
    pub fn contains(&self, x: usize, y: usize, t: usize) -> bool {
        x < self.gx && y < self.gy && t < self.gt
    }

    /// Iterator over all voxel coordinates in layout order
    /// (X fastest, then Y, then T).
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (gx, gy, gt) = (self.gx, self.gy, self.gt);
        (0..gt).flat_map(move |t| (0..gy).flat_map(move |y| (0..gx).map(move |x| (x, y, t))))
    }
}

impl std::fmt::Display for GridDims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.gx, self.gy, self.gt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn idx_is_x_fastest() {
        let d = GridDims::new(4, 3, 2);
        assert_eq!(d.idx(0, 0, 0), 0);
        assert_eq!(d.idx(1, 0, 0), 1);
        assert_eq!(d.idx(0, 1, 0), 4);
        assert_eq!(d.idx(0, 0, 1), 12);
        assert_eq!(d.idx(3, 2, 1), 23);
    }

    #[test]
    fn volume_and_bytes() {
        let d = GridDims::new(10, 20, 30);
        assert_eq!(d.volume(), 6000);
        assert_eq!(d.bytes::<f32>(), 24_000);
        assert_eq!(d.bytes::<f64>(), 48_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_panics() {
        let _ = GridDims::new(0, 1, 1);
    }

    #[test]
    fn iter_visits_layout_order() {
        let d = GridDims::new(2, 2, 2);
        let coords: Vec<_> = d.iter().collect();
        assert_eq!(coords.len(), 8);
        assert_eq!(coords[0], (0, 0, 0));
        assert_eq!(coords[1], (1, 0, 0));
        assert_eq!(coords[2], (0, 1, 0));
        assert_eq!(coords[4], (0, 0, 1));
        // Layout order means flat indices are consecutive.
        for (i, &(x, y, t)) in coords.iter().enumerate() {
            assert_eq!(d.idx(x, y, t), i);
        }
    }

    #[test]
    fn display_formats_like_paper() {
        assert_eq!(GridDims::new(148, 194, 728).to_string(), "148x194x728");
    }

    proptest! {
        #[test]
        fn idx_coords_roundtrip(
            gx in 1usize..40, gy in 1usize..40, gt in 1usize..40,
            seed in 0usize..1_000_000
        ) {
            let d = GridDims::new(gx, gy, gt);
            let idx = seed % d.volume();
            let (x, y, t) = d.coords(idx);
            prop_assert!(d.contains(x, y, t));
            prop_assert_eq!(d.idx(x, y, t), idx);
        }

        #[test]
        fn coords_idx_roundtrip(
            gx in 1usize..40, gy in 1usize..40, gt in 1usize..40,
            sx in 0usize..40, sy in 0usize..40, st in 0usize..40
        ) {
            let d = GridDims::new(gx, gy, gt);
            let (x, y, t) = (sx % gx, sy % gy, st % gt);
            let (rx, ry, rt) = d.coords(d.idx(x, y, t));
            prop_assert_eq!((rx, ry, rt), (x, y, t));
        }
    }
}
