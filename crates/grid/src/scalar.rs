//! Grid scalar abstraction.
//!
//! The paper's reference implementation stores densities as 4-byte floats
//! (the instance sizes in Table 2 are `Gx·Gy·Gt · 4` bytes). We keep the
//! algorithms generic over the scalar so benchmarks can use `f32` for paper
//! parity while validation tests use `f64` for tight tolerances.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A floating-point scalar usable as a voxel value.
///
/// Implemented for `f32` and `f64`. All kernel arithmetic is performed in
/// `f64` and converted on accumulation via [`Scalar::from_f64`].
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + Default
    + Debug
    + Display
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;

    /// `true` if the value is finite (not NaN or ±∞).
    fn is_finite(self) -> bool;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: Scalar>(v: f64) -> f64 {
        S::from_f64(v).to_f64()
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for &v in &[0.0, 1.0, -3.5, 1e-300, 6.02e23] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_is_close() {
        for &v in &[0.0, 1.0, -3.5, 0.1] {
            assert!((roundtrip::<f32>(v) - v).abs() <= 1e-7 * v.abs().max(1.0));
        }
    }

    #[test]
    fn zero_and_one_constants() {
        assert_eq!(<f32 as Scalar>::ZERO, 0.0f32);
        assert_eq!(<f64 as Scalar>::ONE, 1.0f64);
    }

    #[test]
    fn abs_and_finite() {
        assert_eq!(Scalar::abs(-2.0f32), 2.0);
        assert!(Scalar::is_finite(1.0f64));
        assert!(!Scalar::is_finite(f64::NAN));
        assert!(!Scalar::is_finite(f32::INFINITY));
    }
}
