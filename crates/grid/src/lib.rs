//! Domain geometry and dense 3-D voxel grids for space-time kernel density
//! estimation (STKDE).
//!
//! This crate provides the spatial substrate used by the STKDE algorithms of
//! Saule et al. (ICPP 2017):
//!
//! * [`Domain`] — the mapping between *world space* (meters/days, lowercase
//!   notation in the paper) and *voxel space* (uppercase notation),
//! * [`Grid3`] — a dense 3-D scalar grid with `X`-fastest memory layout and
//!   parallel first-touch initialization,
//! * [`SharedGrid`] — the one `unsafe` construct in the workspace: racing-free
//!   concurrent writes to *provably disjoint* voxel regions,
//! * [`Decomposition`] — the A×B×C subdomain lattice used by the
//!   domain-decomposed and point-decomposed parallel algorithms,
//! * [`SparseGrid3`] — a Morton-brick sparse grid ([`brick`], [`morton`])
//!   that elides the `Θ(G)` initialization term dominating the paper's
//!   sparse instances and supports lock-free parallel scatter through
//!   [`SharedSparseGrid`],
//! * parallel grid [`reduce`]-tion (for domain replication), grid
//!   [`stats`], and simple [`io`] exports.
//!
//! Conventions follow Table 1 of the paper: lowercase quantities (`x`, `hs`,
//! `gx`) live in world space; uppercase quantities (`X`, `Hs`, `Gx`) live in
//! voxel space. Voxels are *sampled at their center*: the density value
//! stored at voxel `(X, Y, T)` is `f̂` evaluated at the voxel center.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod axpy;
pub mod brick;
pub mod decomp;
pub mod dims;
pub mod geometry;
pub mod grid3;
pub mod io;
pub mod model;
pub mod morton;
pub mod pyramid;
pub mod range;
pub mod reduce;
pub mod scalar;
pub mod shared;
pub mod sparse;
pub mod stats;

pub use axpy::axpy_row;
pub use decomp::{Decomp, Decomposition, SubdomainId};
pub use dims::GridDims;
pub use geometry::{Bandwidth, Domain, Extent, Resolution, VoxelBandwidth};
pub use grid3::Grid3;
pub use pyramid::{ApproxStats, CellStats, MipPyramid, PyramidLevel, SliceEstimate};
pub use range::VoxelRange;
pub use scalar::Scalar;
pub use shared::{SharedGrid, WriteAudit};
pub use sparse::{SharedSparseGrid, SparseGrid3};
pub use stats::GridStats;
