//! Concurrent writes to provably disjoint voxel regions.
//!
//! The domain-decomposed (`PB-SYM-DD`) and point-decomposed (`PB-SYM-PD*`)
//! parallel algorithms have multiple threads accumulating into one shared
//! grid. They are race-free *by construction*:
//!
//! * **DD** clips every cylinder to its own subdomain, and subdomains are
//!   disjoint;
//! * **PD** only runs subdomains concurrently when they are non-adjacent in
//!   the A×B×C lattice, and subdomains are at least `2·Hs` / `2·Ht` voxels
//!   wide, so the influence halos of concurrently processed subdomains
//!   cannot overlap (§5.1 of the paper).
//!
//! Rust cannot see either argument through the type system, so this module
//! concentrates the workspace's *only* `unsafe` code: [`SharedGrid`] hands
//! out raw mutable rows under a documented disjointness contract, and
//! [`WriteAudit`] is a test-time checker that *validates* the contract by
//! recording concurrent region claims and failing on overlap.

use crate::dims::GridDims;
use crate::grid3::Grid3;
use crate::range::VoxelRange;
use crate::scalar::Scalar;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A shared view of a [`Grid3`] allowing concurrent writes to disjoint
/// regions from multiple threads.
///
/// Created by [`SharedGrid::new`], which borrows the grid mutably for the
/// lifetime of the view, so no safe alias can exist concurrently.
pub struct SharedGrid<'a, S> {
    data: &'a UnsafeCell<[S]>,
    dims: GridDims,
}

// SAFETY: `SharedGrid` only allows mutation through `unsafe` methods whose
// contract requires callers to access disjoint voxel regions from distinct
// threads. Under that contract there are no data races, making it sound to
// share the view across threads.
unsafe impl<S: Scalar> Send for SharedGrid<'_, S> {}
// SAFETY: same argument as Send above — all mutation goes through unsafe
// methods whose contracts require disjoint regions, so shared references
// across threads cannot race.
unsafe impl<S: Scalar> Sync for SharedGrid<'_, S> {}

impl<'a, S: Scalar> SharedGrid<'a, S> {
    /// Create a shared view over `grid`.
    pub fn new(grid: &'a mut Grid3<S>) -> Self {
        let dims = grid.dims();
        let slice: &'a mut [S] = grid.as_mut_slice();
        // SAFETY: `UnsafeCell<[S]>` has the same layout as `[S]`
        // (`UnsafeCell` is `repr(transparent)`), and we hold the unique
        // mutable borrow, so re-interpreting the slice is sound.
        let data = unsafe { &*(slice as *mut [S] as *const UnsafeCell<[S]>) };
        Self { data, dims }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Add `v` to voxel `(x, y, t)`.
    ///
    /// # Safety
    /// No other thread may concurrently access any voxel region containing
    /// `(x, y, t)`.
    #[inline(always)]
    pub unsafe fn add(&self, x: usize, y: usize, t: usize, v: S) {
        let i = self.dims.idx(x, y, t);
        // SAFETY: in-bounds per `idx`'s debug assert; exclusivity per the
        // caller contract above.
        unsafe {
            let p = (self.data.get() as *mut S).add(i);
            *p += v;
        }
    }

    /// Exclusive access to the contiguous X-row at `(y, t)`, `x ∈ [x0, x1)`.
    ///
    /// This is the fast path of the PB-SYM inner loop: the row is stride-1
    /// memory, so `row[x] += Ks[x]·Kt` vectorizes.
    ///
    /// # Safety
    /// * `x0 <= x1 <= Gx`, `y < Gy`, `t < Gt`;
    /// * no other thread may concurrently access any voxel in this row
    ///   segment, and the caller must not hold another reference to it.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, y: usize, t: usize, x0: usize, x1: usize) -> &mut [S] {
        debug_assert!(x0 <= x1 && x1 <= self.dims.gx);
        let base = self.dims.idx(0, y, t);
        // SAFETY: bounds checked above (debug) / guaranteed by the caller;
        // exclusivity of the region per the caller contract.
        unsafe {
            let p = (self.data.get() as *mut S).add(base + x0);
            std::slice::from_raw_parts_mut(p, x1 - x0)
        }
    }
}

/// Test-time validator for the disjoint-write contract of [`SharedGrid`].
///
/// Tasks [`claim`](WriteAudit::claim) the region they are about to write and
/// [`release`](WriteAudit::release) it when done; overlapping *concurrent*
/// claims are recorded as violations. Integration tests run the parallel
/// algorithms with an audit attached to prove the coloring/clipping
/// arguments actually hold (see DESIGN.md §6).
#[derive(Debug)]
pub struct WriteAudit {
    active: Mutex<Vec<(usize, VoxelRange)>>,
    violations: AtomicUsize,
    claims: AtomicUsize,
}

impl WriteAudit {
    /// New empty audit.
    pub fn new() -> Self {
        Self {
            active: Mutex::new(Vec::new()),
            violations: AtomicUsize::new(0),
            claims: AtomicUsize::new(0),
        }
    }

    /// Register that `owner` (an arbitrary task id) is about to write
    /// `region`. Returns `false` (and records a violation) if the region
    /// overlaps a currently claimed region of a *different* owner.
    pub fn claim(&self, owner: usize, region: VoxelRange) -> bool {
        // Relaxed: `claims`/`violations` are diagnostic tallies with no
        // ordering relationship to the writes being audited — the Mutex
        // below is what orders the actual overlap check.
        self.claims.fetch_add(1, Ordering::Relaxed);
        let mut active = self.active.lock().unwrap();
        let overlap = active
            .iter()
            .any(|&(o, r)| o != owner && r.intersects(region));
        active.push((owner, region));
        if overlap {
            self.violations.fetch_add(1, Ordering::Relaxed);
        }
        !overlap
    }

    /// Release every region claimed by `owner`.
    pub fn release(&self, owner: usize) {
        let mut active = self.active.lock().unwrap();
        active.retain(|&(o, _)| o != owner);
    }

    /// Number of overlapping concurrent claims observed.
    pub fn violations(&self) -> usize {
        self.violations.load(Ordering::Relaxed)
    }

    /// Total number of claims made.
    pub fn claims(&self) -> usize {
        self.claims.load(Ordering::Relaxed)
    }
}

impl Default for WriteAudit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn shared_single_thread_add() {
        let dims = GridDims::new(4, 4, 4);
        let mut g: Grid3<f64> = Grid3::zeros(dims);
        {
            let s = SharedGrid::new(&mut g);
            // SAFETY: single thread, trivially exclusive.
            unsafe {
                s.add(1, 1, 1, 2.0);
                s.add(1, 1, 1, 3.0);
            }
        }
        assert_eq!(g.get(1, 1, 1), 5.0);
    }

    #[test]
    fn shared_row_mut_writes_contiguously() {
        let dims = GridDims::new(6, 2, 2);
        let mut g: Grid3<f32> = Grid3::zeros(dims);
        {
            let s = SharedGrid::new(&mut g);
            // SAFETY: single thread.
            let row = unsafe { s.row_mut(1, 1, 2, 5) };
            for (i, v) in row.iter_mut().enumerate() {
                *v += (i + 1) as f32;
            }
        }
        assert_eq!(g.get(2, 1, 1), 1.0);
        assert_eq!(g.get(3, 1, 1), 2.0);
        assert_eq!(g.get(4, 1, 1), 3.0);
        assert_eq!(g.get(5, 1, 1), 0.0);
    }

    #[test]
    fn shared_disjoint_parallel_writes_sum_correctly() {
        let dims = GridDims::new(64, 8, 8);
        let mut g: Grid3<f64> = Grid3::zeros(dims);
        {
            let s = &SharedGrid::new(&mut g);
            std::thread::scope(|scope| {
                // Four threads, each owns a disjoint X-quarter of every row.
                for q in 0..4usize {
                    scope.spawn(move || {
                        for t in 0..8 {
                            for y in 0..8 {
                                // SAFETY: quarter ranges [16q, 16q+16) are
                                // pairwise disjoint across threads.
                                let row = unsafe { s.row_mut(y, t, q * 16, q * 16 + 16) };
                                for v in row {
                                    *v += 1.0;
                                }
                            }
                        }
                    });
                }
            });
        }
        assert!(g.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn audit_flags_concurrent_overlap() {
        let audit = WriteAudit::new();
        let r1 = VoxelRange {
            x0: 0,
            x1: 5,
            y0: 0,
            y1: 5,
            t0: 0,
            t1: 5,
        };
        let r2 = VoxelRange {
            x0: 4,
            x1: 9,
            y0: 0,
            y1: 5,
            t0: 0,
            t1: 5,
        };
        assert!(audit.claim(1, r1));
        assert!(!audit.claim(2, r2)); // overlaps owner 1
        assert_eq!(audit.violations(), 1);
        audit.release(1);
        audit.release(2);
        assert!(audit.claim(3, r1)); // nothing active anymore
        assert_eq!(audit.claims(), 3);
    }

    #[test]
    fn audit_allows_sequential_reuse() {
        let audit = WriteAudit::new();
        let r = VoxelRange {
            x0: 0,
            x1: 2,
            y0: 0,
            y1: 2,
            t0: 0,
            t1: 2,
        };
        assert!(audit.claim(1, r));
        audit.release(1);
        assert!(audit.claim(2, r));
        assert_eq!(audit.violations(), 0);
    }

    #[test]
    fn audit_same_owner_may_overlap_itself() {
        let audit = WriteAudit::new();
        let r = VoxelRange {
            x0: 0,
            x1: 4,
            y0: 0,
            y1: 4,
            t0: 0,
            t1: 4,
        };
        assert!(audit.claim(7, r));
        assert!(audit.claim(7, r));
        assert_eq!(audit.violations(), 0);
    }

    #[test]
    fn shared_grid_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let dims = GridDims::new(2, 2, 2);
        let mut g: Grid3<f32> = Grid3::zeros(dims);
        let s = SharedGrid::new(&mut g);
        assert_send_sync(&s);
        let _ = &s;
        static _FLAG: AtomicBool = AtomicBool::new(false);
    }
}
