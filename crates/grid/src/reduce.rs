//! Parallel reduction of replicated grids.
//!
//! `PB-SYM-DR` (§4.1 of the paper) gives each of the `P` threads a private
//! copy of the grid and sums the copies at the end. The summation is itself
//! pleasingly parallel: each thread reduces a disjoint chunk of the flat
//! arrays.

use crate::grid3::Grid3;
use crate::range::VoxelRange;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Sum `parts` element-wise into `target` (parallel over flat chunks).
///
/// # Panics
/// Panics if any part has different dimensions from `target`.
pub fn reduce_into<S: Scalar>(target: &mut Grid3<S>, parts: &[Grid3<S>]) {
    for p in parts {
        assert_eq!(p.dims(), target.dims(), "replica dims must match target");
    }
    let n = target.as_slice().len();
    let chunk = (n / (rayon::current_num_threads() * 8)).max(4096);
    let slices: Vec<&[S]> = parts.iter().map(|p| p.as_slice()).collect();
    target
        .as_mut_slice()
        .par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(ci, out)| {
            let base = ci * chunk;
            for part in &slices {
                let src = &part[base..base + out.len()];
                for (o, &s) in out.iter_mut().zip(src) {
                    *o += s;
                }
            }
        });
}

/// Consume `parts` and return their element-wise sum, reusing the first
/// part's allocation.
///
/// # Panics
/// Panics if `parts` is empty or shapes differ.
pub fn reduce<S: Scalar>(mut parts: Vec<Grid3<S>>) -> Grid3<S> {
    assert!(!parts.is_empty(), "cannot reduce zero grids");
    let mut target = parts.swap_remove(0);
    reduce_into(&mut target, &parts);
    target
}

/// Add the contents of `src`, interpreted as the sub-box `region` of the
/// target's index space, into `target`.
///
/// `src` must have dimensions equal to the region's widths. Used by
/// `PB-SYM-PD-REP` to merge a replicated subdomain buffer (a private
/// bounding-box accumulation grid) back into the global grid.
///
/// # Panics
/// Panics if shapes are inconsistent or the region exceeds the target.
pub fn add_region<S: Scalar>(target: &mut Grid3<S>, region: VoxelRange, src: &Grid3<S>) {
    let dims = target.dims();
    assert!(
        VoxelRange::full(dims).contains_range(&region),
        "region {region} out of target bounds"
    );
    assert_eq!(src.dims().gx, region.width_x(), "src width mismatch");
    assert_eq!(src.dims().gy, region.width_y(), "src height mismatch");
    assert_eq!(src.dims().gt, region.width_t(), "src depth mismatch");
    for (st, t) in (region.t0..region.t1).enumerate() {
        for (sy, y) in (region.y0..region.y1).enumerate() {
            let dst = target.row_mut(y, t, region.x0, region.x1);
            let s = src.row(sy, st, 0, region.width_x());
            for (d, &v) in dst.iter_mut().zip(s) {
                *d += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::GridDims;

    #[test]
    fn reduce_sums_replicas() {
        let dims = GridDims::new(5, 5, 5);
        let mut parts: Vec<Grid3<f64>> = (0..4).map(|_| Grid3::zeros(dims)).collect();
        for (i, p) in parts.iter_mut().enumerate() {
            p.add(1, 2, 3, (i + 1) as f64);
        }
        let total = reduce(parts);
        assert_eq!(total.get(1, 2, 3), 1.0 + 2.0 + 3.0 + 4.0);
        assert_eq!(total.get(0, 0, 0), 0.0);
    }

    #[test]
    fn reduce_into_adds_on_top() {
        let dims = GridDims::new(3, 3, 3);
        let mut target: Grid3<f32> = Grid3::zeros(dims);
        target.add(0, 0, 0, 5.0);
        let mut part: Grid3<f32> = Grid3::zeros(dims);
        part.add(0, 0, 0, 2.0);
        reduce_into(&mut target, &[part]);
        assert_eq!(target.get(0, 0, 0), 7.0);
    }

    #[test]
    fn reduce_single_is_identity() {
        let dims = GridDims::new(2, 2, 2);
        let mut g: Grid3<f64> = Grid3::zeros(dims);
        g.add(1, 1, 1, 42.0);
        let r = reduce(vec![g.clone()]);
        assert_eq!(r, g);
    }

    #[test]
    #[should_panic(expected = "cannot reduce zero grids")]
    fn reduce_empty_panics() {
        let _: Grid3<f64> = reduce(vec![]);
    }

    #[test]
    fn reduce_large_parallel_path() {
        // Large enough to hit multiple parallel chunks.
        let dims = GridDims::new(64, 64, 8);
        let mut parts: Vec<Grid3<f32>> = (0..3).map(|_| Grid3::zeros(dims)).collect();
        for p in parts.iter_mut() {
            for v in p.as_mut_slice() {
                *v = 1.0;
            }
        }
        let total = reduce(parts);
        assert!(total.as_slice().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn add_region_places_sub_box() {
        let dims = GridDims::new(6, 6, 6);
        let mut target: Grid3<f64> = Grid3::zeros(dims);
        let region = VoxelRange {
            x0: 1,
            x1: 4,
            y0: 2,
            y1: 4,
            t0: 3,
            t1: 5,
        };
        let mut src: Grid3<f64> = Grid3::zeros(GridDims::new(3, 2, 2));
        src.add(0, 0, 0, 1.0); // maps to (1, 2, 3)
        src.add(2, 1, 1, 2.0); // maps to (3, 3, 4)
        add_region(&mut target, region, &src);
        assert_eq!(target.get(1, 2, 3), 1.0);
        assert_eq!(target.get(3, 3, 4), 2.0);
        assert_eq!(target.sum_range(VoxelRange::full(dims)), 3.0);
    }

    #[test]
    #[should_panic(expected = "src width mismatch")]
    fn add_region_shape_mismatch_panics() {
        let mut target: Grid3<f64> = Grid3::zeros(GridDims::new(6, 6, 6));
        let region = VoxelRange {
            x0: 0,
            x1: 3,
            y0: 0,
            y1: 2,
            t0: 0,
            t1: 2,
        };
        let src: Grid3<f64> = Grid3::zeros(GridDims::new(2, 2, 2));
        add_region(&mut target, region, &src);
    }
}
