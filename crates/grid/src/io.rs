//! Simple grid exports: CSV time slices, PGM heatmaps, ASCII art.
//!
//! These back the visualization step of the pipeline (Figure 1 of the paper
//! shows rendered density volumes; our examples render time slices).

use crate::grid3::Grid3;
use crate::scalar::Scalar;
use std::io::{self, Write};
use std::path::Path;

/// Write the time slice `t` as CSV (`Gy` rows of `Gx` comma-separated
/// values, y increasing downwards).
pub fn write_slice_csv<S: Scalar, W: Write>(grid: &Grid3<S>, t: usize, mut w: W) -> io::Result<()> {
    let dims = grid.dims();
    for y in 0..dims.gy {
        let row = grid.row(y, t, 0, dims.gx);
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                w.write_all(b",")?;
            }
            write!(w, "{}", v.to_f64())?;
        }
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Write the time slice `t` as an 8-bit binary PGM image, scaled so that
/// `max_value` maps to 255 (pass the global max for consistent scaling
/// across slices).
pub fn write_slice_pgm<S: Scalar>(
    grid: &Grid3<S>,
    t: usize,
    max_value: f64,
    path: &Path,
) -> io::Result<()> {
    let dims = grid.dims();
    let mut buf = Vec::with_capacity(dims.gx * dims.gy + 64);
    write!(buf, "P5\n{} {}\n255\n", dims.gx, dims.gy)?;
    let scale = if max_value > 0.0 {
        255.0 / max_value
    } else {
        0.0
    };
    for y in 0..dims.gy {
        for &v in grid.row(y, t, 0, dims.gx) {
            let g = (v.to_f64() * scale).clamp(0.0, 255.0) as u8;
            buf.push(g);
        }
    }
    std::fs::write(path, buf)
}

/// Write the full density cube as a legacy-ASCII VTK `STRUCTURED_POINTS`
/// dataset, loadable by ParaView/VisIt — the volume-rendering pipeline
/// behind visualizations like the paper's Figure 1.
///
/// `origin` and `spacing` are the world coordinates of the first voxel
/// center and the per-axis voxel pitch (`sres`, `sres`, `tres`); VTK treats
/// the T axis as its Z axis, matching the grid's T-outermost layout, so the
/// values can stream out in storage order.
pub fn write_vtk<S: Scalar, W: Write>(
    grid: &Grid3<S>,
    origin: [f64; 3],
    spacing: [f64; 3],
    mut w: W,
) -> io::Result<()> {
    let dims = grid.dims();
    write!(
        w,
        "# vtk DataFile Version 3.0\nstkde density\nASCII\nDATASET STRUCTURED_POINTS\n\
         DIMENSIONS {} {} {}\nORIGIN {} {} {}\nSPACING {} {} {}\n\
         POINT_DATA {}\nSCALARS density float 1\nLOOKUP_TABLE default\n",
        dims.gx,
        dims.gy,
        dims.gt,
        origin[0],
        origin[1],
        origin[2],
        spacing[0],
        spacing[1],
        spacing[2],
        dims.volume()
    )?;
    // X-fastest, then Y, then Z — exactly the grid's storage order.
    for (i, v) in grid.as_slice().iter().enumerate() {
        let sep = if (i + 1) % 9 == 0 { '\n' } else { ' ' };
        write!(w, "{}{}", v.to_f64() as f32, sep)?;
    }
    w.write_all(b"\n")
}

/// Render the time slice `t` as ASCII art, downsampled to at most
/// `max_cols × max_rows` characters. Darker characters = higher density.
pub fn ascii_slice<S: Scalar>(
    grid: &Grid3<S>,
    t: usize,
    max_cols: usize,
    max_rows: usize,
) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let dims = grid.dims();
    let cols = dims.gx.min(max_cols.max(1));
    let rows = dims.gy.min(max_rows.max(1));
    // Downsample by max-pooling each character cell.
    let mut cells = vec![0.0f64; cols * rows];
    for y in 0..dims.gy {
        let cy = y * rows / dims.gy;
        for (x, v) in grid.row(y, t, 0, dims.gx).iter().enumerate() {
            let cx = x * cols / dims.gx;
            let c = &mut cells[cy * cols + cx];
            *c = c.max(v.to_f64());
        }
    }
    let max = cells.iter().cloned().fold(0.0, f64::max);
    let mut out = String::with_capacity(rows * (cols + 1));
    for r in 0..rows {
        for c in 0..cols {
            let v = cells[r * cols + c];
            let i = if max > 0.0 {
                ((v / max) * (RAMP.len() - 1) as f64).round() as usize
            } else {
                0
            };
            out.push(RAMP[i.min(RAMP.len() - 1)] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::GridDims;

    fn sample_grid() -> Grid3<f64> {
        let mut g = Grid3::zeros(GridDims::new(4, 3, 2));
        g.add(0, 0, 1, 1.0);
        g.add(3, 2, 1, 2.0);
        g
    }

    #[test]
    fn csv_slice_has_rows_and_values() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_slice_csv(&g, 1, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "1,0,0,0");
        assert_eq!(lines[2], "0,0,0,2");
    }

    #[test]
    fn csv_zero_slice() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_slice_csv(&g, 0, &mut buf).unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .lines()
            .all(|l| l == "0,0,0,0"));
    }

    #[test]
    fn pgm_roundtrip_header_and_scale() {
        let g = sample_grid();
        let dir = std::env::temp_dir().join("stkde_grid_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("slice.pgm");
        write_slice_pgm(&g, 1, 2.0, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header_end = bytes
            .windows(4)
            .position(|w| w == b"255\n")
            .map(|p| p + 4)
            .unwrap();
        assert!(bytes.starts_with(b"P5\n4 3\n255\n"));
        let pixels = &bytes[header_end..];
        assert_eq!(pixels.len(), 12);
        assert_eq!(pixels[0], 127); // 1.0 / 2.0 * 255 rounded down
        assert_eq!(pixels[11], 255); // 2.0 / 2.0
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn ascii_slice_marks_hotspots() {
        let g = sample_grid();
        let art = ascii_slice(&g, 1, 10, 10);
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains('@'), "peak should map to densest glyph: {art}");
    }

    #[test]
    fn ascii_slice_empty_is_blank() {
        let g: Grid3<f32> = Grid3::zeros(GridDims::new(4, 4, 2));
        let art = ascii_slice(&g, 0, 4, 4);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn vtk_header_and_value_count() {
        let g = sample_grid();
        let mut buf = Vec::new();
        write_vtk(&g, [0.5, 0.5, 0.25], [1.0, 1.0, 0.5], &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("# vtk DataFile Version 3.0\n"));
        assert!(s.contains("DIMENSIONS 4 3 2"));
        assert!(s.contains("ORIGIN 0.5 0.5 0.25"));
        assert!(s.contains("SPACING 1 1 0.5"));
        assert!(s.contains("POINT_DATA 24"));
        let data = s.split("LOOKUP_TABLE default\n").nth(1).unwrap();
        let values: Vec<f32> = data
            .split_whitespace()
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(values.len(), 24);
        // Storage order: (0,0,1) is index 12, (3,2,1) is index 23.
        assert_eq!(values[12], 1.0);
        assert_eq!(values[23], 2.0);
        assert_eq!(values.iter().filter(|&&v| v != 0.0).count(), 2);
    }

    #[test]
    fn vtk_of_empty_grid_is_all_zero() {
        let g: Grid3<f32> = Grid3::zeros(GridDims::new(2, 2, 2));
        let mut buf = Vec::new();
        write_vtk(&g, [0.0; 3], [1.0; 3], &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let data = s.split("LOOKUP_TABLE default\n").nth(1).unwrap();
        assert!(data.split_whitespace().all(|v| v == "0"));
    }

    #[test]
    fn ascii_slice_downsamples() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(100, 80, 1));
        g.add(99, 79, 0, 1.0);
        let art = ascii_slice(&g, 0, 20, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 20));
        assert!(lines[9].ends_with('@'));
    }
}
