//! The row-level multiply-add primitive of the point-based scatter engine.
//!
//! `PB-SYM`'s inner loop is `stkde[X][Y][T] += Ks[X][Y] · Kt[T]` over a
//! stride-1 X-row (paper Algorithm 3). When both operands already live in
//! the grid's native scalar `S`, the loop is a pure axpy and LLVM can
//! autovectorize the monomorphized `f32` body to 8 lanes on AVX2 — which
//! is why the scatter engine converts its invariants to `S` *once per
//! point* and hands rows to [`axpy_row`] instead of converting `f64 → S`
//! inside the loop (a conversion per element blocks vectorization).

use crate::scalar::Scalar;

/// `out[i] += ks[i] * kt` over a stride-1 row.
///
/// Unrolled by 8 so the monomorphized `f32` body maps onto one AVX2
/// vector op per chunk; the scalar tail handles the remainder.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy_row<S: Scalar>(out: &mut [S], ks: &[S], kt: S) {
    assert_eq!(out.len(), ks.len(), "axpy_row slice lengths must match");
    let mut o = out.chunks_exact_mut(8);
    let mut k = ks.chunks_exact(8);
    for (o8, k8) in o.by_ref().zip(k.by_ref()) {
        o8[0] += k8[0] * kt;
        o8[1] += k8[1] * kt;
        o8[2] += k8[2] * kt;
        o8[3] += k8[3] * kt;
        o8[4] += k8[4] * kt;
        o8[5] += k8[5] * kt;
        o8[6] += k8[6] * kt;
        o8[7] += k8[7] * kt;
    }
    // Disk chords are short (≈2·Hs), so the tail matters: take one more
    // 4-wide step before falling back to scalars.
    let (ro, rk) = (o.into_remainder(), k.remainder());
    let mut o4 = ro.chunks_exact_mut(4);
    let mut k4 = rk.chunks_exact(4);
    for (o, k) in o4.by_ref().zip(k4.by_ref()) {
        o[0] += k[0] * kt;
        o[1] += k[1] * kt;
        o[2] += k[2] * kt;
        o[3] += k[3] * kt;
    }
    for (o1, &k1) in o4.into_remainder().iter_mut().zip(k4.remainder()) {
        *o1 += k1 * kt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference<S: Scalar>(out: &mut [S], ks: &[S], kt: S) {
        for (o, &k) in out.iter_mut().zip(ks) {
            *o += k * kt;
        }
    }

    #[test]
    fn matches_reference_at_all_lengths() {
        for n in 0..40usize {
            let ks: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 1.0).collect();
            let mut a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut b = a.clone();
            axpy_row(&mut a, &ks, 0.75);
            reference(&mut b, &ks, 0.75);
            assert_eq!(a, b, "length {n}");
        }
    }

    #[test]
    fn f32_matches_reference_bitwise() {
        let ks: Vec<f32> = (0..29).map(|i| (i as f32).sin()).collect();
        let mut a: Vec<f32> = (0..29).map(|i| (i as f32).cos()).collect();
        let mut b = a.clone();
        axpy_row(&mut a, &ks, 1.25f32);
        reference(&mut b, &ks, 1.25f32);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_kt_adds_exact_zero() {
        let ks = vec![3.0f64; 11];
        let mut out = vec![1.5f64; 11];
        axpy_row(&mut out, &ks, 0.0);
        assert!(out.iter().all(|&v| v == 1.5));
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn length_mismatch_panics() {
        let ks = vec![1.0f64; 4];
        let mut out = vec![0.0f64; 5];
        axpy_row(&mut out, &ks, 1.0);
    }
}
