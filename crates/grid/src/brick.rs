//! Two-level Morton brick storage: the allocation and addressing engine
//! under [`SparseGrid3`](crate::SparseGrid3).
//!
//! # Layout
//!
//! The domain is tiled by fixed **8×8×8 bricks** ([`BRICK_EDGE`]), the
//! unit of allocation: a brick is a `Box<[S; 512]>` payload laid out
//! X-fastest (`((t&7)·8 + (y&7))·8 + (x&7)`), so one disk-chord row
//! segment is a contiguous stride-1 slice — the same access shape the
//! dense `axpy_row` kernel autovectorizes. Bricks are grouped into
//! **8×8×8-brick chunks** ([`CHUNK_EDGE`] = 64 voxels per axis); the slot
//! table is one flat, eagerly allocated `Box<[AtomicPtr<payload>]>` of
//! `nchunks · 512` pointers (8 bytes per empty brick), indexed chunk-major
//! with each chunk's 512-slot segment **Morton-ordered** by
//! [`morton::interleave3_3bit`]`(bx&7, by&7, bt&7)`. Brick addressing is
//! therefore O(1) — three shifts, one 8-entry table lookup per axis, no
//! division — and bricks that are neighbors in space are neighbors in the
//! slot table, so a cylinder's brick set walks a Z-curve instead of
//! striding `nbx·nby` slots apart like the old row-major block table.
//!
//! # Allocation protocol (lock-free, exactly-once)
//!
//! Writers share the table by `&self`; a brick materializes the first
//! time any writer touches it:
//!
//! 1. `load(Acquire)` the slot. Non-null ⇒ some writer already published
//!    this brick; the Acquire pairs with the winner's Release so the
//!    zeroed payload contents are visible.
//! 2. Null ⇒ allocate a zeroed payload and try to install it with
//!    `compare_exchange(null, ptr, AcqRel, Acquire)`.
//! 3. Success ⇒ this writer published the brick (Release makes the
//!    zeroed contents visible to every later Acquire load).
//!    Failure ⇒ another writer won the race: free the local payload,
//!    count a [`cas_races`](BrickTable::cas_races), and use the winner's
//!    pointer (re-read with Acquire by the failed CAS).
//!
//! Each slot is CAS'd from null at most once, so each brick is published
//! **exactly once**; losers never leak (their payload is dropped on the
//! spot) and never observe a half-initialized brick (payloads are zeroed
//! before the Release-publish). The `stkde-analyze` model checker drives
//! this exact path under a deterministic scheduler via the `model`
//! feature seam ([`crate::model`]); the stat counters (`allocated`,
//! `cas_races`) are Relaxed because they are monotone diagnostics with no
//! ordering relationship to payload publication.
//!
//! Payload *writes* are not synchronized here: concurrent writers must
//! target disjoint voxels (the parallel scatter guarantees this by
//! partitioning the time axis into worker-owned slabs). The safe `&mut`
//! API upholds the contract by exclusivity.

use crate::dims::GridDims;
use crate::morton;
use crate::scalar::Scalar;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Voxels per brick axis.
pub const BRICK_EDGE: usize = 8;
/// Voxels per brick (8³).
pub const BRICK_VOLUME: usize = BRICK_EDGE * BRICK_EDGE * BRICK_EDGE;
/// Bricks per chunk axis.
pub const CHUNK_EDGE_BRICKS: usize = 8;
/// Brick slots per chunk (8³), the Morton-ordered segment size.
pub const CHUNK_SLOTS: usize = CHUNK_EDGE_BRICKS * CHUNK_EDGE_BRICKS * CHUNK_EDGE_BRICKS;
/// Voxels per chunk axis (64).
pub const CHUNK_EDGE: usize = BRICK_EDGE * CHUNK_EDGE_BRICKS;

/// One brick's storage: 512 scalars, X-fastest.
pub type BrickPayload<S> = [S; BRICK_VOLUME];

/// The flat Morton-chunked slot table plus allocation state.
///
/// See the [module docs](self) for the layout and the allocation
/// protocol. All coordinate parameters are *voxel* coordinates unless a
/// name says `b*` (brick) or `c*` (chunk).
pub struct BrickTable<S> {
    dims: GridDims,
    /// Bricks per axis (ceil of dims / 8).
    nbx: usize,
    nby: usize,
    nbt: usize,
    /// Chunks per axis (ceil of bricks / 8).
    ncx: usize,
    ncy: usize,
    nct: usize,
    /// `nchunks · 512` slots; null = brick not materialized.
    slots: Box<[AtomicPtr<BrickPayload<S>>]>,
    /// Bricks published so far (Relaxed diagnostic counter).
    allocated: AtomicUsize,
    /// Allocations lost to a concurrent winner (Relaxed diagnostic counter).
    cas_races: AtomicU64,
}

#[inline(always)]
const fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

impl<S: Scalar> BrickTable<S> {
    /// An empty table covering `dims`; allocates only the pointer slots
    /// (8 bytes per brick position, rounded up to whole chunks).
    pub fn new(dims: GridDims) -> Self {
        let nbx = ceil_div(dims.gx, BRICK_EDGE);
        let nby = ceil_div(dims.gy, BRICK_EDGE);
        let nbt = ceil_div(dims.gt, BRICK_EDGE);
        let ncx = ceil_div(nbx, CHUNK_EDGE_BRICKS).max(1);
        let ncy = ceil_div(nby, CHUNK_EDGE_BRICKS).max(1);
        let nct = ceil_div(nbt, CHUNK_EDGE_BRICKS).max(1);
        let slots = (0..ncx * ncy * nct * CHUNK_SLOTS)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        BrickTable {
            dims,
            nbx,
            nby,
            nbt,
            ncx,
            ncy,
            nct,
            slots,
            allocated: AtomicUsize::new(0),
            cas_races: AtomicU64::new(0),
        }
    }

    /// Voxel dimensions this table covers.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Brick positions inside the domain (`nbx · nby · nbt`) — the
    /// denominator for occupancy. Out-of-domain slots in partially
    /// covered chunks never allocate.
    #[inline]
    pub fn domain_bricks(&self) -> usize {
        self.nbx * self.nby * self.nbt
    }

    /// Brick grid shape `(nbx, nby, nbt)`.
    #[inline]
    pub fn brick_counts(&self) -> (usize, usize, usize) {
        (self.nbx, self.nby, self.nbt)
    }

    /// Bricks published so far.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// Brick allocations that lost the install CAS to a concurrent
    /// winner (each loss freed its payload immediately).
    #[inline]
    pub fn cas_races(&self) -> u64 {
        self.cas_races.load(Ordering::Relaxed)
    }

    /// Resident bytes: every pointer slot plus each allocated payload.
    pub fn allocated_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<AtomicPtr<BrickPayload<S>>>()
            + self.allocated() * std::mem::size_of::<BrickPayload<S>>()
    }

    /// Slot index of brick `(bx, by, bt)`: chunk-major outer index,
    /// Morton-ordered within the chunk.
    #[inline(always)]
    fn slot_index(&self, bx: usize, by: usize, bt: usize) -> usize {
        let chunk = ((bt >> 3) * self.ncy + (by >> 3)) * self.ncx + (bx >> 3);
        chunk * CHUNK_SLOTS + morton::interleave3_3bit(bx, by, bt)
    }

    /// In-payload offset of voxel `(x, y, t)` within its brick.
    #[inline(always)]
    const fn cell_offset(x: usize, y: usize, t: usize) -> usize {
        ((t & 7) * BRICK_EDGE + (y & 7)) * BRICK_EDGE + (x & 7)
    }

    /// The brick payload at `slot`, or null if not materialized.
    /// Acquire pairs with the publisher's Release.
    #[inline(always)]
    fn payload(&self, slot: usize) -> *mut BrickPayload<S> {
        self.slots[slot].load(Ordering::Acquire)
    }

    /// Quiescent (non-atomic) slot read for the hot read path.
    ///
    /// Atomic loads cannot be coalesced by the compiler, so an X-fastest
    /// sweep through [`get`](Self::get) would reload the same slot for
    /// all 8 voxels of a brick row. Reads are only reachable while no
    /// shared writer exists — the writer entry points are `unsafe` and
    /// their contract excludes concurrent readers, and any completed
    /// writer handoff (thread join, pool barrier, `&mut` reborrow)
    /// already synchronizes-with this thread — so a plain load is
    /// race-free and lets LLVM hoist it per brick row.
    ///
    /// `slot` must come from [`slot_index`](Self::slot_index) on
    /// in-bounds brick coordinates, which is always `< slots.len()` by
    /// construction; the bound is not re-checked here because LLVM
    /// cannot see through the `div_ceil` table sizing.
    #[inline(always)]
    fn payload_quiescent(&self, slot: usize) -> *mut BrickPayload<S> {
        debug_assert!(slot < self.slots.len());
        // SAFETY: `slot < slots.len()` per the invariant above, and no
        // concurrent slot writes can exist while a reader runs, so the
        // plain load through `as_ptr` cannot race.
        unsafe { *self.slots.get_unchecked(slot).as_ptr() }
    }

    /// The brick payload at `slot`, materializing it via the CAS
    /// protocol if needed (steps 1–3 of the module docs).
    #[inline]
    fn payload_or_alloc(&self, slot: usize) -> *mut BrickPayload<S> {
        let cell = &self.slots[slot];
        crate::model::yield_point("brick.slot_load");
        let cur = cell.load(Ordering::Acquire);
        if !cur.is_null() {
            return cur;
        }
        self.install_payload(cell)
    }

    /// Slow path: allocate a zeroed payload and race to install it.
    #[cold]
    fn install_payload(&self, cell: &AtomicPtr<BrickPayload<S>>) -> *mut BrickPayload<S> {
        let fresh = Box::into_raw(Box::new([S::ZERO; BRICK_VOLUME]));
        crate::model::yield_point("brick.slot_cas");
        match cell.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                fresh
            }
            Err(winner) => {
                // SAFETY: `fresh` came from `Box::into_raw` above and was
                // never published (the CAS failed), so reclaiming it here
                // is unique ownership.
                drop(unsafe { Box::from_raw(fresh) });
                self.cas_races.fetch_add(1, Ordering::Relaxed);
                winner
            }
        }
    }

    /// Read voxel `(x, y, t)`; un-materialized bricks read as zero.
    ///
    /// This is a *quiescent* read: it must not run concurrently with the
    /// `unsafe` shared-write entry points (their safety contracts forbid
    /// it). The safe `&mut`-based write API can never overlap a read.
    #[inline]
    pub fn get(&self, x: usize, y: usize, t: usize) -> S {
        assert!(x < self.dims.gx && y < self.dims.gy && t < self.dims.gt);
        let p = self.payload_quiescent(self.slot_index(x >> 3, y >> 3, t >> 3));
        if p.is_null() {
            S::ZERO
        } else {
            // SAFETY: non-null slot pointers are valid payloads published
            // by `install_payload`; `cell_offset` is < BRICK_VOLUME.
            unsafe { (*p)[Self::cell_offset(x, y, t)] }
        }
    }

    /// Add `v` to voxel `(x, y, t)` through the concurrent write path.
    ///
    /// # Safety
    /// Concurrent callers must target disjoint voxels. Brick slots may
    /// race (the CAS protocol resolves that); payload cells must not.
    /// No read (e.g. [`get`](Self::get)) may run concurrently with any
    /// shared writer — reads use quiescent non-atomic slot loads.
    #[inline]
    pub unsafe fn add_shared(&self, x: usize, y: usize, t: usize, v: S) {
        assert!(
            x < self.dims.gx && y < self.dims.gy && t < self.dims.gt,
            "voxel ({x},{y},{t}) out of bounds for {:?}",
            self.dims
        );
        let p = self.payload_or_alloc(self.slot_index(x >> 3, y >> 3, t >> 3));
        // SAFETY: payload is valid (just materialized or published); the
        // caller guarantees no concurrent writer targets this voxel.
        unsafe {
            let payload = &mut *p;
            payload[Self::cell_offset(x, y, t)] += v;
        }
    }

    /// Apply `f(segment, src_offset)` to each brick-row segment of the
    /// voxel row `(y, t, x0 .. x0 + len)`, materializing bricks on the
    /// way. `segment` is a stride-1 `&mut [S]` inside one brick;
    /// `src_offset` is the segment's offset from `x0`.
    ///
    /// # Safety
    /// Concurrent callers must target disjoint voxels, and no read may
    /// overlap the writing phase (see [`add_shared`](Self::add_shared)).
    #[inline]
    pub unsafe fn row_segments_shared(
        &self,
        y: usize,
        t: usize,
        x0: usize,
        len: usize,
        mut f: impl FnMut(&mut [S], usize),
    ) {
        if len == 0 {
            return;
        }
        let end = x0 + len;
        assert!(
            end <= self.dims.gx && y < self.dims.gy && t < self.dims.gt,
            "row ({y},{t},{x0}..{end}) out of bounds for {:?}",
            self.dims
        );
        let (by, bt) = (y >> 3, t >> 3);
        let row_base = ((t & 7) * BRICK_EDGE + (y & 7)) * BRICK_EDGE;
        let mut x = x0;
        while x < end {
            let lx = x & 7;
            let seg = (BRICK_EDGE - lx).min(end - x);
            let p = self.payload_or_alloc(self.slot_index(x >> 3, by, bt));
            // SAFETY: payload is valid; `row_base + lx + seg` ≤
            // BRICK_VOLUME by construction; the caller guarantees voxel
            // disjointness across concurrent writers.
            let dst = unsafe { &mut (*p).as_mut_slice()[row_base + lx..row_base + lx + seg] };
            f(dst, x - x0);
            x += seg;
        }
    }

    /// Merge another table into this one (brick-wise addition). Only
    /// bricks allocated in `other` are touched, so the cost is
    /// proportional to the *touched* volume, not the domain volume.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn merge_from(&mut self, other: &Self) {
        assert_eq!(self.dims, other.dims, "grid shapes must match");
        for (i, cell) in other.slots.iter().enumerate() {
            let src = cell.load(Ordering::Acquire);
            if src.is_null() {
                continue;
            }
            let dst = self.payload_or_alloc(i);
            // SAFETY: both pointers are valid published payloads (equal
            // dims ⇒ identical slot mapping); `&mut self` gives exclusive
            // write access and `src` is read through a shared borrow.
            unsafe {
                let (dst, src) = (&mut *dst, &*src);
                for (d, &s) in dst.iter_mut().zip(src.iter()) {
                    *d += s;
                }
            }
        }
    }

    /// Visit every materialized brick as `(bx, by, bt, payload)`, in
    /// row-major brick order (`bt` outer, `bx` inner). Payload cells
    /// beyond the domain boundary (partial edge bricks) are never
    /// written and read as zero.
    ///
    /// Visiting row-major rather than in slot (Morton) order keeps
    /// consumers that stream into row-major destinations — dense
    /// assembly above all — writing linearly; the extra `slot_index`
    /// per brick is amortized over its 512 cells.
    pub fn for_each_brick(&self, mut f: impl FnMut(usize, usize, usize, &[S])) {
        for bt in 0..self.nbt {
            for by in 0..self.nby {
                for bx in 0..self.nbx {
                    let p = self.payload(self.slot_index(bx, by, bt));
                    if p.is_null() {
                        continue;
                    }
                    // SAFETY: non-null slot pointers are valid payloads;
                    // the shared reference to `self` plus the writer
                    // contract keep the payload alive and un-raced for
                    // the duration of `f`.
                    let payload: &[S] = unsafe { (*p).as_slice() };
                    f(bx, by, bt, payload);
                }
            }
        }
    }
}

impl<S> Drop for BrickTable<S> {
    fn drop(&mut self) {
        for cell in self.slots.iter_mut() {
            let p = *cell.get_mut();
            if !p.is_null() {
                // SAFETY: `p` came from `Box::into_raw` in
                // `install_payload` and `&mut self` proves no other
                // reference to it exists.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

impl<S: Scalar> Clone for BrickTable<S> {
    fn clone(&self) -> Self {
        let slots = self
            .slots
            .iter()
            .map(|cell| {
                let p = cell.load(Ordering::Acquire);
                if p.is_null() {
                    AtomicPtr::new(ptr::null_mut())
                } else {
                    // SAFETY: non-null slots hold valid published
                    // payloads; the shared borrow plus the writer
                    // contract (no concurrent writers during clone)
                    // make the copy safe. `S: Scalar` is `Copy`.
                    AtomicPtr::new(Box::into_raw(Box::new(unsafe { *p })))
                }
            })
            .collect();
        BrickTable {
            dims: self.dims,
            nbx: self.nbx,
            nby: self.nby,
            nbt: self.nbt,
            ncx: self.ncx,
            ncy: self.ncy,
            nct: self.nct,
            slots,
            allocated: AtomicUsize::new(self.allocated()),
            cas_races: AtomicU64::new(self.cas_races()),
        }
    }
}

impl<S: Scalar> std::fmt::Debug for BrickTable<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrickTable")
            .field("dims", &self.dims)
            .field("bricks", &(self.nbx, self.nby, self.nbt))
            .field("chunks", &(self.ncx, self.ncy, self.nct))
            .field("allocated", &self.allocated())
            .field("cas_races", &self.cas_races())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_indices_are_unique_and_dense_within_chunks() {
        let t = BrickTable::<f32>::new(GridDims::new(100, 60, 30));
        let (nbx, nby, nbt) = t.brick_counts();
        assert_eq!((nbx, nby, nbt), (13, 8, 4));
        let mut seen = std::collections::HashSet::new();
        for bt in 0..nbt {
            for by in 0..nby {
                for bx in 0..nbx {
                    assert!(seen.insert(t.slot_index(bx, by, bt)), "collision");
                }
            }
        }
        assert!(seen.iter().all(|&s| s < t.slots.len()));
    }

    #[test]
    fn neighbors_within_a_chunk_stay_close_in_the_table() {
        // Morton property: the 8 bricks of any aligned 2×2×2 neighborhood
        // occupy 8 consecutive slots.
        let t = BrickTable::<f32>::new(GridDims::new(64, 64, 64));
        let base = t.slot_index(2, 4, 6);
        let mut idx: Vec<_> = (0..8)
            .map(|i| t.slot_index(2 + (i & 1), 4 + ((i >> 1) & 1), 6 + (i >> 2)))
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, (base..base + 8).collect::<Vec<_>>());
    }

    #[test]
    fn get_add_roundtrip_and_alloc_counting() {
        let t = BrickTable::<f64>::new(GridDims::new(20, 20, 20));
        assert_eq!(t.get(19, 19, 19), 0.0);
        assert_eq!(t.allocated(), 0);
        // SAFETY: single-threaded test — voxels trivially disjoint.
        unsafe {
            t.add_shared(3, 4, 5, 1.5);
            t.add_shared(3, 4, 5, 0.25);
            t.add_shared(19, 19, 19, 2.0);
        }
        assert_eq!(t.get(3, 4, 5), 1.75);
        assert_eq!(t.get(19, 19, 19), 2.0);
        assert_eq!(t.allocated(), 2);
        assert_eq!(t.cas_races(), 0);
    }

    #[test]
    fn row_segments_split_on_brick_boundaries() {
        let t = BrickTable::<f32>::new(GridDims::new(40, 8, 8));
        let mut cuts = Vec::new();
        // Row from x=5 to x=21 crosses bricks 0, 1, 2.
        // SAFETY: single-threaded test.
        unsafe {
            t.row_segments_shared(2, 3, 5, 16, |seg, off| {
                cuts.push((off, seg.len()));
                for v in seg.iter_mut() {
                    *v += 1.0;
                }
            });
        }
        assert_eq!(cuts, vec![(0, 3), (3, 8), (11, 5)]);
        for x in 0..40 {
            let want = if (5..21).contains(&x) { 1.0 } else { 0.0 };
            assert_eq!(t.get(x, 2, 3), want, "x={x}");
        }
        assert_eq!(t.allocated(), 3);
    }

    #[test]
    fn concurrent_writers_allocate_each_brick_exactly_once() {
        // Hammer one brick column from many threads writing disjoint
        // voxels; every brick must be published exactly once and no
        // write may be lost.
        let t = BrickTable::<f64>::new(GridDims::new(8, 8, 64));
        std::thread::scope(|s| {
            for w in 0..8usize {
                let t = &t;
                s.spawn(move || {
                    for tz in 0..64 {
                        // Worker w owns row y=w of every layer.
                        // SAFETY: (x, w, tz) voxel sets are disjoint
                        // across workers.
                        unsafe {
                            for x in 0..8 {
                                t.add_shared(x, w, tz, (w * 100 + tz) as f64);
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(t.allocated(), 8, "8 bricks along t, each exactly once");
        for w in 0..8 {
            for tz in 0..64 {
                for x in 0..8 {
                    assert_eq!(t.get(x, w, tz), (w * 100 + tz) as f64);
                }
            }
        }
    }

    #[test]
    fn clone_is_deep_and_drop_frees_losers() {
        let t = BrickTable::<f32>::new(GridDims::new(16, 16, 16));
        // SAFETY: single-threaded test.
        unsafe { t.add_shared(1, 1, 1, 3.0) };
        let c = t.clone();
        // SAFETY: single-threaded test.
        unsafe { t.add_shared(1, 1, 1, 4.0) };
        assert_eq!(t.get(1, 1, 1), 7.0);
        assert_eq!(c.get(1, 1, 1), 3.0, "clone must not alias");
        assert_eq!(c.allocated(), 1);
    }

    #[test]
    fn bytes_account_for_slots_and_payloads() {
        let t = BrickTable::<f32>::new(GridDims::new(64, 64, 64));
        let empty = t.allocated_bytes();
        assert_eq!(empty, 512 * 8, "one chunk of pointer slots");
        // SAFETY: single-threaded test.
        unsafe { t.add_shared(0, 0, 0, 1.0) };
        assert_eq!(t.allocated_bytes(), empty + 512 * 4);
    }
}
