//! Dense 3-D voxel grid.

use crate::dims::GridDims;
use crate::range::VoxelRange;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// A dense 3-D grid of scalars with X-fastest flat layout
/// (`idx = (T·Gy + Y)·Gx + X`).
///
/// This is the `stkde[X][Y][T]` array of the paper's pseudocode. The
/// initialization cost `Θ(Gx·Gy·Gt)` that dominates sparse instances
/// (Figure 7) is exactly the cost of [`Grid3::zeros`] /
/// [`Grid3::zeros_parallel`].
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3<S> {
    dims: GridDims,
    data: Vec<S>,
}

impl<S: Scalar> Grid3<S> {
    /// Allocate and zero-initialize sequentially.
    ///
    /// Uses `vec![0; n]`, which lets the OS provide zeroed pages; the cost
    /// is then paid at first touch.
    pub fn zeros(dims: GridDims) -> Self {
        Self {
            dims,
            data: vec![S::ZERO; dims.volume()],
        }
    }

    /// Allocate and zero-initialize with an explicit sequential write
    /// sweep (first touch happens here, not lazily at first use).
    ///
    /// This matches the paper's reference implementation, whose algorithms
    /// all begin with `for all voxels: stkde[X][Y][T] = 0` — the `Θ(G)`
    /// initialization term of the complexity analysis. [`Grid3::zeros`]
    /// defers the touch to the OS and is preferable when the grid will be
    /// densely written anyway; the STKDE algorithms use this constructor
    /// so their measured init/compute split reflects the paper's.
    pub fn zeros_touched(dims: GridDims) -> Self {
        let n = dims.volume();
        let mut data = Vec::with_capacity(n);
        // SAFETY: S is a plain Copy scalar; every element of `0..n` is
        // written exactly once below before the Vec is observable.
        #[allow(clippy::uninit_vec)]
        unsafe {
            data.set_len(n);
        }
        for v in data.iter_mut() {
            *v = S::ZERO;
        }
        Self { dims, data }
    }

    /// Allocate and zero-initialize with a parallel first-touch sweep.
    ///
    /// The paper (§6.3) observes that memory initialization parallelizes
    /// poorly (≈3× on 16 threads) because page faults serialize in the OS;
    /// this constructor makes the first touch happen from multiple threads
    /// so pages distribute across NUMA nodes and the sweep uses all memory
    /// controllers.
    pub fn zeros_parallel(dims: GridDims) -> Self {
        let n = dims.volume();
        let mut data = Vec::with_capacity(n);
        // SAFETY: S is a plain Copy scalar; we fully overwrite `0..n` below
        // before the Vec is observable, writing each chunk exactly once.
        #[allow(clippy::uninit_vec)]
        unsafe {
            data.set_len(n);
        }
        let chunk = (n / (rayon::current_num_threads() * 8)).max(4096);
        data.par_chunks_mut(chunk).for_each(|c| {
            for v in c {
                *v = S::ZERO;
            }
        });
        Self { dims, data }
    }

    /// Build a grid from existing data.
    ///
    /// # Panics
    /// Panics if `data.len() != dims.volume()`.
    pub fn from_vec(dims: GridDims, data: Vec<S>) -> Self {
        assert_eq!(data.len(), dims.volume(), "data length must match dims");
        Self { dims, data }
    }

    /// Grid dimensions.
    #[inline]
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Value at voxel `(x, y, t)`.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, t: usize) -> S {
        self.data[self.dims.idx(x, y, t)]
    }

    /// Mutable reference to voxel `(x, y, t)`.
    #[inline(always)]
    pub fn get_mut(&mut self, x: usize, y: usize, t: usize) -> &mut S {
        let i = self.dims.idx(x, y, t);
        &mut self.data[i]
    }

    /// Add `v` to voxel `(x, y, t)`.
    #[inline(always)]
    pub fn add(&mut self, x: usize, y: usize, t: usize, v: S) {
        let i = self.dims.idx(x, y, t);
        self.data[i] += v;
    }

    /// Heap bytes held by the backing storage (capacity, not length —
    /// what the allocator actually charged). The serve tier reports
    /// this as the `stkde_cube_bytes` gauge.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<S>()
    }

    /// The full backing slice in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[S] {
        &self.data
    }

    /// The full backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consume the grid, returning the backing vector.
    pub fn into_vec(self) -> Vec<S> {
        self.data
    }

    /// The contiguous X-row at fixed `(y, t)`, restricted to `x ∈ [x0, x1)`.
    #[inline]
    pub fn row(&self, y: usize, t: usize, x0: usize, x1: usize) -> &[S] {
        let base = self.dims.idx(0, y, t);
        &self.data[base + x0..base + x1]
    }

    /// The contiguous X-row at fixed `(y, t)`, mutable.
    #[inline]
    pub fn row_mut(&mut self, y: usize, t: usize, x0: usize, x1: usize) -> &mut [S] {
        let base = self.dims.idx(0, y, t);
        &mut self.data[base + x0..base + x1]
    }

    /// The 2-D time slice at `t` as a contiguous slice of length `Gx·Gy`.
    pub fn time_slice(&self, t: usize) -> &[S] {
        let n = self.dims.gx * self.dims.gy;
        &self.data[t * n..(t + 1) * n]
    }

    /// Reset every voxel to zero (reusing the allocation), in parallel.
    pub fn clear_parallel(&mut self) {
        let chunk = (self.data.len() / (rayon::current_num_threads() * 8)).max(4096);
        self.data.par_chunks_mut(chunk).for_each(|c| {
            for v in c {
                *v = S::ZERO;
            }
        });
    }

    /// Sum of the values inside a voxel range.
    pub fn sum_range(&self, r: VoxelRange) -> f64 {
        let r = r.clipped(self.dims);
        let mut acc = 0.0;
        for t in r.t0..r.t1 {
            for y in r.y0..r.y1 {
                for &v in self.row(y, t, r.x0, r.x1) {
                    acc += v.to_f64();
                }
            }
        }
        acc
    }

    /// Maximum absolute difference against another grid of the same shape.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.dims, other.dims, "grid shapes must match");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Maximum relative difference against another grid, with `atol`
    /// absolute floor (differences below `atol` count as zero).
    pub fn max_rel_diff(&self, other: &Self, atol: f64) -> f64 {
        assert_eq!(self.dims, other.dims, "grid shapes must match");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let (a, b) = (a.to_f64(), b.to_f64());
                let d = (a - b).abs();
                if d <= atol {
                    0.0
                } else {
                    d / a.abs().max(b.abs()).max(atol)
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_get() {
        let g: Grid3<f64> = Grid3::zeros(GridDims::new(3, 4, 5));
        assert_eq!(g.dims().volume(), 60);
        assert_eq!(g.get(2, 3, 4), 0.0);
    }

    #[test]
    fn zeros_parallel_equals_zeros() {
        let dims = GridDims::new(17, 13, 11);
        let a: Grid3<f32> = Grid3::zeros(dims);
        let b: Grid3<f32> = Grid3::zeros_parallel(dims);
        assert_eq!(a, b);
    }

    #[test]
    fn add_and_get_roundtrip() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        g.add(1, 2, 3, 2.5);
        g.add(1, 2, 3, 0.5);
        assert_eq!(g.get(1, 2, 3), 3.0);
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn row_is_contiguous_x() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(5, 3, 2));
        for x in 0..5 {
            g.add(x, 1, 1, x as f64);
        }
        assert_eq!(g.row(1, 1, 1, 4), &[1.0, 2.0, 3.0]);
        g.row_mut(1, 1, 0, 5)[0] = 9.0;
        assert_eq!(g.get(0, 1, 1), 9.0);
    }

    #[test]
    fn time_slice_has_expected_len_and_content() {
        let mut g: Grid3<f32> = Grid3::zeros(GridDims::new(3, 2, 4));
        g.add(2, 1, 3, 7.0);
        let s = g.time_slice(3);
        assert_eq!(s.len(), 6);
        assert_eq!(s[3 + 2], 7.0);
        assert!(g.time_slice(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clear_parallel_zeroes_everything() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(8, 8, 8));
        g.add(3, 3, 3, 1.0);
        g.clear_parallel();
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sum_range_counts_region_only() {
        let mut g: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        g.add(0, 0, 0, 1.0);
        g.add(3, 3, 3, 10.0);
        let r = VoxelRange {
            x0: 0,
            x1: 2,
            y0: 0,
            y1: 2,
            t0: 0,
            t1: 2,
        };
        assert_eq!(g.sum_range(r), 1.0);
        assert_eq!(g.sum_range(VoxelRange::full(g.dims())), 11.0);
    }

    #[test]
    fn diffs() {
        let dims = GridDims::new(2, 2, 2);
        let mut a: Grid3<f64> = Grid3::zeros(dims);
        let mut b: Grid3<f64> = Grid3::zeros(dims);
        a.add(0, 0, 0, 1.0);
        b.add(0, 0, 0, 1.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
        assert!(a.max_rel_diff(&b, 1e-12) > 0.3);
        assert_eq!(a.max_rel_diff(&a.clone(), 1e-12), 0.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_wrong_len_panics() {
        let _ = Grid3::from_vec(GridDims::new(2, 2, 2), vec![0.0f64; 7]);
    }
}
