//! Phase-level timing of STKDE runs.

use std::time::{Duration, Instant};

/// Wall-clock breakdown of one STKDE computation into the paper's phases:
/// memory initialization, point binning, kernel computation, and reduction
/// (Figure 7 plots the init/compute split; DR adds the reduce phase; DD/PD
/// add the bin phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Grid (and replica) allocation + zeroing.
    pub init: Duration,
    /// Binning points into subdomains (zero for undecomposed algorithms).
    pub bin: Duration,
    /// Kernel density computation proper.
    pub compute: Duration,
    /// Reduction of replicated grids (zero when nothing is replicated).
    pub reduce: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time across phases.
    pub fn total(&self) -> Duration {
        self.init + self.bin + self.compute + self.reduce
    }

    /// Fraction of the total spent in initialization (the quantity that
    /// dominates the sparse Flu instances in Figure 7).
    pub fn init_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.init.as_secs_f64() / total
        }
    }
}

impl std::fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "init {:.3}s | bin {:.3}s | compute {:.3}s | reduce {:.3}s | total {:.3}s",
            self.init.as_secs_f64(),
            self.bin.as_secs_f64(),
            self.compute.as_secs_f64(),
            self.reduce.as_secs_f64(),
            self.total().as_secs_f64()
        )
    }
}

/// A simple phase stopwatch.
#[derive(Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Elapsed time since start (or last lap) and restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.0;
        self.0 = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let t = PhaseTimings {
            init: Duration::from_millis(10),
            bin: Duration::from_millis(5),
            compute: Duration::from_millis(80),
            reduce: Duration::from_millis(5),
        };
        assert_eq!(t.total(), Duration::from_millis(100));
        assert!((t.init_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn zero_timings() {
        let t = PhaseTimings::default();
        assert_eq!(t.total(), Duration::ZERO);
        assert_eq!(t.init_fraction(), 0.0);
    }

    #[test]
    fn stopwatch_laps_monotonic() {
        let mut sw = Stopwatch::start();
        let a = sw.lap();
        let b = sw.lap();
        assert!(a >= Duration::ZERO && b >= Duration::ZERO);
    }

    #[test]
    fn display_contains_phases() {
        let s = PhaseTimings::default().to_string();
        assert!(s.contains("init") && s.contains("compute"));
    }
}
