//! Distributed-memory STKDE (extension — the paper's conclusion names
//! distributed machines as the next step).
//!
//! The domain is partitioned into T-axis [`slab`]s, one per rank, and the
//! points start scattered round-robin across ranks (a distributed ingest).
//! Two exchange strategies transplant the paper's §4 taxonomy onto
//! message passing:
//!
//! * [`DistStrategy::PointExchange`] — the `PB-SYM-DD` idea: each point is
//!   *sent to* every rank whose slab its cylinder intersects; ranks compute
//!   clipped cylinders into their own slab only. Communication is point
//!   records; overhead is the recomputed invariants of cut cylinders.
//! * [`DistStrategy::HaloExchange`] — the `PB-SYM-DR` idea: points are
//!   routed home (one copy each), then each rank computes their *full*
//!   cylinders into a slab extended by `Ht` ghost layers and ships the
//!   ghost layers to their owning ranks, which add them in.
//!   Communication is voxel slabs; overhead is the halo memory and
//!   traffic.
//!
//! Ranks are threads under the [`stkde_comm`] substrate; accounted traffic
//! is priced by a latency/bandwidth model ([`DistResult::model`]) to
//! project cluster behaviour, mirroring how the paper projects 16-thread
//! speedups from Graham's bound. Both strategies reproduce the sequential
//! `PB-SYM` density field exactly (up to float summation order), which the
//! workspace integration tests verify.

pub(crate) mod apply;
pub mod halo_exchange;
pub mod point_exchange;
pub mod slab;
pub mod spec;

use crate::error::StkdeError;
use crate::problem::Problem;
use stkde_comm::{
    CodecError, CommCost, CommError, ModeledRun, Payload, RankStats, WirePayload, World, WorldComm,
};
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar};
use stkde_kernels::SpaceTimeKernel;

/// Messages exchanged by the distributed STKDE ranks.
#[derive(Debug, Clone)]
pub enum DistMsg<S> {
    /// A batch of event records (24 wire bytes each).
    Points(Vec<Point>),
    /// A run of full T-layers starting at global layer `t0`.
    Layers {
        /// First global T-layer in `data`.
        t0: usize,
        /// `(t1-t0)·Gy·Gx` scalars in grid layout order.
        data: Vec<S>,
    },
}

impl<S: Scalar> Payload for DistMsg<S> {
    fn byte_len(&self) -> usize {
        match self {
            // x, y, t as f64 on the wire.
            DistMsg::Points(v) => v.len() * 24,
            // Layer header (u64) + payload scalars.
            DistMsg::Layers { data, .. } => 8 + std::mem::size_of_val(data.as_slice()),
        }
    }
}

/// `DistMsg` crosses process boundaries on the multi-process backend, so
/// it carries a real byte encoding: a discriminant, little-endian
/// headers, and scalars at their native width (`f32` layers ship 4 bytes
/// per voxel, exactly as accounted).
impl<S: Scalar> WirePayload for DistMsg<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DistMsg::Points(v) => {
                out.push(0);
                out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                for p in v {
                    out.extend_from_slice(&p.x.to_le_bytes());
                    out.extend_from_slice(&p.y.to_le_bytes());
                    out.extend_from_slice(&p.t.to_le_bytes());
                }
            }
            DistMsg::Layers { t0, data } => {
                out.push(1);
                out.extend_from_slice(&(*t0 as u64).to_le_bytes());
                out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                if std::mem::size_of::<S>() == 4 {
                    for s in data {
                        out.extend_from_slice(&(s.to_f64() as f32).to_le_bytes());
                    }
                } else {
                    for s in data {
                        out.extend_from_slice(&s.to_f64().to_le_bytes());
                    }
                }
            }
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let bad = |why: String| CodecError::BadPayload(why);
        let take_u64 = |bytes: &[u8], at: usize| -> Result<u64, CodecError> {
            bytes
                .get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .ok_or_else(|| bad(format!("DistMsg header truncated at byte {at}")))
        };
        match bytes.first() {
            Some(0) => {
                let n = take_u64(bytes, 1)? as usize;
                let body = &bytes[9..];
                if body.len() != n * 24 {
                    return Err(bad(format!(
                        "Points claims {n} records but has {} body bytes",
                        body.len()
                    )));
                }
                let points = body
                    .chunks_exact(24)
                    .map(|rec| {
                        let f = |at: usize| {
                            f64::from_le_bytes(rec[at..at + 8].try_into().expect("8 bytes"))
                        };
                        Point::new(f(0), f(8), f(16))
                    })
                    .collect();
                Ok(DistMsg::Points(points))
            }
            Some(1) => {
                let t0 = take_u64(bytes, 1)? as usize;
                let n = take_u64(bytes, 9)? as usize;
                let body = &bytes[17..];
                let width = std::mem::size_of::<S>().clamp(4, 8);
                if body.len() != n * width {
                    return Err(bad(format!(
                        "Layers claims {n} scalars of {width} bytes but has {} body bytes",
                        body.len()
                    )));
                }
                let data = if width == 4 {
                    body.chunks_exact(4)
                        .map(|c| {
                            S::from_f64(f32::from_le_bytes(c.try_into().expect("4 bytes")) as f64)
                        })
                        .collect()
                } else {
                    body.chunks_exact(8)
                        .map(|c| S::from_f64(f64::from_le_bytes(c.try_into().expect("8 bytes"))))
                        .collect()
                };
                Ok(DistMsg::Layers { t0, data })
            }
            Some(d) => Err(bad(format!("unknown DistMsg discriminant {d}"))),
            None => Err(bad("empty DistMsg".to_string())),
        }
    }
}

/// Message tags.
pub(crate) const TAG_POINTS: u32 = 1;
pub(crate) const TAG_HALO: u32 = 2;
pub(crate) const TAG_GATHER: u32 = 3;

/// Which exchange strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistStrategy {
    /// Route points to slab owners; compute clipped cylinders (DD-flavor).
    PointExchange,
    /// Compute full cylinders locally; ship ghost layers (DR-flavor).
    HaloExchange,
}

impl DistStrategy {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DistStrategy::PointExchange => "DIST-POINT",
            DistStrategy::HaloExchange => "DIST-HALO",
        }
    }
}

impl std::fmt::Display for DistStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How `DIST-HALO` schedules ghost-zone traffic against kernel compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HaloMode {
    /// Boundary cylinders are rasterized first, ghost-layer sends are
    /// posted immediately, and the interior — the bulk of the work — is
    /// computed while those sends (and the peers' sends toward us) are in
    /// flight. The default.
    #[default]
    Overlapped,
    /// Strictly phased: compute everything, then send, then receive.
    /// Kept as the measurable non-overlapped baseline.
    Phased,
}

impl HaloMode {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            HaloMode::Overlapped => "overlap",
            HaloMode::Phased => "phased",
        }
    }
}

impl std::fmt::Display for HaloMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one rank reports back to the driver.
pub(crate) struct RankOutput<S> {
    /// The assembled global grid (rank 0 only).
    grid: Option<Grid3<S>>,
    /// Seconds spent in the kernel-compute phase (excludes messaging).
    compute_secs: f64,
    /// Points this rank rasterized (≥ its fair share under PointExchange
    /// because of replication; == its scatter share under HaloExchange).
    processed: usize,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult<S> {
    /// The assembled density grid (identical to sequential `PB-SYM` up to
    /// float summation order).
    pub grid: Grid3<S>,
    /// Number of ranks.
    pub ranks: usize,
    /// Strategy that ran.
    pub strategy: DistStrategy,
    /// Measured per-rank kernel-compute seconds.
    pub compute_secs: Vec<f64>,
    /// Per-rank points rasterized (shows PointExchange replication).
    pub processed: Vec<usize>,
    /// Per-rank accounted traffic.
    pub stats: Vec<RankStats>,
}

impl<S: Scalar> DistResult<S> {
    /// Price the run's communication and combine with measured compute
    /// into a modeled cluster execution.
    pub fn model(&self, cost: CommCost) -> ModeledRun {
        ModeledRun::price(self.compute_secs.clone(), &self.stats, cost)
    }

    /// Total payload bytes that crossed the simulated network.
    pub fn total_bytes(&self) -> usize {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Point replication factor: points rasterized across ranks divided by
    /// the input size (1.0 = work-efficient; PointExchange exceeds 1 when
    /// cylinders straddle slab boundaries, exactly like `PB-SYM-DD`'s
    /// replicated points in Figure 9).
    pub fn replication_factor(&self, n: usize) -> f64 {
        if n == 0 {
            1.0
        } else {
            self.processed.iter().sum::<usize>() as f64 / n as f64
        }
    }
}

/// Run distributed STKDE over `ranks` ranks.
///
/// Points are scattered round-robin (rank `r` starts with events
/// `r, r+P, r+2P, …`), modeling a distributed ingest; the assembled grid
/// is returned by rank 0.
///
/// ```
/// use stkde_core::distmem::{self, DistStrategy};
/// use stkde_core::Problem;
/// use stkde_data::{synth, Point};
/// use stkde_grid::{Bandwidth, Domain, GridDims};
/// use stkde_kernels::Epanechnikov;
///
/// let domain = Domain::from_dims(GridDims::new(16, 16, 12));
/// let points = synth::uniform(30, domain.extent(), 1).into_vec();
/// let problem = Problem::new(domain, Bandwidth::new(3.0, 2.0), points.len());
/// let r = distmem::run::<f64, _>(
///     &problem, &Epanechnikov, &points, 3, DistStrategy::HaloExchange,
/// ).unwrap();
/// assert_eq!(r.grid.dims(), domain.dims());
/// assert_eq!(r.replication_factor(points.len()), 1.0); // halo is work-efficient
/// ```
///
/// # Errors
/// * `InvalidConfig` if `ranks` is zero or exceeds the grid's T extent
///   (a rank would own no layers).
pub fn run<S: Scalar, K: SpaceTimeKernel + Sync>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    ranks: usize,
    strategy: DistStrategy,
) -> Result<DistResult<S>, StkdeError> {
    run_with_mode(
        problem,
        kernel,
        points,
        ranks,
        strategy,
        HaloMode::default(),
    )
}

/// [`run`] with an explicit halo scheduling mode (only meaningful for
/// [`DistStrategy::HaloExchange`]; point exchange ignores it).
///
/// # Errors
/// As [`run`], plus [`StkdeError::Comm`] if the substrate fails (cannot
/// happen on the in-process backend).
pub fn run_with_mode<S: Scalar, K: SpaceTimeKernel + Sync>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    ranks: usize,
    strategy: DistStrategy,
    mode: HaloMode,
) -> Result<DistResult<S>, StkdeError> {
    if ranks == 0 {
        return Err(StkdeError::InvalidConfig("ranks must be > 0".into()));
    }
    let gt = problem.domain.dims().gt;
    if ranks > gt {
        return Err(StkdeError::InvalidConfig(format!(
            "{ranks} ranks over {gt} T-layers: every rank needs at least one layer"
        )));
    }

    let world = World::new(ranks);
    let out = world.run::<DistMsg<S>, _, _>(|comm| {
        let local: Vec<Point> = points
            .iter()
            .skip(comm.rank())
            .step_by(ranks)
            .copied()
            .collect();
        rank_main(comm, problem, kernel, local, strategy, mode)
    });

    let mut grid = None;
    let mut compute_secs = Vec::with_capacity(ranks);
    let mut processed = Vec::with_capacity(ranks);
    for (rank, r) in out.outputs.into_iter().enumerate() {
        let r = r.map_err(|e| StkdeError::Comm(format!("rank {rank}: {e}")))?;
        if let Some(g) = r.grid {
            debug_assert_eq!(rank, 0, "only rank 0 assembles");
            grid = Some(g);
        }
        compute_secs.push(r.compute_secs);
        processed.push(r.processed);
    }
    Ok(DistResult {
        grid: grid.expect("rank 0 always assembles the grid"),
        ranks,
        strategy,
        compute_secs,
        processed,
        stats: out.stats,
    })
}

/// One rank's full distributed STKDE computation over any [`WorldComm`]
/// backend — the function the in-process closure and the spawned rank
/// processes both run.
pub(crate) fn rank_main<S, K, C>(
    comm: &mut C,
    problem: &Problem,
    kernel: &K,
    local: Vec<Point>,
    strategy: DistStrategy,
    mode: HaloMode,
) -> Result<RankOutput<S>, CommError>
where
    S: Scalar,
    K: SpaceTimeKernel,
    C: WorldComm<DistMsg<S>>,
{
    match strategy {
        DistStrategy::PointExchange => point_exchange::rank_main(comm, problem, kernel, local),
        DistStrategy::HaloExchange => halo_exchange::rank_main(comm, problem, kernel, local, mode),
    }
}

/// Gather every rank's slab to rank 0 and assemble the global grid.
///
/// Slabs are contiguous T-layer runs, so assembly is pure concatenation.
pub(crate) fn gather_slabs<S: Scalar, C: WorldComm<DistMsg<S>>>(
    comm: &mut C,
    problem: &Problem,
    slab_t0: usize,
    slab: Grid3<S>,
) -> Result<Option<Grid3<S>>, CommError> {
    let dims = problem.domain.dims();
    let layer = dims.gx * dims.gy;
    if comm.rank() == 0 {
        let mut full = Grid3::zeros(dims);
        let place = |full: &mut Grid3<S>, t0: usize, data: &[S]| {
            full.as_mut_slice()[t0 * layer..t0 * layer + data.len()].copy_from_slice(data);
        };
        place(&mut full, slab_t0, slab.as_slice());
        for _ in 1..comm.size() {
            match comm.recv_any(TAG_GATHER)? {
                (_, DistMsg::Layers { t0, data }) => place(&mut full, t0, &data),
                (from, DistMsg::Points(_)) => {
                    return Err(CommError::Protocol(format!(
                        "unexpected Points from rank {from} during gather"
                    )));
                }
            }
        }
        Ok(Some(full))
    } else {
        comm.send(
            0,
            TAG_GATHER,
            DistMsg::Layers {
                t0: slab_t0,
                data: slab.into_vec(),
            },
        )?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup(n: usize, ht: f64, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(20, 18, 24));
        let points = synth::ClusterSpec {
            clusters: 4,
            spatial_sigma: 0.08,
            temporal_sigma: 0.15,
            ..Default::default()
        }
        .generate(n, domain.extent(), seed)
        .into_vec();
        (
            Problem::new(domain, Bandwidth::new(3.0, ht), points.len()),
            points,
        )
    }

    #[test]
    fn both_strategies_match_pb_sym() {
        let (problem, points) = setup(50, 2.0, 21);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for strategy in [DistStrategy::PointExchange, DistStrategy::HaloExchange] {
            for ranks in [1, 2, 3, 5] {
                let r = run::<f64, _>(&problem, &Epanechnikov, &points, ranks, strategy).unwrap();
                let diff = seq.max_rel_diff(&r.grid, 1e-13);
                assert!(diff < 1e-9, "{strategy} ranks={ranks}: diff {diff}");
                assert_eq!(r.compute_secs.len(), ranks);
            }
        }
    }

    #[test]
    fn huge_temporal_bandwidth_spans_many_slabs() {
        // Ht covers most of the grid: halos reach far beyond neighbors and
        // nearly every point must be routed to every rank.
        let (problem, points) = setup(20, 10.0, 22);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for strategy in [DistStrategy::PointExchange, DistStrategy::HaloExchange] {
            let r = run::<f64, _>(&problem, &Epanechnikov, &points, 6, strategy).unwrap();
            assert!(
                seq.max_rel_diff(&r.grid, 1e-13) < 1e-9,
                "{strategy} with wide halo"
            );
        }
    }

    #[test]
    fn point_exchange_replicates_straddling_points() {
        let (problem, points) = setup(60, 3.0, 23);
        let r = run::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            4,
            DistStrategy::PointExchange,
        )
        .unwrap();
        let rf = r.replication_factor(points.len());
        assert!(rf >= 1.0, "never below 1: {rf}");
        // Ht=3 voxels on 6-layer slabs: straddling is certain with 60
        // clustered points.
        assert!(rf > 1.0, "some cylinder must straddle a slab: {rf}");
    }

    #[test]
    fn halo_exchange_is_work_efficient() {
        let (problem, points) = setup(60, 3.0, 24);
        let r = run::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            4,
            DistStrategy::HaloExchange,
        )
        .unwrap();
        assert_eq!(r.processed.iter().sum::<usize>(), points.len());
        assert!((r.replication_factor(points.len()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traffic_shapes_differ_as_designed() {
        // Point exchange ships points (small); halo exchange ships voxel
        // layers (large). On a small-n/large-grid instance the halo bytes
        // must dominate.
        let (problem, points) = setup(10, 2.0, 25);
        let pe = run::<f32, _>(
            &problem,
            &Epanechnikov,
            &points,
            4,
            DistStrategy::PointExchange,
        )
        .unwrap();
        let he = run::<f32, _>(
            &problem,
            &Epanechnikov,
            &points,
            4,
            DistStrategy::HaloExchange,
        )
        .unwrap();
        // Exclude the identical gather phase by comparing non-rank-0 halo
        // traffic: every rank but 0 sends gather bytes in both runs.
        assert!(
            he.total_bytes() > pe.total_bytes(),
            "halo {} should out-ship points {}",
            he.total_bytes(),
            pe.total_bytes()
        );
    }

    #[test]
    fn model_prices_free_network_as_compute_only() {
        let (problem, points) = setup(30, 2.0, 26);
        let r = run::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            3,
            DistStrategy::HaloExchange,
        )
        .unwrap();
        let free = r.model(CommCost::FREE);
        let eth = r.model(CommCost::ETHERNET_10G);
        assert!(free.makespan() <= eth.makespan());
        assert!(free.comm.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn invalid_rank_counts_rejected() {
        let (problem, points) = setup(5, 2.0, 27);
        for (ranks, what) in [(0usize, "zero"), (25, "more than Gt=24")] {
            let err = run::<f64, _>(
                &problem,
                &Epanechnikov,
                &points,
                ranks,
                DistStrategy::PointExchange,
            )
            .unwrap_err();
            assert!(
                matches!(err, StkdeError::InvalidConfig(_)),
                "{what} ranks must be rejected"
            );
        }
    }

    #[test]
    fn empty_pointset_yields_zero_grid() {
        let (problem, _) = setup(0, 2.0, 28);
        let r = run::<f64, _>(&problem, &Epanechnikov, &[], 3, DistStrategy::HaloExchange).unwrap();
        assert!(r.grid.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(r.replication_factor(0), 1.0);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(DistStrategy::PointExchange.to_string(), "DIST-POINT");
        assert_eq!(DistStrategy::HaloExchange.to_string(), "DIST-HALO");
        assert_eq!(HaloMode::Overlapped.to_string(), "overlap");
        assert_eq!(HaloMode::Phased.to_string(), "phased");
    }

    #[test]
    fn overlapped_and_phased_agree() {
        // Overlapping reorders the scatter (boundary points first), so
        // the two modes are equal up to float reassociation; both must
        // match the sequential reference and each other tightly, and
        // each mode must be deterministic bit-for-bit across reruns.
        let (problem, points) = setup(60, 3.0, 29);
        let run_mode = |mode| {
            run_with_mode::<f64, _>(
                &problem,
                &Epanechnikov,
                &points,
                4,
                DistStrategy::HaloExchange,
                mode,
            )
            .unwrap()
        };
        let over = run_mode(HaloMode::Overlapped);
        let phased = run_mode(HaloMode::Phased);
        assert!(over.grid.max_rel_diff(&phased.grid, 1e-15) < 1e-12);
        let over2 = run_mode(HaloMode::Overlapped);
        assert_eq!(over.grid.as_slice(), over2.grid.as_slice());
        // Identical message protocol in both modes.
        for (a, b) in over.stats.iter().zip(&phased.stats) {
            assert_eq!(a.traffic(), b.traffic());
        }
    }

    #[test]
    fn dist_msg_wire_roundtrip() {
        use stkde_comm::WirePayload;
        let msgs = [
            DistMsg::<f64>::Points(vec![]),
            DistMsg::Points(vec![
                Point::new(1.5, -2.0, 3.25),
                Point::new(0.0, 9.0, -1.0),
            ]),
            DistMsg::Layers {
                t0: 7,
                data: vec![0.5, -1.25, 1e-300],
            },
        ];
        for msg in &msgs {
            let mut bytes = Vec::new();
            msg.encode(&mut bytes);
            let back = DistMsg::<f64>::decode(&bytes).unwrap();
            match (msg, &back) {
                (DistMsg::Points(a), DistMsg::Points(b)) => assert_eq!(a, b),
                (DistMsg::Layers { t0: ta, data: da }, DistMsg::Layers { t0: tb, data: db }) => {
                    assert_eq!(ta, tb);
                    assert_eq!(da, db);
                }
                _ => panic!("roundtrip changed the variant"),
            }
        }
        // f32 layers ship 4 bytes per voxel and roundtrip exactly.
        let m = DistMsg::<f32>::Layers {
            t0: 3,
            data: vec![1.5, -0.25],
        };
        let mut bytes = Vec::new();
        m.encode(&mut bytes);
        assert_eq!(bytes.len(), 1 + 8 + 8 + 2 * 4);
        match DistMsg::<f32>::decode(&bytes).unwrap() {
            DistMsg::Layers { t0, data } => {
                assert_eq!(t0, 3);
                assert_eq!(data, vec![1.5, -0.25]);
            }
            _ => panic!("variant changed"),
        }
        // Malformed inputs error instead of panicking.
        for bad in [&[] as &[u8], &[9], &[0, 5, 0, 0, 0, 0, 0, 0, 0, 1, 2]] {
            assert!(DistMsg::<f64>::decode(bad).is_err());
        }
    }
}
