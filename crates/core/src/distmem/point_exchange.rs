//! `DIST-POINT`: route points to the slab owners their cylinders touch.
//!
//! The distributed analogue of `PB-SYM-DD` (paper §4.2): instead of
//! replicating grid memory, boundary *points* are replicated — every rank
//! whose slab a point's cylinder intersects receives a copy and computes
//! the clipped contribution locally. Work overhead is the recomputed
//! invariants of cut cylinders (the paper's Figure 4 phenomenon), surfaced
//! by [`DistResult::replication_factor`](super::DistResult::replication_factor);
//! network traffic is small (24 bytes per routed point).

use super::apply::apply_point_slab;
use super::slab::{owners_of_layers, slab_range};
use super::{gather_slabs, DistMsg, RankOutput, TAG_POINTS};
use crate::kernel_apply::Scratch;
use crate::problem::Problem;
use stkde_comm::{CommError, WorldComm};
use stkde_data::Point;
use stkde_grid::{Grid3, GridDims, Scalar};
use stkde_kernels::SpaceTimeKernel;

pub(super) fn rank_main<S, K, C>(
    comm: &mut C,
    problem: &Problem,
    kernel: &K,
    local: Vec<Point>,
) -> Result<RankOutput<S>, CommError>
where
    S: Scalar,
    K: SpaceTimeKernel,
    C: WorldComm<DistMsg<S>>,
{
    let dims = problem.domain.dims();
    let size = comm.size();
    let ht = problem.vbw.ht;

    // Phase 1 — route every local point to each rank whose slab its
    // cylinder's T-extent intersects (a contiguous rank interval).
    let mut outgoing: Vec<Vec<Point>> = vec![Vec::new(); size];
    for p in &local {
        let (_, _, tv) = problem.domain.voxel_of(p.as_array());
        let t0 = tv.saturating_sub(ht);
        let t1 = tv + ht + 1;
        for r in owners_of_layers(dims.gt, size, t0, t1) {
            outgoing[r].push(*p);
        }
    }
    for (to, batch) in outgoing.into_iter().enumerate() {
        comm.send(to, TAG_POINTS, DistMsg::Points(batch))?;
    }
    let mut mine = Vec::new();
    for from in 0..size {
        match comm.recv(from, TAG_POINTS)? {
            DistMsg::Points(batch) => mine.extend(batch),
            DistMsg::Layers { .. } => {
                return Err(CommError::Protocol(format!(
                    "unexpected Layers from rank {from} during point routing"
                )));
            }
        }
    }

    // Phase 2 — clipped PB-SYM over the owned slab.
    let slab = slab_range(dims, size, comm.rank());
    let mut grid: Grid3<S> = Grid3::zeros(GridDims::new(dims.gx, dims.gy, slab.t1 - slab.t0));
    let mut scratch = Scratch::default();
    let start = std::time::Instant::now();
    for p in &mine {
        apply_point_slab(&mut grid, slab.t0, problem, kernel, p, slab, &mut scratch);
    }
    let compute_secs = start.elapsed().as_secs_f64();

    // Phase 3 — assemble on rank 0.
    let grid = gather_slabs(comm, problem, slab.t0, grid)?;
    Ok(RankOutput {
        grid,
        compute_secs,
        processed: mine.len(),
    })
}
