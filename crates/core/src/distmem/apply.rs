//! Offset-slab kernel application.
//!
//! Ranks own only a run of T-layers, so their local buffer is a [`Grid3`]
//! whose T axis starts at an *offset* into the global grid. This module
//! re-hosts the shared scatter engine (`kernel_apply`) onto such a buffer:
//! the same axis tables, chord clipping, and native-scalar `axpy` rows,
//! with the T index shifted by the slab offset.

use crate::kernel_apply::{scatter_rows, write_region, Scratch};
use crate::problem::Problem;
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar, SharedGrid, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Scatter one point with `PB-SYM` into a slab buffer whose layer `l`
/// holds global layer `t_off + l`, restricted to the *global* clip range.
///
/// The clip must lie within the buffer: `clip.t0 >= t_off` and
/// `clip.t1 <= t_off + buffer layers` (debug-asserted).
pub(crate) fn apply_point_slab<S: Scalar, K: SpaceTimeKernel>(
    grid: &mut Grid3<S>,
    t_off: usize,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    debug_assert!(clip.t0 >= t_off && clip.t1 <= t_off + grid.dims().gt);
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    scratch.prepare_sym(problem, kernel, p, r);
    let shared = SharedGrid::new(grid);
    let Scratch {
        chords,
        disk,
        planes,
        ..
    } = scratch;
    // SAFETY: `grid` is exclusively borrowed for the duration of the
    // shared view and this call is the only writer — trivially race-free.
    unsafe {
        scatter_rows(&shared, t_off, r, chords, disk, planes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    #[test]
    fn offset_slab_matches_global_section() {
        let domain = Domain::from_dims(GridDims::new(20, 16, 24));
        let points = synth::uniform(30, domain.extent(), 5).into_vec();
        let problem = Problem::new(domain, Bandwidth::new(3.0, 4.0), points.len());
        let (global, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);

        // Compute layers [8, 16) in an offset buffer.
        let (t_off, t_end) = (8usize, 16usize);
        let mut slab: Grid3<f64> = Grid3::zeros(GridDims::new(20, 16, t_end - t_off));
        let clip = VoxelRange {
            x0: 0,
            x1: 20,
            y0: 0,
            y1: 16,
            t0: t_off,
            t1: t_end,
        };
        let mut scratch = Scratch::default();
        for p in &points {
            apply_point_slab(
                &mut slab,
                t_off,
                &problem,
                &Epanechnikov,
                p,
                clip,
                &mut scratch,
            );
        }
        for t in t_off..t_end {
            for y in 0..16 {
                for x in 0..20 {
                    let a = global.get(x, y, t);
                    let b = slab.get(x, y, t - t_off);
                    assert!((a - b).abs() < 1e-12, "mismatch at ({x},{y},{t})");
                }
            }
        }
    }
}
