//! Offset-slab kernel application.
//!
//! Ranks own only a run of T-layers, so their local buffer is a [`Grid3`]
//! whose T axis starts at an *offset* into the global grid. This module
//! re-hosts the `PB-SYM` invariant machinery onto such a buffer.

use crate::kernel_apply::{fill_bar, fill_disk, write_region};
use crate::problem::Problem;
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Reusable invariant buffers for slab application.
#[derive(Debug, Default)]
pub(crate) struct SlabScratch {
    disk: Vec<f64>,
    bar: Vec<f64>,
}

/// Scatter one point with `PB-SYM` into a slab buffer whose layer `l`
/// holds global layer `t_off + l`, restricted to the *global* clip range.
///
/// The clip must lie within the buffer: `clip.t0 >= t_off` and
/// `clip.t1 <= t_off + buffer layers` (debug-asserted).
pub(crate) fn apply_point_slab<S: Scalar, K: SpaceTimeKernel>(
    grid: &mut Grid3<S>,
    t_off: usize,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut SlabScratch,
) {
    debug_assert!(clip.t0 >= t_off && clip.t1 <= t_off + grid.dims().gt);
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    fill_disk(problem, kernel, p, r, &mut scratch.disk);
    fill_bar(problem, kernel, p, r, &mut scratch.bar);
    let width = r.x1 - r.x0;
    for (ti, t) in (r.t0..r.t1).enumerate() {
        let kt = scratch.bar[ti];
        if kt == 0.0 {
            continue;
        }
        for (yi, y) in (r.y0..r.y1).enumerate() {
            let row = grid.row_mut(y, t - t_off, r.x0, r.x1);
            let disk_row = &scratch.disk[yi * width..(yi + 1) * width];
            for (out, &ks) in row.iter_mut().zip(disk_row) {
                *out += S::from_f64(ks * kt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    #[test]
    fn offset_slab_matches_global_section() {
        let domain = Domain::from_dims(GridDims::new(20, 16, 24));
        let points = synth::uniform(30, domain.extent(), 5).into_vec();
        let problem = Problem::new(domain, Bandwidth::new(3.0, 4.0), points.len());
        let (global, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);

        // Compute layers [8, 16) in an offset buffer.
        let (t_off, t_end) = (8usize, 16usize);
        let mut slab: Grid3<f64> = Grid3::zeros(GridDims::new(20, 16, t_end - t_off));
        let clip = VoxelRange {
            x0: 0,
            x1: 20,
            y0: 0,
            y1: 16,
            t0: t_off,
            t1: t_end,
        };
        let mut scratch = SlabScratch::default();
        for p in &points {
            apply_point_slab(
                &mut slab,
                t_off,
                &problem,
                &Epanechnikov,
                p,
                clip,
                &mut scratch,
            );
        }
        for t in t_off..t_end {
            for y in 0..16 {
                for x in 0..20 {
                    let a = global.get(x, y, t);
                    let b = slab.get(x, y, t - t_off);
                    assert!((a - b).abs() < 1e-12, "mismatch at ({x},{y},{t})");
                }
            }
        }
    }
}
