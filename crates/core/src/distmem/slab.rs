//! Balanced T-axis slab partition of the voxel grid across ranks.
//!
//! The grid layout is T-outermost (`idx = (T·Gy + Y)·Gx + X`), so a run of
//! full T-layers is contiguous memory — slabs along T make every exchange
//! a single `memcpy`-shaped message and the final gather a concatenation.

use stkde_grid::{GridDims, VoxelRange};

/// Half-open layer interval `[t0, t1)` owned by rank `rank` out of `size`
/// when splitting `gt` layers as evenly as possible (first `gt % size`
/// ranks get one extra layer).
pub fn slab_bounds(gt: usize, size: usize, rank: usize) -> (usize, usize) {
    assert!(rank < size, "rank {rank} out of range (size {size})");
    let q = gt / size;
    let r = gt % size;
    if rank < r {
        (rank * (q + 1), (rank + 1) * (q + 1))
    } else {
        let base = r * (q + 1) + (rank - r) * q;
        (base, base + q)
    }
}

/// The rank owning layer `t` under [`slab_bounds`].
pub fn owner_of(gt: usize, size: usize, t: usize) -> usize {
    debug_assert!(t < gt, "layer {t} out of range (gt {gt})");
    let q = gt / size;
    let r = gt % size;
    if t < r * (q + 1) {
        t / (q + 1)
    } else {
        // q > 0 here: t >= r*(q+1) and t < gt forces q >= 1.
        r + (t - r * (q + 1)) / q
    }
}

/// Rank `rank`'s slab as a voxel range (full X/Y extent).
pub fn slab_range(dims: GridDims, size: usize, rank: usize) -> VoxelRange {
    let (t0, t1) = slab_bounds(dims.gt, size, rank);
    VoxelRange {
        x0: 0,
        x1: dims.gx,
        y0: 0,
        y1: dims.gy,
        t0,
        t1,
    }
}

/// The contiguous interval of ranks owning any layer in `[t0, t1)`
/// (clipped to the grid); empty iff the interval is.
pub fn owners_of_layers(gt: usize, size: usize, t0: usize, t1: usize) -> std::ops::Range<usize> {
    let t1 = t1.min(gt);
    if t0 >= t1 {
        return 0..0;
    }
    owner_of(gt, size, t0)..owner_of(gt, size, t1 - 1) + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slabs_partition_exactly() {
        for gt in [1usize, 2, 7, 16, 100] {
            for size in 1..=gt {
                let mut covered = 0;
                let mut prev_end = 0;
                for rank in 0..size {
                    let (t0, t1) = slab_bounds(gt, size, rank);
                    assert_eq!(t0, prev_end, "slabs must be contiguous");
                    assert!(t1 >= t0);
                    covered += t1 - t0;
                    prev_end = t1;
                }
                assert_eq!(covered, gt, "gt={gt} size={size}");
            }
        }
    }

    #[test]
    fn slab_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..5)
            .map(|r| {
                let (a, b) = slab_bounds(17, 5, r);
                b - a
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 17);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn more_ranks_than_layers_gives_empty_slabs() {
        // 3 layers over 5 ranks: ranks 3 and 4 own nothing.
        let widths: Vec<usize> = (0..5)
            .map(|r| {
                let (a, b) = slab_bounds(3, 5, r);
                b - a
            })
            .collect();
        assert_eq!(widths, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn owner_inverts_bounds() {
        for gt in [1usize, 5, 16, 33] {
            for size in [1usize, 2, 3, 7, 16] {
                for t in 0..gt {
                    let rank = owner_of(gt, size, t);
                    let (t0, t1) = slab_bounds(gt, size, rank);
                    assert!(t0 <= t && t < t1, "gt={gt} size={size} t={t} rank={rank}");
                }
            }
        }
    }

    #[test]
    fn owners_of_layers_is_contiguous_and_correct() {
        let r = owners_of_layers(20, 4, 3, 12);
        // Slabs of 5: [0,5) [5,10) [10,15) [15,20); layers 3..12 touch 0,1,2.
        assert_eq!(r, 0..3);
        assert_eq!(owners_of_layers(20, 4, 0, 20), 0..4);
        assert_eq!(owners_of_layers(20, 4, 25, 30), 0..0, "clipped empty");
        assert_eq!(owners_of_layers(20, 4, 7, 7), 0..0);
    }

    #[test]
    fn slab_range_spans_full_xy() {
        let dims = GridDims::new(8, 9, 10);
        let r = slab_range(dims, 2, 1);
        assert_eq!((r.x0, r.x1, r.y0, r.y1), (0, 8, 0, 9));
        assert_eq!((r.t0, r.t1), (5, 10));
    }

    proptest! {
        #[test]
        fn partition_properties(gt in 1usize..400, size in 1usize..40) {
            let mut total = 0;
            for rank in 0..size {
                let (t0, t1) = slab_bounds(gt, size, rank);
                total += t1 - t0;
                for t in t0..t1 {
                    prop_assert_eq!(owner_of(gt, size, t), rank);
                }
            }
            prop_assert_eq!(total, gt);
        }
    }
}
