//! Environment-serializable problem specs for spawned rank processes.
//!
//! A multi-process rank cannot receive a closure: the parent and the
//! rank executable rendezvous on a *description* of the computation
//! instead. [`DistSpec`] is that description — grid dimensions,
//! bandwidths, a deterministic synthetic point population (seeded
//! cluster process), kernel, strategy, halo mode. It serializes into a
//! single environment variable ([`SPEC_ENV`]) the parent sets on every
//! rank, each rank regenerates the identical points from the seed, and
//! any party can independently compute the sequential PB-SYM reference
//! for conformance checks.

use super::{rank_main, DistMsg, DistStrategy, HaloMode, RankOutput};
use crate::algorithms::pb_sym;
use crate::problem::Problem;
use stkde_comm::{CommError, WorldComm};
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, Grid3, GridDims};
use stkde_kernels::{Epanechnikov, Quartic, TruncatedGaussian};

/// The environment variable carrying a serialized [`DistSpec`].
pub const SPEC_ENV: &str = "STKDE_DIST_SPEC";

/// Kernel selection for a spawned rank (kernels are zero-config values,
/// so a name is a complete description).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// The paper's default Epanechnikov product kernel.
    Epanechnikov,
    /// Truncated Gaussian with the default σ.
    TruncatedGaussian,
    /// Quartic (biweight) kernel.
    Quartic,
}

impl KernelChoice {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            KernelChoice::Epanechnikov => "epanechnikov",
            KernelChoice::TruncatedGaussian => "truncated-gaussian",
            KernelChoice::Quartic => "quartic",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "epanechnikov" => Ok(KernelChoice::Epanechnikov),
            "truncated-gaussian" => Ok(KernelChoice::TruncatedGaussian),
            "quartic" => Ok(KernelChoice::Quartic),
            other => Err(format!("unknown kernel {other:?}")),
        }
    }
}

/// A fully deterministic distributed STKDE problem: every rank (and the
/// conformance harness) reconstructs identical inputs from this value.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSpec {
    /// Grid extent along X.
    pub gx: usize,
    /// Grid extent along Y.
    pub gy: usize,
    /// Grid extent along T.
    pub gt: usize,
    /// Spatial bandwidth in world units.
    pub hs: f64,
    /// Temporal bandwidth in world units.
    pub ht: f64,
    /// Number of synthetic events.
    pub n: usize,
    /// Seed for the synthetic cluster process.
    pub seed: u64,
    /// Kernel to apply.
    pub kernel: KernelChoice,
    /// Exchange strategy.
    pub strategy: DistStrategy,
    /// Halo scheduling (ignored by point exchange).
    pub mode: HaloMode,
}

impl DistSpec {
    /// The discretized domain.
    pub fn domain(&self) -> Domain {
        Domain::from_dims(GridDims::new(self.gx, self.gy, self.gt))
    }

    /// The problem description (domain + bandwidths + normalization).
    pub fn problem(&self) -> Problem {
        Problem::new(self.domain(), Bandwidth::new(self.hs, self.ht), self.n)
    }

    /// The seeded synthetic events — identical on every rank and in the
    /// harness (clustered, like the distmem test instances).
    pub fn points(&self) -> Vec<Point> {
        synth::ClusterSpec {
            clusters: 4,
            spatial_sigma: 0.08,
            temporal_sigma: 0.15,
            ..Default::default()
        }
        .generate(self.n, self.domain().extent(), self.seed)
        .into_vec()
    }

    /// The sequential PB-SYM reference density for this spec.
    pub fn sequential_reference(&self) -> Grid3<f64> {
        let problem = self.problem();
        let points = self.points();
        match self.kernel {
            KernelChoice::Epanechnikov => pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points).0,
            KernelChoice::TruncatedGaussian => {
                pb_sym::run::<f64, _>(&problem, &TruncatedGaussian::default(), &points).0
            }
            KernelChoice::Quartic => pb_sym::run::<f64, _>(&problem, &Quartic, &points).0,
        }
    }

    /// Serialize for the rank environment.
    pub fn to_env_value(&self) -> String {
        format!(
            "g={}x{}x{};hs={};ht={};n={};seed={};kernel={};strategy={};mode={}",
            self.gx,
            self.gy,
            self.gt,
            self.hs,
            self.ht,
            self.n,
            self.seed,
            self.kernel.name(),
            match self.strategy {
                DistStrategy::PointExchange => "point",
                DistStrategy::HaloExchange => "halo",
            },
            self.mode.name(),
        )
    }

    /// Parse the serialized form.
    ///
    /// # Errors
    /// A description of the first malformed or missing field.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut fields = std::collections::BTreeMap::new();
        for pair in s.split(';') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed spec field {pair:?}"))?;
            fields.insert(k, v);
        }
        let get = |k: &str| {
            fields
                .get(k)
                .copied()
                .ok_or_else(|| format!("spec missing field {k:?}"))
        };
        let dims: Vec<&str> = get("g")?.split('x').collect();
        let [gx, gy, gt] = dims.as_slice() else {
            return Err(format!("grid must be WxHxT, got {:?}", get("g")?));
        };
        let num = |what: &str, v: &str| -> Result<usize, String> {
            v.parse().map_err(|_| format!("bad {what}: {v:?}"))
        };
        let float = |what: &str, v: &str| -> Result<f64, String> {
            v.parse().map_err(|_| format!("bad {what}: {v:?}"))
        };
        Ok(DistSpec {
            gx: num("gx", gx)?,
            gy: num("gy", gy)?,
            gt: num("gt", gt)?,
            hs: float("hs", get("hs")?)?,
            ht: float("ht", get("ht")?)?,
            n: num("n", get("n")?)?,
            seed: {
                let raw = get("seed")?;
                raw.parse().map_err(|_| format!("bad seed: {raw:?}"))?
            },
            kernel: KernelChoice::parse(get("kernel")?)?,
            strategy: match get("strategy")? {
                "point" => DistStrategy::PointExchange,
                "halo" => DistStrategy::HaloExchange,
                other => return Err(format!("unknown strategy {other:?}")),
            },
            mode: match get("mode")? {
                "overlap" => HaloMode::Overlapped,
                "phased" => HaloMode::Phased,
                other => return Err(format!("unknown halo mode {other:?}")),
            },
        })
    }

    /// Read the spec a parent placed in this process's environment.
    ///
    /// # Errors
    /// Missing variable or any parse failure.
    pub fn from_env() -> Result<Self, String> {
        let raw = std::env::var(SPEC_ENV).map_err(|_| format!("{SPEC_ENV} not set"))?;
        Self::parse(&raw)
    }

    /// Run one rank of this spec's computation over any backend and
    /// return the rank's serialized [`RankReport`].
    ///
    /// Every rank regenerates the full point population and takes the
    /// round-robin share `rank, rank+P, rank+2P, …` — the same
    /// distributed-ingest model as [`super::run`].
    ///
    /// # Errors
    /// Any communication failure.
    pub fn run_rank<C: WorldComm<DistMsg<f64>>>(&self, comm: &mut C) -> Result<Vec<u8>, CommError> {
        let problem = self.problem();
        let local: Vec<Point> = self
            .points()
            .into_iter()
            .skip(comm.rank())
            .step_by(comm.size())
            .collect();
        let out = match self.kernel {
            KernelChoice::Epanechnikov => rank_main::<f64, _, _>(
                comm,
                &problem,
                &Epanechnikov,
                local,
                self.strategy,
                self.mode,
            ),
            KernelChoice::TruncatedGaussian => rank_main::<f64, _, _>(
                comm,
                &problem,
                &TruncatedGaussian::default(),
                local,
                self.strategy,
                self.mode,
            ),
            KernelChoice::Quartic => {
                rank_main::<f64, _, _>(comm, &problem, &Quartic, local, self.strategy, self.mode)
            }
        }?;
        Ok(RankReport::from_output(&out).encode())
    }

    /// Decode a rank's serialized report ([`RankReport::encode`]),
    /// validating the grid shape against this spec.
    ///
    /// # Errors
    /// Malformed blob or a grid of the wrong volume.
    pub fn decode_report(&self, bytes: &[u8]) -> Result<RankReport, String> {
        let report = RankReport::decode(bytes)?;
        if let Some(grid) = &report.grid {
            let expect = self.gx * self.gy * self.gt;
            if grid.len() != expect {
                return Err(format!(
                    "rank grid has {} voxels, spec wants {expect}",
                    grid.len()
                ));
            }
        }
        Ok(report)
    }

    /// Assemble rank 0's reported voxels into a grid.
    ///
    /// # Errors
    /// As [`Self::decode_report`], or a report without a grid.
    pub fn grid_from_report(&self, report: &RankReport) -> Result<Grid3<f64>, String> {
        let data = report
            .grid
            .as_ref()
            .ok_or("report carries no grid (not rank 0?)")?;
        Ok(Grid3::from_vec(
            GridDims::new(self.gx, self.gy, self.gt),
            data.clone(),
        ))
    }
}

/// What one rank reports to the launcher: its share of work, its compute
/// time, and (rank 0 only) the assembled density grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RankReport {
    /// Points this rank rasterized.
    pub processed: usize,
    /// Seconds in the kernel-compute phase.
    pub compute_secs: f64,
    /// The assembled global grid (rank 0 only).
    pub grid: Option<Vec<f64>>,
}

impl RankReport {
    fn from_output(out: &RankOutput<f64>) -> Self {
        RankReport {
            processed: out.processed,
            compute_secs: out.compute_secs,
            grid: out.grid.as_ref().map(|g| g.as_slice().to_vec()),
        }
    }

    /// Serialize: `processed:u64 ‖ compute_secs:f64 ‖ has_grid:u8 ‖
    /// voxels:f64…`, all little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + self.grid.as_ref().map_or(0, |g| g.len() * 8));
        out.extend_from_slice(&(self.processed as u64).to_le_bytes());
        out.extend_from_slice(&self.compute_secs.to_le_bytes());
        match &self.grid {
            None => out.push(0),
            Some(g) => {
                out.push(1);
                for v in g {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        out
    }

    /// Inverse of [`encode`](Self::encode).
    ///
    /// # Errors
    /// Malformed or truncated blob.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 17 {
            return Err(format!("rank report of {} bytes is truncated", bytes.len()));
        }
        let processed = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let compute_secs = f64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let grid = match bytes[16] {
            0 if bytes.len() == 17 => None,
            1 if (bytes.len() - 17).is_multiple_of(8) => Some(
                bytes[17..]
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ),
            _ => return Err("malformed rank report body".to_string()),
        };
        Ok(RankReport {
            processed,
            compute_secs,
            grid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_comm::World;

    fn spec() -> DistSpec {
        DistSpec {
            gx: 20,
            gy: 18,
            gt: 24,
            hs: 3.0,
            ht: 2.0,
            n: 50,
            seed: 21,
            kernel: KernelChoice::Epanechnikov,
            strategy: DistStrategy::HaloExchange,
            mode: HaloMode::Overlapped,
        }
    }

    #[test]
    fn spec_env_roundtrip() {
        for kernel in [
            KernelChoice::Epanechnikov,
            KernelChoice::TruncatedGaussian,
            KernelChoice::Quartic,
        ] {
            for strategy in [DistStrategy::PointExchange, DistStrategy::HaloExchange] {
                for mode in [HaloMode::Overlapped, HaloMode::Phased] {
                    let s = DistSpec {
                        kernel,
                        strategy,
                        mode,
                        ..spec()
                    };
                    assert_eq!(DistSpec::parse(&s.to_env_value()).unwrap(), s);
                }
            }
        }
    }

    #[test]
    fn malformed_specs_error() {
        for bad in [
            "",
            "g=20x18",
            "g=20x18x24",
            "g=axbxc;hs=1;ht=1;n=1;seed=1;kernel=epanechnikov;strategy=halo;mode=overlap",
            "g=2x2x2;hs=1;ht=1;n=1;seed=1;kernel=cosine;strategy=halo;mode=overlap",
            "g=2x2x2;hs=1;ht=1;n=1;seed=1;kernel=epanechnikov;strategy=mesh;mode=overlap",
            "g=2x2x2;hs=1;ht=1;n=1;seed=1;kernel=epanechnikov;strategy=halo;mode=eager",
        ] {
            assert!(DistSpec::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rank_report_roundtrip() {
        for report in [
            RankReport {
                processed: 12,
                compute_secs: 0.25,
                grid: None,
            },
            RankReport {
                processed: 0,
                compute_secs: 0.0,
                grid: Some(vec![1.0, -2.5, 0.0]),
            },
        ] {
            assert_eq!(RankReport::decode(&report.encode()).unwrap(), report);
        }
        assert!(RankReport::decode(&[0u8; 3]).is_err());
        assert!(RankReport::decode(&[0u8; 20]).is_err());
    }

    #[test]
    fn spec_rank_program_matches_run_on_thread_backend() {
        // The env-spec'd rank program over the in-process world must
        // reproduce distmem::run exactly: same problem, same routing,
        // same deterministic apply order.
        let s = spec();
        let direct = super::super::run::<f64, _>(
            &s.problem(),
            &Epanechnikov,
            &s.points(),
            3,
            DistStrategy::HaloExchange,
        )
        .unwrap();
        let out = World::new(3).run::<DistMsg<f64>, _, _>(|comm| s.run_rank(comm).unwrap());
        let report = s.decode_report(&out.outputs[0]).unwrap();
        let grid = s.grid_from_report(&report).unwrap();
        assert_eq!(grid.as_slice(), direct.grid.as_slice(), "bit-identical");
        assert_eq!(report.processed, direct.processed[0]);
        // Ranks 1+ carry no grid.
        assert!(s.decode_report(&out.outputs[1]).unwrap().grid.is_none());
    }
}
