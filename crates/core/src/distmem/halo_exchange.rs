//! `DIST-HALO`: compute full cylinders locally, ship ghost layers.
//!
//! The distributed analogue of `PB-SYM-DR` (paper §4.1): scattered points
//! are first routed *home* (one copy each, to the rank owning their center
//! layer), then every rank rasterizes its points' *entire* cylinders — no
//! cut invariants, work-efficient — into a slab extended by `Ht` ghost
//! layers on each side. The ghost layers are then sent to the ranks that
//! own them and added in. Overhead is halo memory (`2·Ht·Gx·Gy` voxels
//! per rank) and voxel-sized messages, the distributed echo of DR's
//! replica-reduction cost.
//!
//! # Overlapping exchange with compute
//!
//! Only *boundary* points — those whose cylinder's T-extent leaves the
//! owned slab — contribute to ghost layers. In
//! [`HaloMode::Overlapped`] a rank therefore rasterizes its boundary
//! points first, posts the ghost-layer sends immediately (sends never
//! block on either backend: the in-process world uses unbounded channels,
//! the process backend per-peer writer threads), and only then computes
//! the interior bulk. The expensive transfers are in flight — being
//! serialized, written, read, and decoded by peer reader threads —
//! while both sides are busy computing. [`HaloMode::Phased`] keeps the
//! original compute-everything-then-exchange schedule as the measurable
//! baseline.
//!
//! Received halos are buffered and applied in sender-rank order, so the
//! float summation order — and therefore the result, bit for bit — is
//! independent of arrival order, thread count, and backend.

use super::apply::apply_point_slab;
use super::slab::{owner_of, owners_of_layers, slab_bounds, slab_range};
use super::{gather_slabs, DistMsg, HaloMode, RankOutput, TAG_HALO, TAG_POINTS};
use crate::kernel_apply::Scratch;
use crate::problem::Problem;
use stkde_comm::{CommError, WorldComm};
use stkde_data::Point;
use stkde_grid::{Grid3, GridDims, Scalar, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

pub(super) fn rank_main<S, K, C>(
    comm: &mut C,
    problem: &Problem,
    kernel: &K,
    local: Vec<Point>,
    mode: HaloMode,
) -> Result<RankOutput<S>, CommError>
where
    S: Scalar,
    K: SpaceTimeKernel,
    C: WorldComm<DistMsg<S>>,
{
    let dims = problem.domain.dims();
    let size = comm.size();
    let rank = comm.rank();
    let ht = problem.vbw.ht;
    let layer = dims.gx * dims.gy;

    // Phase 0 — home routing: send each scattered point to the one rank
    // whose slab contains its center layer, so every cylinder fits that
    // rank's extended slab. One copy per point — work-efficient, unlike
    // the point-exchange strategy's replication.
    let mut outgoing: Vec<Vec<Point>> = vec![Vec::new(); size];
    for p in &local {
        let (_, _, tv) = problem.domain.voxel_of(p.as_array());
        outgoing[owner_of(dims.gt, size, tv)].push(*p);
    }
    for (to, batch) in outgoing.into_iter().enumerate() {
        comm.send(to, TAG_POINTS, DistMsg::Points(batch))?;
    }
    let mut local = Vec::new();
    for from in 0..size {
        match comm.recv(from, TAG_POINTS)? {
            DistMsg::Points(batch) => local.extend(batch),
            DistMsg::Layers { .. } => {
                return Err(CommError::Protocol(format!(
                    "unexpected Layers from rank {from} during home routing"
                )));
            }
        }
    }

    let slab = slab_range(dims, size, rank);
    // The extended slab this rank's full cylinders can reach.
    let ext_t0 = slab.t0.saturating_sub(ht);
    let ext_t1 = (slab.t1 + ht).min(dims.gt);
    let mut ext: Grid3<S> = Grid3::zeros(GridDims::new(dims.gx, dims.gy, ext_t1 - ext_t0));
    let clip = VoxelRange {
        t0: ext_t0,
        t1: ext_t1,
        ..VoxelRange::full(dims)
    };

    // A point is a *boundary* point iff its cylinder's T-extent
    // [tv-Ht, tv+Ht] leaves the owned slab — only those touch ghost
    // layers, so once they are rasterized the halos are final.
    let touches_halo = |p: &Point| {
        let (_, _, tv) = problem.domain.voxel_of(p.as_array());
        tv < slab.t0 + ht || tv + ht >= slab.t1
    };

    let mut scratch = Scratch::default();
    let mut compute_secs = 0.0;
    let scatter = |ext: &mut Grid3<S>, pts: &[Point], scratch: &mut Scratch<S>| {
        let start = std::time::Instant::now();
        for p in pts {
            apply_point_slab(ext, ext_t0, problem, kernel, p, clip, scratch);
        }
        start.elapsed().as_secs_f64()
    };

    // The ghost regions this rank computed for other ranks' slabs.
    let send_halos = |ext: &Grid3<S>, comm: &mut C| -> Result<(), CommError> {
        for r in owners_of_layers(dims.gt, size, ext_t0, ext_t1) {
            if r == rank {
                continue;
            }
            let (rt0, rt1) = slab_bounds(dims.gt, size, r);
            let lo = ext_t0.max(rt0);
            let hi = ext_t1.min(rt1);
            if lo >= hi {
                continue;
            }
            let data = ext.as_slice()[(lo - ext_t0) * layer..(hi - ext_t0) * layer].to_vec();
            comm.send(r, TAG_HALO, DistMsg::Layers { t0: lo, data })?;
        }
        Ok(())
    };

    #[cfg(feature = "obs")]
    let mode_label = match mode {
        HaloMode::Overlapped => "overlapped",
        HaloMode::Phased => "phased",
    };
    match mode {
        HaloMode::Overlapped => {
            // Boundary first: the instant those cylinders land, every
            // ghost layer is final and its send can be posted …
            let (boundary, interior): (Vec<Point>, Vec<Point>) =
                local.iter().partition(|p| touches_halo(p));
            compute_secs += scatter(&mut ext, &boundary, &mut scratch);
            send_halos(&ext, comm)?;
            // … and the interior bulk computes while the wire works.
            compute_secs += scatter(&mut ext, &interior, &mut scratch);
        }
        HaloMode::Phased => {
            compute_secs += scatter(&mut ext, &local, &mut scratch);
            send_halos(&ext, comm)?;
        }
    }

    #[cfg(feature = "obs")]
    stkde_obs::global()
        .histogram(
            stkde_obs::names::HALO_COMPUTE_SECONDS,
            &[("mode", mode_label)],
        )
        .observe(compute_secs);

    // Receive every ghost region other ranks computed for us. The sender
    // set is deterministic: rank r' sends iff its extended slab overlaps
    // our slab (mirror of the send loop above).
    let expected = (0..size)
        .filter(|&r| r != rank)
        .filter(|&r| {
            let (rt0, rt1) = slab_bounds(dims.gt, size, r);
            let e0 = rt0.saturating_sub(ht);
            let e1 = (rt1 + ht).min(dims.gt);
            e0.max(slab.t0) < e1.min(slab.t1)
        })
        .count();
    #[cfg(feature = "obs")]
    let wait_start = std::time::Instant::now();
    let mut halos: Vec<(usize, usize, Vec<S>)> = Vec::with_capacity(expected);
    for _ in 0..expected {
        match comm.recv_any(TAG_HALO)? {
            (from, DistMsg::Layers { t0, data }) => {
                debug_assert!(t0 >= slab.t0 && t0 * layer + data.len() <= slab.t1 * layer);
                halos.push((from, t0, data));
            }
            (from, DistMsg::Points(_)) => {
                return Err(CommError::Protocol(format!(
                    "unexpected Points from rank {from} during halo exchange"
                )));
            }
        }
    }
    #[cfg(feature = "obs")]
    stkde_obs::global()
        .histogram(stkde_obs::names::HALO_WAIT_SECONDS, &[("mode", mode_label)])
        .observe(wait_start.elapsed().as_secs_f64());
    // Apply in sender order, not arrival order: overlapping ghost regions
    // then sum in a fixed order, keeping the result bit-reproducible
    // across backends, thread counts, and message races.
    halos.sort_unstable_by_key(|&(from, t0, _)| (from, t0));
    for (_, t0, data) in &halos {
        let dst = &mut ext.as_mut_slice()[(t0 - ext_t0) * layer..][..data.len()];
        for (d, &s) in dst.iter_mut().zip(data) {
            *d += s;
        }
    }

    // Extract the owned slab and assemble on rank 0.
    let own = ext.as_slice()[(slab.t0 - ext_t0) * layer..(slab.t1 - ext_t0) * layer].to_vec();
    let own = Grid3::from_vec(GridDims::new(dims.gx, dims.gy, slab.t1 - slab.t0), own);
    let grid = gather_slabs(comm, problem, slab.t0, own)?;
    Ok(RankOutput {
        grid,
        compute_secs,
        processed: local.len(),
    })
}
