//! `DIST-HALO`: compute full cylinders locally, ship ghost layers.
//!
//! The distributed analogue of `PB-SYM-DR` (paper §4.1): scattered points
//! are first routed *home* (one copy each, to the rank owning their center
//! layer), then every rank rasterizes its points' *entire* cylinders — no
//! cut invariants, work-efficient — into a slab extended by `Ht` ghost
//! layers on each side. The ghost layers are then sent to the ranks that
//! own them and added in. Overhead is halo memory (`2·Ht·Gx·Gy` voxels
//! per rank) and voxel-sized messages, the distributed echo of DR's
//! replica-reduction cost.

use super::apply::apply_point_slab;
use super::slab::{owner_of, owners_of_layers, slab_bounds, slab_range};
use super::{gather_slabs, DistMsg, RankOutput, TAG_HALO, TAG_POINTS};
use crate::kernel_apply::Scratch;
use crate::problem::Problem;
use stkde_comm::Comm;
use stkde_data::Point;
use stkde_grid::{Grid3, GridDims, Scalar, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

pub(super) fn rank_main<S: Scalar, K: SpaceTimeKernel>(
    comm: &mut Comm<DistMsg<S>>,
    problem: &Problem,
    kernel: &K,
    local: Vec<Point>,
) -> RankOutput<S> {
    let dims = problem.domain.dims();
    let size = comm.size();
    let rank = comm.rank();
    let ht = problem.vbw.ht;
    let layer = dims.gx * dims.gy;

    // Phase 0 — home routing: send each scattered point to the one rank
    // whose slab contains its center layer, so every cylinder fits that
    // rank's extended slab. One copy per point — work-efficient, unlike
    // the point-exchange strategy's replication.
    let mut outgoing: Vec<Vec<Point>> = vec![Vec::new(); size];
    for p in &local {
        let (_, _, tv) = problem.domain.voxel_of(p.as_array());
        outgoing[owner_of(dims.gt, size, tv)].push(*p);
    }
    for (to, batch) in outgoing.into_iter().enumerate() {
        comm.send(to, TAG_POINTS, DistMsg::Points(batch));
    }
    let mut local = Vec::new();
    for from in 0..size {
        match comm.recv(from, TAG_POINTS) {
            DistMsg::Points(batch) => local.extend(batch),
            DistMsg::Layers { .. } => unreachable!("layers during home routing"),
        }
    }

    let slab = slab_range(dims, size, rank);
    // The extended slab this rank's full cylinders can reach.
    let ext_t0 = slab.t0.saturating_sub(ht);
    let ext_t1 = (slab.t1 + ht).min(dims.gt);
    let mut ext: Grid3<S> = Grid3::zeros(GridDims::new(dims.gx, dims.gy, ext_t1 - ext_t0));
    let clip = VoxelRange {
        t0: ext_t0,
        t1: ext_t1,
        ..VoxelRange::full(dims)
    };

    // Phase 1 — full (unclipped within the extended slab) cylinders of the
    // rank's own points. Work-efficient: every invariant computed once.
    let mut scratch = Scratch::default();
    let start = std::time::Instant::now();
    for p in &local {
        apply_point_slab(&mut ext, ext_t0, problem, kernel, p, clip, &mut scratch);
    }
    let compute_secs = start.elapsed().as_secs_f64();

    // Phase 2 — ship each ghost region to its owner.
    for r in owners_of_layers(dims.gt, size, ext_t0, ext_t1) {
        if r == rank {
            continue;
        }
        let (rt0, rt1) = slab_bounds(dims.gt, size, r);
        let lo = ext_t0.max(rt0);
        let hi = ext_t1.min(rt1);
        if lo >= hi {
            continue;
        }
        let data = ext.as_slice()[(lo - ext_t0) * layer..(hi - ext_t0) * layer].to_vec();
        comm.send(r, TAG_HALO, DistMsg::Layers { t0: lo, data });
    }

    // Phase 3 — receive every ghost region other ranks computed for us.
    // The sender set is deterministic: rank r' sends iff its extended slab
    // overlaps our slab (mirror of the send loop above).
    let expected = (0..size)
        .filter(|&r| r != rank)
        .filter(|&r| {
            let (rt0, rt1) = slab_bounds(dims.gt, size, r);
            let e0 = rt0.saturating_sub(ht);
            let e1 = (rt1 + ht).min(dims.gt);
            e0.max(slab.t0) < e1.min(slab.t1)
        })
        .count();
    for _ in 0..expected {
        match comm.recv_any(TAG_HALO) {
            (_, DistMsg::Layers { t0, data }) => {
                debug_assert!(t0 >= slab.t0 && t0 * layer + data.len() <= slab.t1 * layer);
                let dst = &mut ext.as_mut_slice()[(t0 - ext_t0) * layer..][..data.len()];
                for (d, &s) in dst.iter_mut().zip(&data) {
                    *d += s;
                }
            }
            (from, DistMsg::Points(_)) => {
                unreachable!("unexpected Points from rank {from} during halo exchange")
            }
        }
    }

    // Phase 4 — extract the owned slab and assemble on rank 0.
    let own = ext.as_slice()[(slab.t0 - ext_t0) * layer..(slab.t1 - ext_t0) * layer].to_vec();
    let own = Grid3::from_vec(GridDims::new(dims.gx, dims.gy, slab.t1 - slab.t0), own);
    let grid = gather_slabs(comm, problem, slab.t0, own);
    RankOutput {
        grid,
        compute_secs,
        processed: local.len(),
    }
}
