//! A parametric cost model and automatic algorithm selection.
//!
//! The paper's conclusion: *"What we need to do is to develop a parametric
//! model for the problem that will take into account memory availability,
//! cost of memory initialization, expected cost of computing the kernel
//! density. Using that model finding the best execution strategy becomes a
//! combinatorial problem."* This module implements that future-work item.
//!
//! The model prices the three cost classes the paper identifies:
//!
//! * **initialization** — `Θ(G)` memory writes, with sub-linear parallel
//!   scaling (the paper measures ≈3× at 16 threads because page faults
//!   serialize in the OS; we expose that as [`CostModel::mem_parallelism`]);
//! * **kernel computation** — `Θ(n·(2Hs+1)²(2Ht+1))` voxel updates, scaling
//!   with threads up to load imbalance;
//! * **replication overhead** — extra init/reduce (`DR`, `REP`) or cut
//!   cylinders (`DD`).

use crate::engine::Algorithm;
use crate::problem::Problem;
use stkde_grid::Decomp;

/// Machine/cost coefficients (in arbitrary consistent units; only ratios
/// matter for selection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of initializing one voxel.
    pub init_per_voxel: f64,
    /// Cost of one kernel voxel update.
    pub update_per_voxel: f64,
    /// Cost of reducing one voxel (read + add + write).
    pub reduce_per_voxel: f64,
    /// Effective parallelism ceiling of memory-bound phases (the paper
    /// observes ≈3 on its 16-core node).
    pub mem_parallelism: f64,
    /// Load-imbalance headroom assumed for decomposed compute phases
    /// (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            // A kernel update (one fused multiply-add on a hot row) is
            // cheaper than a cold-memory init write.
            init_per_voxel: 1.0,
            update_per_voxel: 0.6,
            reduce_per_voxel: 1.2,
            mem_parallelism: 3.0,
            imbalance: 1.3,
        }
    }
}

impl CostModel {
    fn mem_scale(&self, threads: usize) -> f64 {
        (threads as f64).min(self.mem_parallelism).max(1.0)
    }

    /// Predicted cost of the sequential `PB-SYM`.
    pub fn predict_pb_sym(&self, problem: &Problem) -> f64 {
        problem.init_cost() * self.init_per_voxel + problem.compute_cost() * self.update_per_voxel
    }

    /// Predicted cost of `PB-SYM-DR` on `threads` workers.
    pub fn predict_dr(&self, problem: &Problem, threads: usize) -> f64 {
        let g = problem.init_cost();
        let p = threads as f64;
        let init = p * g * self.init_per_voxel / self.mem_scale(threads);
        let compute = problem.compute_cost() * self.update_per_voxel / p;
        let reduce = p * g * self.reduce_per_voxel / self.mem_scale(threads);
        init + compute + reduce
    }

    /// Estimated DD point-replication factor for a cubic `k³` lattice:
    /// per axis, a cylinder of extent `2H+1` voxels overlaps
    /// `≈ 1 + 2H/(G/k)` subdomains on average.
    pub fn dd_replication(&self, problem: &Problem, decomp: Decomp) -> f64 {
        let dims = problem.domain.dims();
        let per_axis = |g: usize, k: usize, h: usize| -> f64 {
            let width = (g as f64 / k as f64).max(1.0);
            1.0 + (2 * h) as f64 / width
        };
        per_axis(dims.gx, decomp.a, problem.vbw.hs)
            * per_axis(dims.gy, decomp.b, problem.vbw.hs)
            * per_axis(dims.gt, decomp.c, problem.vbw.ht)
    }

    /// Predicted cost of `PB-SYM-DD` with lattice `decomp`.
    pub fn predict_dd(&self, problem: &Problem, decomp: Decomp, threads: usize) -> f64 {
        let init = problem.init_cost() * self.init_per_voxel / self.mem_scale(threads);
        let rep = self.dd_replication(problem, decomp);
        let compute =
            rep * problem.compute_cost() * self.update_per_voxel * self.imbalance / threads as f64;
        init + compute
    }

    /// Predicted cost of `PB-SYM-PD-SCHED` (work-efficient; imbalance only).
    pub fn predict_pd_sched(&self, problem: &Problem, threads: usize) -> f64 {
        let init = problem.init_cost() * self.init_per_voxel / self.mem_scale(threads);
        let compute =
            problem.compute_cost() * self.update_per_voxel * self.imbalance / threads as f64;
        init + compute
    }
}

/// Pick an algorithm (and decomposition) for the instance using the default
/// cost model, honoring the memory budget.
pub fn select(problem: &Problem, threads: usize, memory_limit: usize) -> Algorithm {
    let model = CostModel::default();
    if threads <= 1 {
        return Algorithm::PbSym;
    }
    let mut best = (model.predict_pb_sym(problem), Algorithm::PbSym);
    // DR, if it fits in memory (4-byte voxels assumed for the estimate).
    let dr_bytes = threads * problem.domain.dims().volume() * 4;
    if dr_bytes <= memory_limit {
        let c = model.predict_dr(problem, threads);
        if c < best.0 {
            best = (c, Algorithm::PbSymDr);
        }
    }
    // DD and PD-SCHED over candidate cubic lattices.
    for k in [4usize, 8, 16, 32] {
        let d = Decomp::cubic(k);
        let c = model.predict_dd(problem, d, threads);
        if c < best.0 {
            best = (c, Algorithm::PbSymDd { decomp: d });
        }
    }
    let pd = model.predict_pd_sched(problem, threads);
    if pd < best.0 {
        best = (
            pd,
            Algorithm::PbSymPdSchedRep {
                decomp: Decomp::cubic(16),
            },
        );
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::{Bandwidth, Domain, GridDims};

    /// Sparse, init-dominated instance (Flu-like): huge grid, few points.
    fn sparse() -> Problem {
        Problem::new(
            Domain::from_dims(GridDims::new(300, 300, 300)),
            Bandwidth::new(2.0, 2.0),
            1000,
        )
    }

    /// Compute-dominated instance (PollenUS-Hb-like): small grid, many
    /// points, fat cylinders.
    fn dense() -> Problem {
        Problem::new(
            Domain::from_dims(GridDims::new(64, 64, 16)),
            Bandwidth::new(12.0, 6.0),
            200_000,
        )
    }

    #[test]
    fn dr_never_selected_for_sparse_instances() {
        let alg = select(&sparse(), 16, usize::MAX);
        assert_ne!(
            alg,
            Algorithm::PbSymDr,
            "replicating a huge sparse grid is the paper's worst case"
        );
    }

    #[test]
    fn parallel_algorithm_selected_for_dense_instances() {
        let alg = select(&dense(), 16, usize::MAX);
        assert_ne!(alg, Algorithm::PbSym, "dense instance should parallelize");
    }

    #[test]
    fn memory_limit_disqualifies_dr() {
        let p = dense();
        let unlimited = CostModel::default().predict_dr(&p, 16);
        assert!(unlimited.is_finite());
        // With a tiny budget, DR cannot be chosen even if cheap.
        let alg = select(&p, 16, 1024);
        assert_ne!(alg, Algorithm::PbSymDr);
    }

    #[test]
    fn single_thread_always_pb_sym() {
        assert_eq!(select(&dense(), 1, usize::MAX), Algorithm::PbSym);
        assert_eq!(select(&sparse(), 1, usize::MAX), Algorithm::PbSym);
    }

    #[test]
    fn dd_replication_monotone_in_k() {
        let p = dense();
        let m = CostModel::default();
        let r4 = m.dd_replication(&p, Decomp::cubic(4));
        let r16 = m.dd_replication(&p, Decomp::cubic(16));
        assert!(r4 >= 1.0);
        assert!(r16 > r4, "finer lattice must replicate more");
    }

    #[test]
    fn predictions_positive_and_ordered() {
        let m = CostModel::default();
        for p in [sparse(), dense()] {
            let seq = m.predict_pb_sym(&p);
            assert!(seq > 0.0);
            // 16-thread PD-SCHED should beat sequential on compute-heavy
            // instances.
            if p.compute_cost() > 10.0 * p.init_cost() {
                assert!(m.predict_pd_sched(&p, 16) < seq);
            }
        }
    }
}
