//! Error types for the STKDE engine.

use std::fmt;

/// Errors from STKDE computations.
///
/// The paper's experiments hit real resource limits (PB-SYM-DR and small-
/// decomposition PB-SYM-PD-REP run out of memory on the Flu/eBird high-
/// resolution instances, Figures 8 and 14); this library surfaces those as
/// typed [`StkdeError::MemoryLimit`] errors rather than aborting, so
/// harnesses can report them the way the paper's figures do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StkdeError {
    /// The algorithm's memory requirement exceeds the configured budget.
    MemoryLimit {
        /// Bytes the algorithm would need.
        required: usize,
        /// The configured budget in bytes.
        limit: usize,
        /// What the memory is for (e.g. "domain replicas").
        what: &'static str,
    },
    /// Invalid configuration (e.g. zero threads).
    InvalidConfig(String),
    /// A distributed run's communication failed (dead rank, timeout,
    /// malformed wire traffic — see `stkde_comm::CommError`).
    Comm(String),
}

impl fmt::Display for StkdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StkdeError::MemoryLimit {
                required,
                limit,
                what,
            } => write!(
                f,
                "out of memory: {what} needs {:.1} MiB but the budget is {:.1} MiB",
                *required as f64 / (1024.0 * 1024.0),
                *limit as f64 / (1024.0 * 1024.0)
            ),
            StkdeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            StkdeError::Comm(msg) => write!(f, "communication failure: {msg}"),
        }
    }
}

impl std::error::Error for StkdeError {}

/// Default memory budget: `MemAvailable` from `/proc/meminfo` when
/// readable (Linux), otherwise 8 GiB.
pub fn default_memory_budget() -> usize {
    const FALLBACK: usize = 8 << 30;
    let Ok(info) = std::fs::read_to_string("/proc/meminfo") else {
        return FALLBACK;
    };
    for line in info.lines() {
        if let Some(rest) = line.strip_prefix("MemAvailable:") {
            if let Some(kb) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<usize>().ok())
            {
                return kb * 1024;
            }
        }
    }
    FALLBACK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_memory_limit() {
        let e = StkdeError::MemoryLimit {
            required: 64 << 20,
            limit: 32 << 20,
            what: "domain replicas",
        };
        let s = e.to_string();
        assert!(s.contains("domain replicas"));
        assert!(s.contains("64.0 MiB"));
        assert!(s.contains("32.0 MiB"));
    }

    #[test]
    fn display_invalid_config() {
        let e = StkdeError::InvalidConfig("threads must be > 0".into());
        assert!(e.to_string().contains("threads"));
    }

    #[test]
    fn default_budget_positive() {
        assert!(default_memory_budget() > 0);
    }
}
