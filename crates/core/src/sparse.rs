//! Sparse-grid STKDE — an extension that removes the `Θ(G)`
//! initialization term.
//!
//! Figure 7 of the paper shows that on sparse instances (Flu: 31K events
//! over a world-spanning 20 GB grid) the runtime of `PB-SYM` is dominated
//! by *initializing* the voxel grid, and §6.3 shows that this phase caps
//! every parallel algorithm's speedup at ≈3 because zeroing memory does
//! not parallelize. The paper attacks the symptom (parallel first-touch);
//! this module removes the cause: density is accumulated into a
//! [`SparseGrid3`] that allocates fixed-shape blocks only where cylinders
//! actually land, so both memory and initialization cost scale with the
//! *touched* volume `O(n·Hs²·Ht)` instead of the domain volume
//! `Θ(Gx·Gy·Gt)`.
//!
//! Two algorithms are provided:
//!
//! * [`run`] — sequential sparse `PB-SYM`;
//! * [`run_dr`] — sparse domain replication: the DR strategy of §4.1
//!   becomes viable on exactly the instances where dense DR fails (the
//!   paper reports OOM on Flu Hr / eBird Hr), because each worker's
//!   replica only materializes the blocks its own points touch, and the
//!   reduction is proportional to touched blocks rather than `P·Θ(G)`.
//!
//! The trade-off is per-write block indirection, which loses on dense
//! instances (eBird-style, where every block would be allocated anyway);
//! the `ablation_sparse` harness and `benches/sparse.rs` quantify the
//! crossover.

use crate::kernel_apply::{write_region, Scratch};
use crate::parallel::{chunk_bounds, make_pool};
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use crate::StkdeError;
use rayon::prelude::*;
use stkde_data::Point;
use stkde_grid::{BlockDims, Scalar, SparseGrid3, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Result of a sparse STKDE computation.
#[derive(Debug, Clone)]
pub struct SparseResult<S> {
    /// The block-sparse density grid.
    pub grid: SparseGrid3<S>,
    /// Phase timing breakdown (`init` is the block-table setup).
    pub timings: PhaseTimings,
    /// Worker threads used.
    pub threads: usize,
}

impl<S: Scalar> SparseResult<S> {
    /// Fraction of the domain's blocks that were actually allocated —
    /// the instance's *sparsity* as seen by this backend.
    pub fn occupancy(&self) -> f64 {
        self.grid.occupancy()
    }
}

/// Scatter one point's cylinder into a sparse grid using the `PB-SYM`
/// scatter engine, writing only the non-zero span of each disk row so
/// block allocation tracks the cylinder (not its bounding box).
fn apply_point_sparse<S: Scalar, K: SpaceTimeKernel>(
    grid: &mut SparseGrid3<S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    scratch: &mut SparseScratch,
) {
    let r = write_region(problem, p, VoxelRange::full(problem.domain.dims()));
    if r.is_empty() {
        return;
    }
    // f64 staging regardless of the grid scalar: the sparse backend
    // converts at `add_row_f64` time, like the dense path converts on
    // accumulation. The engine's packed `(T, Kt)` plane list is not
    // built — this loop consumes the f64 bar directly.
    scratch.inv.fill_axes(problem, p, r);
    scratch.inv.fill_chords(problem, p, r);
    scratch.inv.fill_disk(kernel, r, problem.norm);
    scratch.inv.fill_bar(kernel);
    // The engine's chords carry a guard voxel of exact zeros per side;
    // trim each row's zero fringe once per point (reused across all T
    // planes) so blocks are only allocated for voxels the cylinder
    // actually touches.
    scratch.spans.clear();
    for c in &scratch.inv.chords {
        let disk_row = &scratch.inv.disk[c.off as usize..c.off as usize + c.len()];
        match disk_row.iter().position(|&v| v != 0.0) {
            None => scratch.spans.push((0, 0)),
            Some(s) => {
                let e = disk_row.len()
                    - disk_row
                        .iter()
                        .rev()
                        .position(|&v| v != 0.0)
                        .expect("non-empty");
                scratch.spans.push((s as u32, e as u32));
            }
        }
    }
    for (ti, t) in (r.t0..r.t1).enumerate() {
        let kt = scratch.inv.bar[ti];
        if kt == 0.0 {
            continue;
        }
        for (yi, y) in (r.y0..r.y1).enumerate() {
            let (s, e) = scratch.spans[yi];
            if s == e {
                continue;
            }
            let c = scratch.inv.chords[yi];
            let disk_row =
                &scratch.inv.disk[c.off as usize + s as usize..c.off as usize + e as usize];
            scratch.row.clear();
            scratch.row.extend(disk_row.iter().map(|&ks| ks * kt));
            grid.add_row_f64(y, t, c.x0 as usize + s as usize, &scratch.row);
        }
    }
}

/// Per-worker scratch for the sparse kernel: the shared engine invariants
/// (f64 staging), the per-row product buffer, and the per-point trimmed
/// nonzero span of each chord.
#[derive(Debug, Default, Clone)]
struct SparseScratch {
    inv: Scratch<f64>,
    row: Vec<f64>,
    spans: Vec<(u32, u32)>,
}

/// Sequential sparse `PB-SYM` with the default block shape.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (SparseGrid3<S>, PhaseTimings) {
    run_with_blocks(problem, kernel, points, BlockDims::DEFAULT)
}

/// Sequential sparse `PB-SYM` with an explicit block shape.
pub fn run_with_blocks<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    blocks: BlockDims,
) -> (SparseGrid3<S>, PhaseTimings) {
    let mut sw = Stopwatch::start();
    let mut grid = SparseGrid3::with_blocks(problem.domain.dims(), blocks);
    let init = sw.lap();
    let mut scratch = SparseScratch::default();
    for p in points {
        apply_point_sparse(&mut grid, problem, kernel, p, &mut scratch);
    }
    let compute = sw.lap();
    (
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    )
}

/// Sparse domain replication: each worker accumulates its chunk of the
/// points into a private *sparse* replica; replicas are merged block-wise.
///
/// Unlike dense `PB-SYM-DR` (`Θ(P·G)` memory, OOM on the paper's Flu Hr and
/// eBird Hr instances), the replicas here cost only what the worker's own
/// points touch, so no memory guard is needed — worst case equals the dense
/// footprint plus block-rounding.
pub fn run_dr<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
    blocks: BlockDims,
) -> Result<(SparseGrid3<S>, PhaseTimings), StkdeError> {
    let pool = make_pool(threads)?;
    let dims = problem.domain.dims();
    pool.install(|| {
        let mut sw = Stopwatch::start();
        // Phase 1+2: per-worker sparse replicas (allocation happens lazily
        // inside compute, so `init` is just the block tables).
        let mut replicas: Vec<SparseGrid3<S>> = (0..threads)
            .map(|_| SparseGrid3::with_blocks(dims, blocks))
            .collect();
        let init = sw.lap();

        replicas.par_iter_mut().enumerate().for_each(|(i, g)| {
            let (s, e) = chunk_bounds(points.len(), threads, i);
            let mut scratch = SparseScratch::default();
            for p in &points[s..e] {
                apply_point_sparse(g, problem, kernel, p, &mut scratch);
            }
        });
        let compute = sw.lap();

        // Phase 3: block-wise merge, cost ∝ allocated blocks only.
        let mut iter = replicas.into_iter();
        let mut acc = iter.next().expect("threads >= 1 checked by make_pool");
        for r in iter {
            acc.merge_from(&r);
        }
        let reduce = sw.lap();

        Ok((
            acc,
            PhaseTimings {
                init,
                compute,
                reduce,
                ..Default::default()
            },
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::{Epanechnikov, Quartic};

    fn setup(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(48, 40, 24));
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(4.0, 3.0), n), points)
    }

    #[test]
    fn sparse_matches_dense_pb_sym() {
        let (problem, points) = setup(50, 11);
        let (dense, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (sparse, t) = run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(sparse.max_abs_diff_dense(&dense) < 1e-12);
        assert!(t.compute >= t.init, "block-table init should be cheap");
    }

    #[test]
    fn sparse_matches_dense_for_other_kernels() {
        let (problem, points) = setup(25, 12);
        let (dense, _) = pb_sym::run::<f64, _>(&problem, &Quartic, &points);
        let (sparse, _) = run::<f64, _>(&problem, &Quartic, &points);
        assert!(sparse.max_abs_diff_dense(&dense) < 1e-12);
    }

    #[test]
    fn single_point_touches_few_blocks() {
        let domain = Domain::from_dims(GridDims::new(256, 256, 128));
        let problem = Problem::new(domain, Bandwidth::new(3.0, 2.0), 1);
        let points = [Point::new(128.0, 128.0, 64.0)];
        let (sparse, _) =
            run_with_blocks::<f32, _>(&problem, &Epanechnikov, &points, BlockDims::new(8, 8, 8));
        // Cylinder bounding box is 7×7×5 voxels; at 8³ blocks it can touch
        // at most 2×2×2 block corners.
        assert!(
            sparse.allocated_blocks() <= 8,
            "{}",
            sparse.allocated_blocks()
        );
        assert!(sparse.occupancy() < 0.001);
    }

    #[test]
    fn allocation_tracks_cylinder_not_bounding_box() {
        // With 1³ blocks, allocated blocks == touched voxels; a disk's
        // corner voxels (outside u²+v²<1) must not be allocated.
        let domain = Domain::from_dims(GridDims::new(64, 64, 16));
        let problem = Problem::new(domain, Bandwidth::new(8.0, 2.0), 1);
        let points = [Point::new(32.0, 32.0, 8.0)];
        let (sparse, _) =
            run_with_blocks::<f64, _>(&problem, &Epanechnikov, &points, BlockDims::new(1, 1, 1));
        let bounding_box = 17 * 17 * 5;
        assert!(
            sparse.allocated_blocks() < bounding_box,
            "corners of the bounding box should be skipped: {} vs {}",
            sparse.allocated_blocks(),
            bounding_box
        );
    }

    #[test]
    fn dr_matches_sequential_sparse() {
        let (problem, points) = setup(60, 13);
        let (seq, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        for threads in [1, 2, 4] {
            let (par, t) = run_dr::<f64, _>(
                &problem,
                &Epanechnikov,
                &points,
                threads,
                BlockDims::DEFAULT,
            )
            .unwrap();
            assert!(
                par.max_abs_diff_dense(&seq.to_dense()) < 1e-12,
                "threads={threads}"
            );
            if threads > 1 {
                assert!(t.reduce.as_nanos() > 0);
            }
        }
    }

    #[test]
    fn dr_memory_is_bounded_by_touched_blocks() {
        // Flu-like: few points, huge grid. Dense DR at 4 threads would need
        // 4·G·8 bytes; sparse DR must stay far below one dense grid.
        let domain = Domain::from_dims(GridDims::new(512, 512, 256));
        let problem = Problem::new(domain, Bandwidth::new(2.0, 1.0), 8);
        let points = synth::uniform(8, domain.extent(), 14).into_vec();
        let (g, _) =
            run_dr::<f64, _>(&problem, &Epanechnikov, &points, 4, BlockDims::DEFAULT).unwrap();
        let dense_bytes = domain.dims().bytes::<f64>();
        assert!(
            g.allocated_bytes() < dense_bytes / 10,
            "sparse {} vs dense {}",
            g.allocated_bytes(),
            dense_bytes
        );
    }

    #[test]
    fn empty_points_allocate_nothing() {
        let (problem, _) = setup(0, 15);
        let (g, _) = run::<f64, _>(&problem, &Epanechnikov, &[]);
        assert_eq!(g.allocated_blocks(), 0);
        assert_eq!(g.sum(), 0.0);
    }

    #[test]
    fn zero_threads_rejected() {
        let (problem, points) = setup(4, 16);
        assert!(run_dr::<f64, _>(&problem, &Epanechnikov, &points, 0, BlockDims::DEFAULT).is_err());
    }

    #[test]
    fn mass_conservation_matches_dense() {
        let (problem, points) = setup(30, 17);
        let (dense, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (sparse, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let dense_sum: f64 = dense.as_slice().iter().sum();
        assert!((sparse.sum() - dense_sum).abs() < 1e-9);
    }
}
