//! Sparse-grid STKDE — an extension that removes the `Θ(G)`
//! initialization term.
//!
//! Figure 7 of the paper shows that on sparse instances (Flu: 31K events
//! over a world-spanning 20 GB grid) the runtime of `PB-SYM` is dominated
//! by *initializing* the voxel grid, and §6.3 shows that this phase caps
//! every parallel algorithm's speedup at ≈3 because zeroing memory does
//! not parallelize. The paper attacks the symptom (parallel first-touch);
//! this module removes the cause: density is accumulated into a
//! Morton-brick [`SparseGrid3`] that materializes 8³ bricks only where
//! cylinders actually land, so both memory and initialization cost scale
//! with the *touched* volume `O(n·Hs²·Ht)` instead of the domain volume
//! `Θ(Gx·Gy·Gt)`.
//!
//! Three algorithms are provided:
//!
//! * [`run`] — sequential sparse `PB-SYM`. It rides the shared scatter
//!   engine's native-scalar invariants (`Scratch<S>`), trimming each
//!   chord row to its non-zero span so brick allocation tracks the
//!   cylinder, not its bounding box. Because every surviving voxel goes
//!   through the same elementwise `axpy_row` arithmetic as the dense
//!   path, the sparse result is **bit-identical** to dense `PB-SYM` for
//!   both `f32` and `f64`.
//! * [`run_par`] — parallel sparse `PB-SYM` over **one shared grid**:
//!   the time axis is split into contiguous worker-owned slabs (weighted
//!   by per-layer chord area), each point is bucketed into every slab
//!   its cylinder touches (preserving point order), and each worker
//!   scatters with its slab as the T-clip. Voxel ownership is exclusive
//!   by construction, so no merge step exists; bricks straddling a slab
//!   boundary are materialized exactly once by the grid's lock-free
//!   CAS-on-slot protocol ([`stkde_grid::brick`]). The X/Y invariants do
//!   not depend on the T-clip and the temporal planes use absolute `T`,
//!   so every written value — and the per-voxel accumulation order — is
//!   identical to the sequential path: `run_par` is **bit-identical** to
//!   [`run`], at any thread or slab count.
//! * [`run_dr`] — sparse domain replication, retained as the
//!   replica-per-worker alternative (§4.1): each worker scatters its
//!   contiguous chunk of the points into a private sparse replica, and
//!   replicas are merged brick-wise, so the reduction costs one pointer
//!   sweep of the brick table plus `O(512)` adds per *touched* brick —
//!   not `P·Θ(G)` like dense DR (which the paper reports as OOM on
//!   Flu Hr / eBird Hr). The merge re-associates floating-point sums, so
//!   unlike [`run_par`] this path is only approximately equal to [`run`]
//!   (within rounding); it remains the reference for the
//!   replicate-and-reduce ablation.
//!
//! The trade-off is one table indirection per ≤8-voxel row segment,
//! which loses on dense instances (eBird-style, where every brick would
//! be allocated anyway); the `ablation_sparse` harness and
//! `benches/sparse.rs` quantify the crossover.

use crate::kernel_apply::{write_region, Scratch};
use crate::parallel::{chunk_bounds, make_pool};
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use crate::StkdeError;
use rayon::prelude::*;
use stkde_data::Point;
use stkde_grid::{Scalar, SharedSparseGrid, SparseGrid3, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Result of a sparse STKDE computation.
#[derive(Debug, Clone)]
pub struct SparseResult<S: Scalar> {
    /// The brick-sparse density grid.
    pub grid: SparseGrid3<S>,
    /// Phase timing breakdown (`init` is the brick-table setup, `bin`
    /// the slab planning and point bucketing of the parallel path).
    pub timings: PhaseTimings,
    /// Worker threads used.
    pub threads: usize,
}

impl<S: Scalar> SparseResult<S> {
    /// Fraction of the domain's bricks that were actually allocated —
    /// the instance's *sparsity* as seen by this backend.
    pub fn occupancy(&self) -> f64 {
        self.grid.occupancy()
    }
}

/// Per-worker scratch for the sparse kernel: the shared engine
/// invariants in the grid's native scalar, plus the per-point trimmed
/// non-zero span of each chord.
#[derive(Debug, Default, Clone)]
struct SparseScratch<S> {
    inv: Scratch<S>,
    spans: Vec<(u32, u32)>,
}

/// Scatter one point's cylinder into the shared sparse grid through the
/// `PB-SYM` engine, clipped to `clip`, writing only the non-zero span of
/// each disk row so brick allocation tracks the cylinder (not its
/// bounding box).
///
/// The engine's chords carry a guard voxel of exact zeros per side;
/// skipping those (and any all-zero row) removes only `+= 0` writes on
/// non-negative values, so the surviving writes are bit-identical to the
/// dense engine's [`scatter_rows`](crate::kernel_apply) over the same
/// clip.
///
/// # Safety
/// The caller must hold exclusive access to `p`'s cylinder voxels
/// clipped to `clip` (see [`SharedSparseGrid::axpy_row`]).
unsafe fn apply_point_sparse<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedSparseGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut SparseScratch<S>,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    scratch.inv.prepare_sym(problem, kernel, p, r);
    // Trim each row's zero fringe once per point (reused across all T
    // planes) so bricks are only allocated for voxels the cylinder
    // actually touches.
    scratch.spans.clear();
    for c in &scratch.inv.chords {
        let disk_row = &scratch.inv.disk[c.off as usize..c.off as usize + c.len()];
        let span = match disk_row.iter().position(|&v| v != S::ZERO) {
            None => (0, 0),
            Some(s) => {
                let tail = disk_row
                    .iter()
                    .rev()
                    .position(|&v| v != S::ZERO)
                    .unwrap_or(0);
                (s as u32, (disk_row.len() - tail) as u32)
            }
        };
        scratch.spans.push(span);
    }
    #[cfg(feature = "obs")]
    let mut segments = 0u64;
    // Same loop shape as the dense engine's `scatter_rows`: Y outermost
    // so a chord's `Ks` values are loaded once and reused across planes.
    for (yi, y) in (r.y0..r.y1).enumerate() {
        let (s, e) = scratch.spans[yi];
        if s >= e {
            continue;
        }
        let c = scratch.inv.chords[yi];
        let ks = &scratch.inv.disk[c.off as usize + s as usize..c.off as usize + e as usize];
        let x0 = c.x0 as usize + s as usize;
        for &(t, kt) in &scratch.inv.planes {
            // SAFETY: forwarded from the caller contract.
            unsafe { grid.axpy_row(y, t as usize, x0, ks, kt) };
            #[cfg(feature = "obs")]
            {
                // Brick-row segments this write touched (brick edge = 8).
                segments += (((x0 + ks.len() - 1) >> 3) - (x0 >> 3) + 1) as u64;
            }
        }
    }
    #[cfg(feature = "obs")]
    tally::segments(segments);
}

/// Sequential sparse `PB-SYM`. Bit-identical to the dense `PB-SYM`
/// reference for both scalar types (see the module docs).
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (SparseGrid3<S>, PhaseTimings) {
    let mut sw = Stopwatch::start();
    let mut grid = SparseGrid3::new(problem.domain.dims());
    let init = sw.lap();
    let clip = VoxelRange::full(problem.domain.dims());
    {
        let shared = SharedSparseGrid::new(&mut grid);
        let mut scratch = SparseScratch::default();
        for p in points {
            // SAFETY: `shared` is the only handle to the grid and this
            // loop is single-threaded — access is exclusive.
            unsafe { apply_point_sparse(&shared, problem, kernel, p, clip, &mut scratch) };
        }
    }
    let compute = sw.lap();
    #[cfg(feature = "obs")]
    tally::totals(grid.allocated_bricks() as u64, grid.alloc_cas_races());
    (
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    )
}

/// Parallel sparse `PB-SYM` over one shared grid, partitioned into
/// worker-owned time slabs. Bit-identical to [`run`] (see module docs).
///
/// The slab count adapts to `min(threads, available cores, Gt)`: slabs
/// beyond the physical core count add duplicated per-point invariant
/// setup without adding parallelism, so a single-core host degenerates
/// to the sequential path plus pool dispatch.
pub fn run_par<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
) -> Result<(SparseGrid3<S>, PhaseTimings), StkdeError> {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    let cores = *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let nslabs = threads.min(cores).max(1);
    run_par_slabs(problem, kernel, points, threads, nslabs)
}

/// [`run_par`] with an explicit slab count — exposed so correctness
/// tests can force multi-slab execution (and boundary-straddling brick
/// races) on hosts where the adaptive count would collapse to one slab.
pub fn run_par_slabs<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
    nslabs: usize,
) -> Result<(SparseGrid3<S>, PhaseTimings), StkdeError> {
    if threads == 0 {
        return Err(StkdeError::InvalidConfig("threads must be > 0".into()));
    }
    let dims = problem.domain.dims();
    let nslabs = nslabs.clamp(1, dims.gt.max(1));

    let mut sw = Stopwatch::start();
    let mut grid = SparseGrid3::new(dims);
    let init = sw.lap();

    let slabs = plan_slabs(problem, points, nslabs);
    if slabs.len() <= 1 {
        // One slab ⇒ the parallel path is the sequential loop; skip the
        // bucketing pass and the pool dispatch entirely.
        let clip = VoxelRange::full(dims);
        {
            let shared = SharedSparseGrid::new(&mut grid);
            let mut scratch = SparseScratch::default();
            for p in points {
                // SAFETY: single-threaded — access is exclusive.
                unsafe { apply_point_sparse(&shared, problem, kernel, p, clip, &mut scratch) };
            }
        }
        let compute = sw.lap();
        #[cfg(feature = "obs")]
        tally::totals(grid.allocated_bricks() as u64, grid.alloc_cas_races());
        return Ok((
            grid,
            PhaseTimings {
                init,
                compute,
                ..Default::default()
            },
        ));
    }

    // The pool is only materialized once a multi-slab plan exists: the
    // one-slab degenerate case above must not pay worker-set costs.
    let pool = make_pool(threads)?;
    let buckets = bucket_points(problem, points, &slabs);
    let bin = sw.lap();

    {
        let shared = SharedSparseGrid::new(&mut grid);
        let shared = &shared;
        pool.install(|| {
            (0..slabs.len()).into_par_iter().for_each(|si| {
                let (t0, t1) = slabs[si];
                let clip = VoxelRange {
                    x0: 0,
                    x1: dims.gx,
                    y0: 0,
                    y1: dims.gy,
                    t0,
                    t1,
                };
                let mut scratch = SparseScratch::default();
                for &pi in &buckets[si] {
                    // SAFETY: the slabs partition the T axis, so every
                    // voxel is written by exactly one worker; brick-slot
                    // races at slab boundaries are resolved by the
                    // grid's CAS allocation protocol.
                    unsafe {
                        apply_point_sparse(
                            shared,
                            problem,
                            kernel,
                            &points[pi as usize],
                            clip,
                            &mut scratch,
                        )
                    };
                }
            });
        });
    }
    let compute = sw.lap();
    #[cfg(feature = "obs")]
    tally::totals(grid.allocated_bricks() as u64, grid.alloc_cas_races());
    Ok((
        grid,
        PhaseTimings {
            init,
            bin,
            compute,
            ..Default::default()
        },
    ))
}

/// Split the time axis into at most `nslabs` contiguous half-open slabs
/// with approximately equal *scatter work*, where each layer's weight is
/// the summed clipped `X·Y` bounding area of the cylinders covering it
/// (a difference array + prefix sum, `O(n + Gt)`).
fn plan_slabs(problem: &Problem, points: &[Point], nslabs: usize) -> Vec<(usize, usize)> {
    let gt = problem.domain.dims().gt;
    if nslabs <= 1 || gt <= 1 || points.is_empty() {
        return vec![(0, gt)];
    }
    let full = VoxelRange::full(problem.domain.dims());
    let mut diff = vec![0.0f64; gt + 1];
    for p in points {
        let r = write_region(problem, p, full);
        if r.is_empty() {
            continue;
        }
        let w = ((r.x1 - r.x0) * (r.y1 - r.y0)) as f64;
        diff[r.t0] += w;
        diff[r.t1] -= w;
    }
    // cum[t] = total work in layers [0, t).
    let mut cum = vec![0.0f64; gt + 1];
    let mut layer = 0.0;
    for t in 0..gt {
        layer += diff[t];
        cum[t + 1] = cum[t] + layer;
    }
    let total = cum[gt];
    if total <= 0.0 {
        return vec![(0, gt)];
    }
    let mut bounds = vec![0usize];
    for k in 1..nslabs {
        let target = total * k as f64 / nslabs as f64;
        let lo = bounds[bounds.len() - 1] + 1;
        let mut t = lo;
        while t < gt && cum[t] < target {
            t += 1;
        }
        if t < gt {
            bounds.push(t);
        } else {
            break;
        }
    }
    bounds.push(gt);
    bounds.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Bucket point *indices* into every slab their cylinder's T-extent
/// intersects, preserving global point order within each bucket (which
/// is what makes the slab-owned accumulation order match [`run`]).
fn bucket_points(problem: &Problem, points: &[Point], slabs: &[(usize, usize)]) -> Vec<Vec<u32>> {
    let full = VoxelRange::full(problem.domain.dims());
    let mut buckets = vec![Vec::new(); slabs.len()];
    for (i, p) in points.iter().enumerate() {
        let r = write_region(problem, p, full);
        if r.is_empty() {
            continue;
        }
        for (si, &(s0, s1)) in slabs.iter().enumerate() {
            if r.t0 < s1 && s0 < r.t1 {
                buckets[si].push(i as u32);
            }
        }
    }
    buckets
}

/// Sparse domain replication: each worker accumulates its chunk of the
/// points into a private *sparse* replica; replicas are merged
/// brick-wise.
///
/// Unlike dense `PB-SYM-DR` (`Θ(P·G)` memory, OOM on the paper's Flu Hr
/// and eBird Hr instances), the replicas here cost only what the
/// worker's own points touch, so no memory guard is needed — worst case
/// equals the dense footprint plus brick-rounding. The merge
/// re-associates sums, so results match [`run`] to rounding, not
/// bitwise; [`run_par`] is the exact parallel path.
pub fn run_dr<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
) -> Result<(SparseGrid3<S>, PhaseTimings), StkdeError> {
    let pool = make_pool(threads)?;
    let dims = problem.domain.dims();
    pool.install(|| {
        let mut sw = Stopwatch::start();
        // Phase 1+2: per-worker sparse replicas (allocation happens lazily
        // inside compute, so `init` is just the brick tables).
        let mut replicas: Vec<SparseGrid3<S>> =
            (0..threads).map(|_| SparseGrid3::new(dims)).collect();
        let init = sw.lap();

        let clip = VoxelRange::full(dims);
        replicas.par_iter_mut().enumerate().for_each(|(i, g)| {
            let (s, e) = chunk_bounds(points.len(), threads, i);
            let shared = SharedSparseGrid::new(g);
            let mut scratch = SparseScratch::default();
            for p in &points[s..e] {
                // SAFETY: `g` is this worker's private replica.
                unsafe { apply_point_sparse(&shared, problem, kernel, p, clip, &mut scratch) };
            }
        });
        let compute = sw.lap();

        // Phase 3: brick-wise merge, cost ∝ allocated bricks (plus a
        // pointer sweep of each replica's slot table).
        let mut iter = replicas.into_iter();
        let Some(mut acc) = iter.next() else {
            return Err(StkdeError::InvalidConfig(format!(
                "threads must be > 0, got {threads}"
            )));
        };
        for r in iter {
            acc.merge_from(&r);
        }
        let reduce = sw.lap();

        Ok((
            acc,
            PhaseTimings {
                init,
                compute,
                reduce,
                ..Default::default()
            },
        ))
    })
}

/// Sparse-backend tallies (`obs` feature only): brick allocation and
/// write-side locality counters, cataloged in OBSERVABILITY.md.
#[cfg(feature = "obs")]
mod tally {
    use stkde_obs::names;

    /// Brick-row segments written by the scatter loop.
    #[inline]
    pub(super) fn segments(n: u64) {
        if n > 0 {
            stkde_obs::counter!(names::SPARSE_BRICKS_TOUCHED).add(n);
        }
    }

    /// End-of-run allocation totals.
    pub(super) fn totals(allocated: u64, races: u64) {
        stkde_obs::counter!(names::SPARSE_BRICKS_ALLOCATED).add(allocated);
        stkde_obs::counter!(names::SPARSE_ALLOC_CAS_RACES).add(races);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::{Epanechnikov, Quartic};

    fn setup(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(48, 40, 24));
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(4.0, 3.0), n), points)
    }

    #[test]
    fn sparse_is_bit_identical_to_dense_pb_sym_f64() {
        let (problem, points) = setup(50, 11);
        let (dense, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (sparse, t) = run::<f64, _>(&problem, &Epanechnikov, &points);
        assert_eq!(sparse.to_dense(), dense, "sparse must match dense bitwise");
        assert!(t.compute >= t.init, "brick-table init should be cheap");
        assert_eq!(sparse.alloc_cas_races(), 0, "sequential path cannot race");
    }

    #[test]
    fn sparse_is_bit_identical_to_dense_pb_sym_f32() {
        let (problem, points) = setup(50, 11);
        let (dense, _) = pb_sym::run::<f32, _>(&problem, &Epanechnikov, &points);
        let (sparse, _) = run::<f32, _>(&problem, &Epanechnikov, &points);
        assert_eq!(sparse.to_dense(), dense, "native-scalar path, no staging");
    }

    #[test]
    fn sparse_matches_dense_for_other_kernels() {
        let (problem, points) = setup(25, 12);
        let (dense, _) = pb_sym::run::<f64, _>(&problem, &Quartic, &points);
        let (sparse, _) = run::<f64, _>(&problem, &Quartic, &points);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn single_point_touches_few_bricks() {
        let domain = Domain::from_dims(GridDims::new(256, 256, 128));
        let problem = Problem::new(domain, Bandwidth::new(3.0, 2.0), 1);
        let points = [Point::new(128.0, 128.0, 64.0)];
        let (sparse, _) = run::<f32, _>(&problem, &Epanechnikov, &points);
        // Cylinder bounding box is 7×7×5 voxels; at 8³ bricks it can touch
        // at most 2×2×2 brick corners.
        assert!(
            sparse.allocated_bricks() <= 8,
            "{}",
            sparse.allocated_bricks()
        );
        assert!(sparse.occupancy() < 0.001);
    }

    #[test]
    fn allocation_tracks_cylinder_not_bounding_box() {
        // Radius-32 disk: the corner bricks of its bounding box lie
        // entirely outside the disk (nearest corner distance ≈ 33.9 > 32)
        // and must not be allocated, because the chord trim drops rows'
        // zero fringes before any brick is touched.
        let domain = Domain::from_dims(GridDims::new(128, 128, 16));
        let problem = Problem::new(domain, Bandwidth::new(32.0, 2.0), 1);
        let points = [Point::new(64.0, 64.0, 8.0)];
        let (sparse, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        // Bounding box spans 9×9 brick columns × 2 brick layers.
        let bounding_bricks = 9 * 9 * 2;
        assert!(
            sparse.allocated_bricks() < bounding_bricks,
            "corners of the bounding box should be skipped: {} vs {}",
            sparse.allocated_bricks(),
            bounding_bricks
        );
    }

    #[test]
    fn run_par_is_bit_identical_to_run_for_forced_slab_counts() {
        let (problem, points) = setup(60, 13);
        let (seq, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let seq_dense = seq.to_dense();
        for (threads, nslabs) in [(1, 1), (2, 2), (4, 3), (8, 8), (4, 24)] {
            let (par, _) =
                run_par_slabs::<f64, _>(&problem, &Epanechnikov, &points, threads, nslabs).unwrap();
            assert_eq!(
                par.to_dense(),
                seq_dense,
                "threads={threads} nslabs={nslabs}"
            );
            assert_eq!(par.allocated_bricks(), seq.allocated_bricks());
        }
    }

    #[test]
    fn run_par_is_bit_identical_to_run_f32() {
        let (problem, points) = setup(40, 19);
        let (seq, _) = run::<f32, _>(&problem, &Epanechnikov, &points);
        for nslabs in [2, 5, 8] {
            let (par, _) =
                run_par_slabs::<f32, _>(&problem, &Epanechnikov, &points, 4, nslabs).unwrap();
            assert_eq!(par.to_dense(), seq.to_dense(), "nslabs={nslabs}");
        }
    }

    #[test]
    fn run_par_adaptive_matches_run() {
        let (problem, points) = setup(35, 21);
        let (seq, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let (par, _) = run_par::<f64, _>(&problem, &Epanechnikov, &points, 8).unwrap();
        assert_eq!(par.to_dense(), seq.to_dense());
    }

    #[test]
    fn slab_plan_partitions_the_time_axis() {
        let (problem, points) = setup(80, 23);
        for nslabs in [1, 2, 3, 8, 100] {
            let slabs = plan_slabs(&problem, &points, nslabs);
            assert!(!slabs.is_empty() && slabs.len() <= nslabs.max(1));
            assert_eq!(slabs[0].0, 0);
            assert_eq!(slabs[slabs.len() - 1].1, problem.domain.dims().gt);
            for w in slabs.windows(2) {
                assert_eq!(w[0].1, w[1].0, "slabs must tile contiguously");
                assert!(w[0].0 < w[0].1, "slabs must be non-empty");
            }
        }
    }

    #[test]
    fn dr_matches_sequential_sparse() {
        let (problem, points) = setup(60, 13);
        let (seq, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        for threads in [1, 2, 4] {
            let (par, t) = run_dr::<f64, _>(&problem, &Epanechnikov, &points, threads).unwrap();
            assert!(
                par.max_abs_diff_dense(&seq.to_dense()) < 1e-12,
                "threads={threads}"
            );
            if threads > 1 {
                assert!(t.reduce.as_nanos() > 0);
            }
        }
    }

    #[test]
    fn dr_memory_is_bounded_by_touched_bricks() {
        // Flu-like: few points, huge grid. Dense DR at 4 threads would need
        // 4·G·8 bytes; sparse DR must stay far below one dense grid.
        let domain = Domain::from_dims(GridDims::new(512, 512, 256));
        let problem = Problem::new(domain, Bandwidth::new(2.0, 1.0), 8);
        let points = synth::uniform(8, domain.extent(), 14).into_vec();
        let (g, _) = run_dr::<f64, _>(&problem, &Epanechnikov, &points, 4).unwrap();
        let dense_bytes = domain.dims().bytes::<f64>();
        assert!(
            g.allocated_bytes() < dense_bytes / 10,
            "sparse {} vs dense {}",
            g.allocated_bytes(),
            dense_bytes
        );
    }

    #[test]
    fn empty_points_allocate_nothing() {
        let (problem, _) = setup(0, 15);
        let (g, _) = run::<f64, _>(&problem, &Epanechnikov, &[]);
        assert_eq!(g.allocated_bricks(), 0);
        assert_eq!(g.sum(), 0.0);
        let (g, _) = run_par::<f64, _>(&problem, &Epanechnikov, &[], 4).unwrap();
        assert_eq!(g.allocated_bricks(), 0);
    }

    #[test]
    fn zero_threads_rejected() {
        let (problem, points) = setup(4, 16);
        assert!(run_dr::<f64, _>(&problem, &Epanechnikov, &points, 0).is_err());
        assert!(run_par::<f64, _>(&problem, &Epanechnikov, &points, 0).is_err());
    }

    #[test]
    fn mass_conservation_matches_dense() {
        let (problem, points) = setup(30, 17);
        let (dense, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (sparse, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let dense_sum: f64 = dense.as_slice().iter().sum();
        assert!((sparse.sum() - dense_sum).abs() < 1e-9);
    }
}
