//! `PB-SYM-PD-REP` — point decomposition with critical-path replication
//! (paper §5.2).
//!
//! When one clustered subdomain dominates the critical path, coloring alone
//! cannot help: the subdomain's points are inherently serial. `PD-REP`
//! makes the offending tasks *moldable*: their points are split into `r`
//! replicas that accumulate into **private halo-sized buffers** — free of
//! every stencil constraint — followed by a cheap merge task that adds the
//! buffers into the shared grid under the original constraints. This is a
//! localized `PB-SYM-DR`: extra memory and init/reduce work, but only for
//! the few subdomains that actually throttle parallelism.
//!
//! With lexicographic coloring this is the paper's `PB-SYM-PD-REP`; with
//! load-aware coloring it is the `PB-SYM-PD-SCHED-REP` of Figure 15.

use crate::error::StkdeError;
use crate::kernel_apply::{apply_point, PointKernel, Scratch};
use crate::parallel::chunk_bounds;
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use parking_lot::Mutex;
use stkde_data::Point;
use stkde_grid::{Decomp, Grid3, Scalar, SharedGrid, SubdomainId, VoxelRange};
use stkde_kernels::SpaceTimeKernel;
use stkde_sched::replication::{expand_dag, ExpandedDag, RepNode};
use stkde_sched::{plan_replication, run_dag, RepParams};

pub use super::pd_sched::Ordering;
use super::pd_sched::{plan as pd_plan, PdPlan};

/// The fully prepared `PD-REP` plan: the base `PD-SCHED` plan plus the
/// replication transformation.
#[derive(Debug, Clone)]
pub struct RepExecutionPlan {
    /// The underlying point-decomposition plan.
    pub base: PdPlan,
    /// Replica counts chosen by the planner.
    pub replicas: Vec<usize>,
    /// The expanded DAG (process / replica / merge nodes).
    pub expanded: ExpandedDag,
    /// Estimated merge cost per subdomain (halo voxels).
    pub merge_weights: Vec<f64>,
}

impl RepExecutionPlan {
    /// Simulated makespan of the expanded DAG on `p` virtual processors.
    pub fn simulate(&self, p: usize) -> f64 {
        stkde_sched::list_schedule(&self.expanded.dag, p, self.expanded.dag.weights()).makespan
    }

    /// Extra buffer memory the replicas need, in bytes, for scalar `S`.
    pub fn buffer_bytes<S: Scalar>(&self, problem: &Problem) -> usize {
        self.replicas
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r > 1)
            .map(|(v, &r)| {
                let halo = self.base.decomposition.halo(SubdomainId(v), problem.vbw);
                r * halo.volume() * std::mem::size_of::<S>()
            })
            .sum()
    }
}

/// Build the `PD-REP` plan for `threads` processors.
pub fn plan(
    problem: &Problem,
    points: &[Point],
    decomp: Decomp,
    threads: usize,
    ordering: Ordering,
) -> RepExecutionPlan {
    let base = pd_plan(problem, points, decomp, ordering);
    // Merge cost ≈ one add per halo voxel, in the same "voxel update" units
    // as the processing weights.
    let merge_weights: Vec<f64> = (0..base.decomposition.count())
        .map(|v| {
            base.decomposition
                .halo(SubdomainId(v), problem.vbw)
                .volume() as f64
        })
        .collect();
    let rep_plan = plan_replication(&base.dag, &RepParams::new(threads, merge_weights.clone()));
    let expanded = expand_dag(&base.dag, &rep_plan, &merge_weights);
    RepExecutionPlan {
        base,
        replicas: rep_plan.replicas,
        expanded,
        merge_weights,
    }
}

/// Execute a prepared `PD-REP` plan.
pub fn execute<S: Scalar, K: SpaceTimeKernel>(
    plan: &RepExecutionPlan,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
    memory_limit: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    if threads == 0 {
        return Err(StkdeError::InvalidConfig("threads must be > 0".into()));
    }
    let dims = problem.domain.dims();
    let required = dims.bytes::<S>() + plan.buffer_bytes::<S>(problem);
    if required > memory_limit {
        return Err(StkdeError::MemoryLimit {
            required,
            limit: memory_limit,
            what: "replica buffers (PB-SYM-PD-REP)",
        });
    }

    let full = VoxelRange::full(dims);
    let mut sw = Stopwatch::start();
    let mut grid = Grid3::zeros_parallel(dims);
    let init = sw.lap();

    // One slot per expanded node; replicas fill their slot, merges drain
    // their predecessors' slots.
    let buffers: Vec<Mutex<Option<Grid3<S>>>> = (0..plan.expanded.dag.n())
        .map(|_| Mutex::new(None))
        .collect();

    {
        let shared = SharedGrid::new(&mut grid);
        let shared = &shared;
        let nodes = &plan.expanded.nodes;
        let dag = &plan.expanded.dag;
        let base = &plan.base;
        let buffers = &buffers;

        run_dag(dag, threads, dag.weights(), |node| {
            let mut scratch = Scratch::default();
            match nodes[node] {
                RepNode::Process(v) => {
                    let id = SubdomainId(v);
                    for &pi in base.bins.points_of(id) {
                        // SAFETY: anchor nodes (process/merge) of adjacent
                        // subdomains are ordered by the DAG; non-adjacent
                        // subdomains have disjoint halos under the adjusted
                        // decomposition.
                        unsafe {
                            apply_point(
                                PointKernel::Sym,
                                shared,
                                problem,
                                kernel,
                                &points[pi as usize],
                                full,
                                &mut scratch,
                            );
                        }
                    }
                }
                RepNode::Replica {
                    task: v,
                    part,
                    parts,
                } => {
                    let id = SubdomainId(v);
                    let halo = base.decomposition.halo(id, problem.vbw);
                    let sub_domain = problem.domain.subdomain(halo);
                    let sub_problem = Problem::new(sub_domain, problem.bw, problem.n);
                    let mut buf: Grid3<S> = Grid3::zeros(sub_domain.dims());
                    {
                        let buf_shared = SharedGrid::new(&mut buf);
                        let list = base.bins.points_of(id);
                        let (s, e) = chunk_bounds(list.len(), parts, part);
                        let sub_full = VoxelRange::full(sub_domain.dims());
                        for &pi in &list[s..e] {
                            // SAFETY: `buf` is private to this task.
                            unsafe {
                                apply_point(
                                    PointKernel::Sym,
                                    &buf_shared,
                                    &sub_problem,
                                    kernel,
                                    &points[pi as usize],
                                    sub_full,
                                    &mut scratch,
                                );
                            }
                        }
                    }
                    *buffers[node].lock() = Some(buf);
                }
                RepNode::Merge(v) => {
                    let id = SubdomainId(v);
                    let halo = base.decomposition.halo(id, problem.vbw);
                    for &pred in dag.preds(node) {
                        if let RepNode::Replica { .. } = nodes[pred as usize] {
                            let buf = buffers[pred as usize]
                                .lock()
                                .take()
                                .expect("replica buffer missing at merge");
                            // SAFETY: the merge node carries the original
                            // stencil constraints, so no task that could
                            // write inside this halo runs concurrently.
                            unsafe {
                                merge_buffer(shared, halo, &buf);
                            }
                        }
                    }
                }
            }
        });
    }
    let compute = sw.lap();

    Ok((
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    ))
}

/// Add a halo-shaped private buffer into the shared grid.
///
/// # Safety
/// The caller must guarantee no concurrent access to `region` of `shared`
/// (here: by the merge node's stencil dependencies).
unsafe fn merge_buffer<S: Scalar>(shared: &SharedGrid<'_, S>, region: VoxelRange, buf: &Grid3<S>) {
    debug_assert_eq!(buf.dims().gx, region.width_x());
    debug_assert_eq!(buf.dims().gy, region.width_y());
    debug_assert_eq!(buf.dims().gt, region.width_t());
    for (st, t) in (region.t0..region.t1).enumerate() {
        for (sy, y) in (region.y0..region.y1).enumerate() {
            // SAFETY: forwarded from the caller contract.
            let dst = unsafe { shared.row_mut(y, t, region.x0, region.x1) };
            let src = buf.row(sy, st, 0, region.width_x());
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += v;
            }
        }
    }
}

/// Plan + execute in one call.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    decomp: Decomp,
    threads: usize,
    ordering: Ordering,
    memory_limit: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    let mut sw = Stopwatch::start();
    let plan = plan(problem, points, decomp, threads, ordering);
    let bin = sw.lap();
    let (grid, mut timings) = execute(&plan, problem, kernel, points, threads, memory_limit)?;
    timings.bin = bin;
    Ok((grid, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    /// Clustered setup that forces a dominant subdomain.
    fn clustered(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let spec = synth::ClusterSpec {
            clusters: 1,
            spatial_sigma: 0.02,
            temporal_sigma: 0.05,
            background: 0.1,
            weight_tail: 0.0,
            ..Default::default()
        };
        let points = spec.generate(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(2.0, 2.0), n), points)
    }

    #[test]
    fn matches_sequential_with_replication_active() {
        let (problem, points) = clustered(150, 3);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for ordering in [Ordering::Lexicographic, Ordering::LoadAware] {
            for threads in [1usize, 2, 4] {
                let (par, _) = run::<f64, _>(
                    &problem,
                    &Epanechnikov,
                    &points,
                    Decomp::cubic(8),
                    threads,
                    ordering,
                    usize::MAX,
                )
                .unwrap();
                assert!(
                    seq.max_rel_diff(&par, 1e-13) < 1e-9,
                    "{ordering:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn clustered_instance_triggers_replication() {
        let (problem, points) = clustered(300, 4);
        let p = plan(&problem, &points, Decomp::cubic(8), 4, Ordering::LoadAware);
        assert!(
            p.replicas.iter().any(|&r| r > 1),
            "hot subdomain should be replicated: {:?}",
            p.replicas
        );
        // Replication shortens the simulated makespan on 4 processors.
        let before = p.base.simulate(4);
        let after = p.simulate(4);
        assert!(
            after <= before + 1e-9,
            "replication should not hurt the simulated makespan ({before} -> {after})"
        );
    }

    #[test]
    fn uniform_instance_plans_trivially() {
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let points = synth::uniform(200, domain.extent(), 5).into_vec();
        let problem = Problem::new(domain, Bandwidth::new(2.0, 2.0), points.len());
        let p = plan(&problem, &points, Decomp::cubic(4), 2, Ordering::LoadAware);
        // Balanced loads: few (often zero) replications, tiny buffer needs.
        let bytes = p.buffer_bytes::<f32>(&problem);
        assert!(bytes <= 2 * problem.domain.dims().bytes::<f32>());
    }

    #[test]
    fn memory_guard_trips_like_the_paper() {
        // Small decomposition → halo ≈ whole grid → replication ≈ DR:
        // the paper's Figure 14 notes Flu Hr runs out of memory there.
        let (problem, points) = clustered(400, 6);
        let result = run::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            Decomp::cubic(1),
            4,
            Ordering::Lexicographic,
            problem.domain.dims().bytes::<f64>() + 1024, // barely one grid
        );
        match result {
            Err(StkdeError::MemoryLimit { what, .. }) => {
                assert!(what.contains("replica"));
            }
            Ok(_) => {
                // A 1³ decomposition may also legitimately skip replication
                // (single task ⇒ path == total work ⇒ planner gives up when
                // merge cost dominates); accept but require trivial plan.
                let p = plan(
                    &problem,
                    &points,
                    Decomp::cubic(1),
                    4,
                    Ordering::Lexicographic,
                );
                assert!(p.replicas.iter().all(|&r| r <= 4));
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn single_thread_execution_works() {
        let (problem, points) = clustered(80, 7);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (par, _) = run::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            Decomp::cubic(4),
            1,
            Ordering::LoadAware,
            usize::MAX,
        )
        .unwrap();
        assert!(seq.max_rel_diff(&par, 1e-13) < 1e-9);
    }
}
