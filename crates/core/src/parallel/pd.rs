//! `PB-SYM-PD` — phased point decomposition (paper Algorithm 6, §5.1).
//!
//! Points are partitioned (not replicated) over an A×B×C lattice whose
//! subdomains are at least `2Hs`/`2Ht` voxels wide; the eight parity
//! classes of the lattice are processed one after another, each class fully
//! in parallel. Work-efficient — no cylinder is cut, no grid replicated —
//! but the phase barriers over-constrain execution (paper: subdomains
//! `(1,0,0)` and `(64,64,64)` could safely run together yet sit in
//! different phases), motivating `PD-SCHED`.

use crate::error::StkdeError;
use crate::kernel_apply::{apply_point, PointKernel, Scratch};
use crate::parallel::make_pool;
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use rayon::prelude::*;
use stkde_data::{binning, Point};
use stkde_grid::{Decomp, Decomposition, Grid3, Scalar, SharedGrid, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB-SYM-PD` with the given (auto-adjusted) decomposition.
///
/// The decomposition is adjusted so every subdomain is at least twice the
/// bandwidth wide, as required for the parity classes to be safe (§5.1).
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    decomp: Decomp,
    threads: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    let pool = make_pool(threads)?;
    let dims = problem.domain.dims();
    let decomposition = Decomposition::adjusted(dims, decomp, problem.vbw);
    let full = VoxelRange::full(dims);

    pool.install(|| {
        let mut sw = Stopwatch::start();
        let bins = binning::bin_points(&problem.domain, &decomposition, points);
        let bin = sw.lap();

        let mut grid = Grid3::zeros_parallel(dims);
        let init = sw.lap();

        {
            let shared = SharedGrid::new(&mut grid);
            let shared = &shared;
            let decomposition = &decomposition;
            let bins = &bins;
            // Group subdomains by parity class once.
            let mut classes: Vec<Vec<usize>> = vec![Vec::new(); 8];
            for id in decomposition.ids() {
                classes[decomposition.parity_class(id)].push(id.0);
            }
            // Heaviest subdomain first within each class (LPT order): the
            // work-stealing pool splits each class list adaptively, and
            // starting the big clustered subdomains early keeps the phase
            // tail short. Writes stay disjoint, so the density field is
            // unchanged by the reordering.
            for class in &mut classes {
                class.sort_by_key(|&sd| {
                    std::cmp::Reverse(bins.points_of(stkde_grid::SubdomainId(sd)).len())
                });
            }
            // Eight phases, each a parallel-for (the paper's eight OpenMP
            // `parallel for` constructs).
            for class in &classes {
                class
                    .par_iter()
                    .for_each_init(Scratch::default, |scratch, &sd| {
                        let id = stkde_grid::SubdomainId(sd);
                        for &pi in bins.points_of(id) {
                            let p = &points[pi as usize];
                            // SAFETY: subdomains in one parity class are
                            // pairwise non-adjacent, and the adjusted
                            // decomposition guarantees ≥ 2·bandwidth widths, so
                            // their cylinder halos are disjoint (validated by
                            // `prop_nonadjacent_halos_disjoint_under_adjustment`
                            // and the WriteAudit integration tests).
                            unsafe {
                                apply_point(
                                    PointKernel::Sym,
                                    shared,
                                    problem,
                                    kernel,
                                    p,
                                    full,
                                    scratch,
                                );
                            }
                        }
                    });
            }
        }
        let compute = sw.lap();

        Ok((
            grid,
            PhaseTimings {
                init,
                bin,
                compute,
                ..Default::default()
            },
        ))
    })
}

/// The decomposition `PB-SYM-PD` will actually use for a requested shape
/// (after the ≥ 2·bandwidth adjustment) — exposed for harnesses that report
/// the adjusted lattice like the paper's Figure 11 caption.
pub fn effective_decomposition(problem: &Problem, decomp: Decomp) -> Decomposition {
    Decomposition::adjusted(problem.domain.dims(), decomp, problem.vbw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(40, 32, 24));
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(2.0, 2.0), n), points)
    }

    #[test]
    fn matches_sequential() {
        let (problem, points) = setup(100, 21);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for k in [1usize, 2, 4, 16] {
            for threads in [1usize, 2, 4] {
                let (par, _) =
                    run::<f64, _>(&problem, &Epanechnikov, &points, Decomp::cubic(k), threads)
                        .unwrap();
                assert!(
                    seq.max_rel_diff(&par, 1e-13) < 1e-9,
                    "k={k} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn decomposition_is_adjusted_to_bandwidth() {
        let (problem, _) = setup(1, 3);
        // Grid 40x32x24, Hs=2, Ht=2 → min widths 4 → at most 10x8x6.
        let d = effective_decomposition(&problem, Decomp::cubic(64));
        assert_eq!(d.decomp(), Decomp::new(10, 8, 6));
        let (wx, wy, wt) = d.min_widths();
        assert!(wx >= 4 && wy >= 4 && wt >= 4);
    }

    #[test]
    fn clustered_points_still_correct() {
        // All points in one subdomain — exercises empty parity classes.
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new(5.0 + (i % 5) as f64 * 0.1, 5.0, 5.0))
            .collect();
        let problem = Problem::new(domain, Bandwidth::new(2.0, 2.0), points.len());
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (par, _) =
            run::<f64, _>(&problem, &Epanechnikov, &points, Decomp::cubic(8), 4).unwrap();
        assert!(seq.max_rel_diff(&par, 1e-13) < 1e-9);
    }
}
