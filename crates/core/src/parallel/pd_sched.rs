//! `PB-SYM-PD-SCHED` — point decomposition with coloring + DAG scheduling
//! (paper §5.2).
//!
//! Instead of eight phase barriers, the real constraint is expressed
//! directly: a subdomain may run whenever no lattice *neighbor* is running.
//! A greedy coloring of the 27-point stencil graph orients every edge from
//! lower to higher color; the resulting task DAG is executed by the
//! dependency-counting worker pool of `stkde-sched` (the OpenMP `task
//! depend` stand-in). Coloring the subdomains in non-increasing load order
//! starts the heaviest subdomains first and shrinks the implied critical
//! path (Figure 12), which is what rescues the clustered PollenUS instances
//! (Figure 13).

use crate::error::StkdeError;
use crate::kernel_apply::{apply_point, PointKernel, Scratch};
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use stkde_data::{binning::Bins, Point};
use stkde_grid::{Decomp, Decomposition, Grid3, Scalar, SharedGrid, SubdomainId, VoxelRange};
use stkde_kernels::SpaceTimeKernel;
use stkde_sched::{
    coloring, critical_path, greedy_coloring, list_schedule, run_dag, CriticalPath, StencilGraph,
    TaskDag,
};

/// How the greedy coloring visits the subdomains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// Lexicographic order — a baseline equivalent in spirit to the phased
    /// `PB-SYM-PD` (but executed through the DAG, without barriers).
    Lexicographic,
    /// Non-increasing load order — the `PB-SYM-PD-SCHED` heuristic.
    LoadAware,
}

/// The prepared execution plan: decomposition, point bins, task weights,
/// and the colored dependency DAG. Exposed so harnesses can analyze the
/// critical path (Figure 12) without running the kernel computation.
#[derive(Debug, Clone)]
pub struct PdPlan {
    /// The (bandwidth-adjusted) subdomain lattice.
    pub decomposition: Decomposition,
    /// Per-subdomain point lists.
    pub bins: Bins,
    /// Estimated processing time per subdomain (points × cylinder box).
    pub weights: Vec<f64>,
    /// The oriented task DAG.
    pub dag: TaskDag,
}

impl PdPlan {
    /// Critical path of the plan's DAG.
    pub fn critical_path(&self) -> CriticalPath {
        critical_path(&self.dag)
    }

    /// Simulated makespan on `p` virtual processors (greedy list
    /// scheduling with the plan's priorities) — the model used to
    /// reproduce the paper's 16-thread speedups on smaller hosts.
    pub fn simulate(&self, p: usize) -> f64 {
        list_schedule(&self.dag, p, &self.weights).makespan
    }
}

/// Build the `PD-SCHED` plan: adjusted decomposition, binning, load
/// weights, greedy coloring in the chosen order, DAG orientation.
pub fn plan(problem: &Problem, points: &[Point], decomp: Decomp, ordering: Ordering) -> PdPlan {
    let decomposition = Decomposition::adjusted(problem.domain.dims(), decomp, problem.vbw);
    let bins = binning_for(problem, &decomposition, points);
    let box_vol = problem.vbw.cylinder_box_volume() as f64;
    // Processing time ∝ points in the subdomain × cylinder volume; +1 keeps
    // empty subdomains schedulable with nonzero cost (task overhead).
    let weights: Vec<f64> = bins
        .counts()
        .iter()
        .map(|&c| c as f64 * box_vol + 1.0)
        .collect();
    let graph = StencilGraph::from_decomposition(&decomposition);
    let order = match ordering {
        Ordering::Lexicographic => coloring::order_lexicographic(graph.n()),
        Ordering::LoadAware => coloring::order_by_weight_desc(&weights),
    };
    let coloring = greedy_coloring(&graph, &order);
    let dag = TaskDag::from_coloring(&graph, &coloring, weights.clone());
    PdPlan {
        decomposition,
        bins,
        weights,
        dag,
    }
}

fn binning_for(problem: &Problem, decomposition: &Decomposition, points: &[Point]) -> Bins {
    stkde_data::binning::bin_points(&problem.domain, decomposition, points)
}

/// Execute a prepared plan with `threads` workers.
pub fn execute<S: Scalar, K: SpaceTimeKernel>(
    plan: &PdPlan,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    if threads == 0 {
        return Err(StkdeError::InvalidConfig("threads must be > 0".into()));
    }
    let dims = problem.domain.dims();
    let full = VoxelRange::full(dims);
    let mut sw = Stopwatch::start();
    let mut grid = Grid3::zeros_parallel(dims);
    let init = sw.lap();
    {
        let shared = SharedGrid::new(&mut grid);
        let shared = &shared;
        run_dag(&plan.dag, threads, &plan.weights, |task| {
            let id = SubdomainId(task);
            let mut scratch = Scratch::default();
            for &pi in plan.bins.points_of(id) {
                let p = &points[pi as usize];
                // SAFETY: the DAG orders all adjacent subdomains, so any
                // two concurrently running tasks are non-adjacent; the
                // adjusted decomposition makes their halos disjoint.
                unsafe {
                    apply_point(
                        PointKernel::Sym,
                        shared,
                        problem,
                        kernel,
                        p,
                        full,
                        &mut scratch,
                    );
                }
            }
        });
    }
    let compute = sw.lap();
    Ok((
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    ))
}

/// Convenience wrapper: plan + execute, folding the binning time into the
/// returned timings.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    decomp: Decomp,
    threads: usize,
    ordering: Ordering,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    let mut sw = Stopwatch::start();
    let plan = plan(problem, points, decomp, ordering);
    let bin = sw.lap();
    let (grid, mut timings) = execute(&plan, problem, kernel, points, threads)?;
    timings.bin = bin;
    Ok((grid, timings))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(36, 30, 24));
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(2.0, 2.0), n), points)
    }

    #[test]
    fn matches_sequential_both_orderings() {
        let (problem, points) = setup(90, 31);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for ordering in [Ordering::Lexicographic, Ordering::LoadAware] {
            for threads in [1usize, 2, 4] {
                let (par, _) = run::<f64, _>(
                    &problem,
                    &Epanechnikov,
                    &points,
                    Decomp::cubic(8),
                    threads,
                    ordering,
                )
                .unwrap();
                assert!(
                    seq.max_rel_diff(&par, 1e-13) < 1e-9,
                    "{ordering:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn load_aware_critical_path_mostly_not_worse() {
        // The load-aware ordering is a heuristic; the paper (Figure 12)
        // finds it "marginally decreases the critical path in all but one
        // case". Check the same statistically: over several clustered
        // instances it should win or tie in the majority of cases and
        // never be catastrophically worse.
        let domain = Domain::from_dims(GridDims::new(48, 48, 24));
        let spec = synth::ClusterSpec {
            clusters: 3,
            spatial_sigma: 0.05,
            background: 0.1,
            ..Default::default()
        };
        let seeds = 8u64;
        let (mut sum_lex, mut sum_sched) = (0.0f64, 0.0f64);
        let (mut mk_lex, mut mk_sched) = (0.0f64, 0.0f64);
        for seed in 0..seeds {
            let points = spec.generate(400, domain.extent(), seed).into_vec();
            let problem = Problem::new(domain, Bandwidth::new(2.0, 2.0), points.len());
            let lex = plan(&problem, &points, Decomp::cubic(8), Ordering::Lexicographic);
            let sched = plan(&problem, &points, Decomp::cubic(8), Ordering::LoadAware);
            let cp_lex = lex.critical_path().relative(lex.dag.total_work());
            let cp_sched = sched.critical_path().relative(sched.dag.total_work());
            assert!(
                cp_sched <= cp_lex * 1.25,
                "seed {seed}: load-aware path {cp_sched} much worse than {cp_lex}"
            );
            sum_lex += cp_lex;
            sum_sched += cp_sched;
            mk_lex += lex.simulate(16);
            mk_sched += sched.simulate(16);
        }
        // In aggregate the load-aware ordering must not be worse — the
        // paper finds only marginal critical-path differences, with the
        // real gain showing up in execution (simulated makespan here).
        assert!(
            sum_sched <= sum_lex * 1.05,
            "mean load-aware path {sum_sched} vs lexicographic {sum_lex}"
        );
        assert!(
            mk_sched <= mk_lex * 1.05,
            "mean simulated makespan {mk_sched} vs {mk_lex}"
        );
    }

    #[test]
    fn simulate_gives_sane_speedups() {
        let (problem, points) = setup(200, 6);
        let p = plan(&problem, &points, Decomp::cubic(6), Ordering::LoadAware);
        let t1 = p.dag.total_work();
        let m1 = p.simulate(1);
        let m16 = p.simulate(16);
        assert!((m1 - t1).abs() / t1 < 1e-9, "P=1 must equal T1");
        assert!(m16 <= m1 && m16 >= t1 / 16.0 - 1e-9);
    }

    #[test]
    fn plan_weights_reflect_points() {
        let (problem, points) = setup(50, 7);
        let p = plan(&problem, &points, Decomp::cubic(4), Ordering::LoadAware);
        let total_points: usize = p.bins.counts().iter().sum();
        assert_eq!(total_points, 50);
        assert_eq!(p.weights.len(), p.decomposition.count());
    }
}
