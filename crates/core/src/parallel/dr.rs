//! `PB-SYM-DR` — domain replication (paper Algorithm 4, §4.1).
//!
//! Each of the `P` workers accumulates its share of the points into a
//! *private* copy of the grid; the copies are then summed in a pleasingly
//! parallel reduction. Three phases, all embarrassingly parallel — but the
//! memory requirement is `Θ(P·Gx·Gy·Gt)` and the added init/reduce work is
//! `Θ(P·Gx·Gy·Gt)`, so DR only wins when kernel computation dominates
//! (PollenUS-style instances, Figure 8) and *runs out of memory* on the
//! large sparse grids (Flu Hr, eBird Hr), which this implementation
//! surfaces as a typed error.

use crate::error::StkdeError;
use crate::kernel_apply::{apply_points_seq, PointKernel};
use crate::parallel::{chunk_bounds, make_pool};
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use rayon::prelude::*;
use stkde_data::Point;
use stkde_grid::{reduce, Grid3, Scalar, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB-SYM-DR` with `threads` workers under a memory budget.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    threads: usize,
    memory_limit: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    let dims = problem.domain.dims();
    let required = threads * dims.bytes::<S>();
    if required > memory_limit {
        return Err(StkdeError::MemoryLimit {
            required,
            limit: memory_limit,
            what: "domain replicas (PB-SYM-DR)",
        });
    }
    let pool = make_pool(threads)?;
    let full = VoxelRange::full(dims);

    pool.install(|| {
        let mut sw = Stopwatch::start();
        // Phase 1: each worker first-touches its own replica.
        let mut replicas: Vec<Grid3<S>> = (0..threads)
            .into_par_iter()
            .map(|_| Grid3::zeros_touched(dims))
            .collect();
        let init = sw.lap();

        // Phase 2: points are split evenly; each replica gets one chunk.
        replicas.par_iter_mut().enumerate().for_each(|(i, g)| {
            let (s, e) = chunk_bounds(points.len(), threads, i);
            apply_points_seq(PointKernel::Sym, g, problem, kernel, &points[s..e], full);
        });
        let compute = sw.lap();

        // Phase 3: parallel reduction of the replicas.
        let grid = reduce::reduce(replicas);
        let reduce_t = sw.lap();

        Ok((
            grid,
            PhaseTimings {
                init,
                compute,
                reduce: reduce_t,
                ..Default::default()
            },
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(24, 20, 12));
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(3.0, 2.0), n), points)
    }

    #[test]
    fn matches_sequential_for_various_thread_counts() {
        let (problem, points) = setup(60, 1);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for threads in [1, 2, 3, 4] {
            let (par, t) =
                run::<f64, _>(&problem, &Epanechnikov, &points, threads, usize::MAX).unwrap();
            assert!(
                seq.max_rel_diff(&par, 1e-13) < 1e-9,
                "threads={threads} diverges"
            );
            assert!(t.reduce.as_nanos() > 0);
        }
    }

    #[test]
    fn memory_guard_matches_paper_oom_behaviour() {
        let (problem, points) = setup(5, 2);
        let grid_bytes = problem.domain.dims().bytes::<f64>();
        let err = run::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            8,
            4 * grid_bytes, // budget fits 4 replicas, we ask for 8
        )
        .unwrap_err();
        match err {
            StkdeError::MemoryLimit {
                required, limit, ..
            } => {
                assert_eq!(required, 8 * grid_bytes);
                assert_eq!(limit, 4 * grid_bytes);
            }
            other => panic!("expected MemoryLimit, got {other}"),
        }
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let (problem, points) = setup(2, 3);
        let (par, _) = run::<f64, _>(&problem, &Epanechnikov, &points, 4, usize::MAX).unwrap();
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(seq.max_rel_diff(&par, 1e-13) < 1e-9);
    }

    #[test]
    fn empty_points_zero_grid() {
        let (problem, _) = setup(0, 4);
        let (g, _) = run::<f64, _>(&problem, &Epanechnikov, &[], 2, usize::MAX).unwrap();
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }
}
