//! `PB-SYM-DD` — domain decomposition (paper Algorithm 5, §4.2).
//!
//! The grid is split into an A×B×C lattice; every point is assigned to
//! *each* subdomain its cylinder touches, and subdomains are processed
//! independently with all writes clipped to the owning subdomain. No two
//! tasks ever write the same voxel, so the computation is pleasingly
//! parallel — at the price of recomputing kernel invariants for every cut
//! cylinder (the work overhead swept in Figure 9) and of load imbalance
//! when points cluster (Figure 10).

use crate::error::StkdeError;
use crate::kernel_apply::{apply_point, PointKernel, Scratch};
use crate::parallel::make_pool;
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use rayon::prelude::*;
use stkde_data::{binning, Point};
use stkde_grid::{Decomp, Decomposition, Grid3, Scalar, SharedGrid, SubdomainId};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB-SYM-DD` with the given decomposition and thread count.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    decomp: Decomp,
    threads: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    let pool = make_pool(threads)?;
    let dims = problem.domain.dims();
    let decomposition = Decomposition::new(dims, decomp);

    pool.install(|| {
        let mut sw = Stopwatch::start();
        // Replicated binning: a point goes to every subdomain its cylinder
        // intersects (Algorithm 5's intersection test).
        let bins =
            binning::bin_points_replicated(&problem.domain, &decomposition, points, problem.vbw);
        let bin = sw.lap();

        let mut grid = Grid3::zeros_parallel(dims);
        let init = sw.lap();

        {
            let shared = SharedGrid::new(&mut grid);
            let shared = &shared;
            let decomposition = &decomposition;
            let bins = &bins;
            // Heaviest subdomain first (LPT order): with replicated
            // binning the per-subdomain point counts are exactly the task
            // costs, and the work-stealing pool balances whatever the
            // descending order leaves over. Subdomain writes are disjoint,
            // so the reordering cannot change the result.
            let mut order: Vec<usize> = (0..decomposition.count()).collect();
            order.sort_by_key(|&sd| std::cmp::Reverse(bins.points_of(SubdomainId(sd)).len()));
            order
                .into_par_iter()
                .for_each_init(Scratch::default, |scratch, sd| {
                    let id = SubdomainId(sd);
                    // Writes are clipped to the subdomain's own voxel range,
                    // which is disjoint from every other subdomain's.
                    let clip = decomposition.voxel_range(id);
                    for &pi in bins.points_of(id) {
                        let p = &points[pi as usize];
                        // SAFETY: `clip` ranges of distinct subdomains are
                        // disjoint (Decomposition partitions the grid), so
                        // concurrent tasks never touch the same voxel.
                        unsafe {
                            apply_point(
                                PointKernel::Sym,
                                shared,
                                problem,
                                kernel,
                                p,
                                clip,
                                scratch,
                            );
                        }
                    }
                });
        }
        let compute = sw.lap();

        Ok((
            grid,
            PhaseTimings {
                init,
                bin,
                compute,
                ..Default::default()
            },
        ))
    })
}

/// The single-thread work-overhead measurement of Figure 9: the
/// replication factor of the binning (average subdomains per point), which
/// is the extra invariant/cylinder work DD performs relative to `PB-SYM`.
pub fn replication_factor(problem: &Problem, points: &[Point], decomp: Decomp) -> f64 {
    let decomposition = Decomposition::new(problem.domain.dims(), decomp);
    binning::bin_points_replicated(&problem.domain, &decomposition, points, problem.vbw)
        .replication_factor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup(n: usize, seed: u64) -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(32, 24, 16));
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, Bandwidth::new(3.0, 2.0), n), points)
    }

    #[test]
    fn matches_sequential_across_decomps_and_threads() {
        let (problem, points) = setup(80, 7);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        for k in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4] {
                let (par, _) =
                    run::<f64, _>(&problem, &Epanechnikov, &points, Decomp::cubic(k), threads)
                        .unwrap();
                assert!(
                    seq.max_rel_diff(&par, 1e-13) < 1e-9,
                    "decomp {k}^3, threads {threads} diverges"
                );
            }
        }
    }

    #[test]
    fn anisotropic_decomposition_works() {
        let (problem, points) = setup(40, 8);
        let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        let (par, _) =
            run::<f64, _>(&problem, &Epanechnikov, &points, Decomp::new(4, 1, 2), 2).unwrap();
        assert!(seq.max_rel_diff(&par, 1e-13) < 1e-9);
    }

    #[test]
    fn replication_factor_grows_with_decomposition() {
        let (problem, points) = setup(100, 9);
        let r1 = replication_factor(&problem, &points, Decomp::cubic(1));
        let r4 = replication_factor(&problem, &points, Decomp::cubic(4));
        let r8 = replication_factor(&problem, &points, Decomp::cubic(8));
        assert_eq!(r1, 1.0);
        assert!(r4 > 1.0);
        assert!(r8 >= r4, "finer decomposition must not reduce replication");
    }

    #[test]
    fn timings_include_bin_phase() {
        let (problem, points) = setup(20, 10);
        let (_, t) = run::<f64, _>(&problem, &Epanechnikov, &points, Decomp::cubic(4), 2).unwrap();
        // bin phase executed (may be fast but is measured).
        assert!(t.bin.as_nanos() > 0);
    }
}
