//! The parallel STKDE algorithms (paper §4–5).
//!
//! Two families:
//!
//! * **Domain-based** (§4): [`dr`] replicates the grid per thread
//!   (pleasingly parallel, `Θ(P·G)` memory); [`dd`] decomposes the grid
//!   into subdomains and replicates boundary *points* instead (extra work
//!   from cut cylinders, Figure 9).
//! * **Point-based** (§5): [`pd`] partitions the *points* by subdomain and
//!   phases execution through the 8 parity classes; [`pd_sched`] replaces
//!   the phases with a load-aware coloring and true dependency-driven
//!   execution; [`pd_rep`] additionally replicates critical-path
//!   subdomains into private buffers (moldable tasks).
//!
//! All of them compute bit-for-bit the same density field as the
//! sequential algorithms up to floating-point summation order; the
//! integration tests in the workspace root verify this, and additionally
//! run the disjoint-write audits that justify the `unsafe` shared-grid
//! writes.

pub mod dd;
pub mod dr;
pub mod pd;
pub mod pd_rep;
pub mod pd_sched;

use crate::error::StkdeError;

/// A rayon pool handle with exactly `threads` workers.
///
/// Cheap to call per run: the rayon shim keeps one persistent named
/// worker set per thread count, so after the first request for a given
/// `threads` this is a map lookup — estimation paths no longer pay
/// thread-spawn latency on every invocation, and `install` pins the whole
/// computation (splitting, stealing, ambient `current_num_threads`) to
/// that worker set.
pub(crate) fn make_pool(threads: usize) -> Result<rayon::ThreadPool, StkdeError> {
    if threads == 0 {
        return Err(StkdeError::InvalidConfig("threads must be > 0".into()));
    }
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| StkdeError::InvalidConfig(format!("failed to build thread pool: {e}")))
}

/// Split `len` items into `parts` contiguous chunks; returns the
/// `[start, end)` bounds of chunk `i`.
#[inline]
pub(crate) fn chunk_bounds(len: usize, parts: usize, i: usize) -> (usize, usize) {
    let chunk = len.div_ceil(parts.max(1));
    let start = (i * chunk).min(len);
    let end = ((i + 1) * chunk).min(len);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_cover_all() {
        for len in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let mut total = 0;
                let mut prev_end = 0;
                for i in 0..parts {
                    let (s, e) = chunk_bounds(len, parts, i);
                    assert!(s <= e);
                    assert_eq!(s, prev_end.min(s.max(prev_end)));
                    total += e - s;
                    prev_end = e;
                }
                assert_eq!(total, len, "len={len} parts={parts}");
            }
        }
    }

    #[test]
    fn pool_zero_threads_rejected() {
        assert!(matches!(make_pool(0), Err(StkdeError::InvalidConfig(_))));
    }

    #[test]
    fn pool_has_requested_threads() {
        let pool = make_pool(3).unwrap();
        assert_eq!(pool.current_num_threads(), 3);
    }
}
