//! The shared description of one STKDE computation.

use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, VoxelBandwidth};

/// Everything an STKDE algorithm needs besides the points themselves:
/// the discretized domain, the bandwidths in both spaces, and the
/// normalization constant `1/(n·hs²·ht)`.
#[derive(Debug, Clone, Copy)]
pub struct Problem {
    /// The discretized computation domain.
    pub domain: Domain,
    /// World-space bandwidths.
    pub bw: Bandwidth,
    /// Voxel-space bandwidths (`Hs = ⌈hs/sres⌉`, `Ht = ⌈ht/tres⌉`).
    pub vbw: VoxelBandwidth,
    /// `1/(n·hs²·ht)`; zero when there are no points (the estimate is
    /// identically zero then, avoiding a division by zero).
    pub norm: f64,
    /// Number of events.
    pub n: usize,
}

impl Problem {
    /// Assemble a problem description.
    pub fn new(domain: Domain, bw: Bandwidth, n: usize) -> Self {
        let vbw = domain.voxel_bandwidth(bw);
        let norm = if n == 0 { 0.0 } else { bw.normalization(n) };
        Self {
            domain,
            bw,
            vbw,
            norm,
            n,
        }
    }

    /// Normalized spatial offsets `(u, v)` of a voxel center relative to a
    /// point.
    #[inline(always)]
    pub fn uv(&self, cx: f64, cy: f64, p: &Point) -> (f64, f64) {
        ((cx - p.x) / self.bw.hs, (cy - p.y) / self.bw.hs)
    }

    /// Normalized temporal offset `w` of a voxel center relative to a
    /// point.
    #[inline(always)]
    pub fn w(&self, ct: f64, p: &Point) -> f64 {
        (ct - p.t) / self.bw.ht
    }

    /// Estimated kernel work in voxel updates, `n · (2Hs+1)²(2Ht+1)`.
    pub fn compute_cost(&self) -> f64 {
        self.n as f64 * self.vbw.cylinder_box_volume() as f64
    }

    /// Estimated initialization work in voxel writes, `Gx·Gy·Gt`.
    pub fn init_cost(&self) -> f64 {
        self.domain.dims().volume() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::GridDims;

    fn problem(n: usize) -> Problem {
        Problem::new(
            Domain::from_dims(GridDims::new(20, 20, 10)),
            Bandwidth::new(2.0, 1.0),
            n,
        )
    }

    #[test]
    fn norm_matches_formula() {
        let p = problem(10);
        assert!((p.norm - 1.0 / (10.0 * 4.0 * 1.0)).abs() < 1e-15);
        assert_eq!(p.vbw, VoxelBandwidth::new(2, 1));
    }

    #[test]
    fn zero_points_zero_norm() {
        assert_eq!(problem(0).norm, 0.0);
    }

    #[test]
    fn offsets() {
        let pr = problem(1);
        let p = Point::new(10.0, 10.0, 5.0);
        let (u, v) = pr.uv(11.0, 9.0, &p);
        assert!((u - 0.5).abs() < 1e-15);
        assert!((v + 0.5).abs() < 1e-15);
        assert!((pr.w(5.5, &p) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn costs() {
        let p = problem(10);
        assert_eq!(p.compute_cost(), 10.0 * 25.0 * 3.0);
        assert_eq!(p.init_cost(), 4000.0);
    }
}
