//! The per-point scatter engine shared by every point-based algorithm.
//!
//! Each function scatters one event's density cylinder into the grid,
//! restricted to a clip range (the full grid for undecomposed algorithms,
//! a subdomain for `PB-SYM-DD`). The four variants mirror the paper's §3:
//!
//! | function | spatial kernel evaluated | temporal kernel evaluated |
//! |---|---|---|
//! | [`apply_point_pb`]   | per voxel | per voxel |
//! | [`apply_point_disk`] | once per (X, Y) | once per T-plane |
//! | [`apply_point_bar`]  | per voxel | once per T |
//! | [`apply_point_sym`]  | once per (X, Y) | once per T |
//!
//! # The scatter engine
//!
//! The hoisted variants share one engine built from three observations:
//!
//! 1. **Separable geometry.** The normalized offsets `u`, `v`, `w` each
//!    depend on a single axis, so the engine precomputes per-axis tables
//!    `u[X]`, `v[Y]`, `w[T]` once per point ([`Scratch::fill_axes`]) —
//!    `O(W+H+T)` work instead of the `O(W·H)` per-voxel `voxel_center`/
//!    `uv` calls a naive rasterizer pays.
//! 2. **Span clipping.** The spatial support is the open unit disk, so
//!    each Y-row's nonzero X-span (its *chord*) follows analytically from
//!    `u² + v² < 1` ([`Scratch::fill_chords`]). Iterating only the chord
//!    skips the ≈21% of the bounding box that is guaranteed zero and
//!    shrinks the written region. Chords are widened by one voxel per
//!    side so float rounding can never drop an in-support voxel; the
//!    extra entries evaluate to kernel value 0 and add exact zeros.
//! 3. **Native-scalar invariants.** The disk `Ks[X][Y]` (normalization
//!    folded in) and bar `Kt[T]` are converted to the grid scalar `S`
//!    once per point, so the inner loop is a pure
//!    `row[X] += Ks[X] · Kt` over stride-1 memory
//!    ([`stkde_grid::axpy_row`]) with no `f64 → S` conversion per
//!    element — the conversion that otherwise blocks `f32`
//!    autovectorization.
//!
//! All writes go through [`SharedGrid`]; the **safety contract** is that
//! the caller holds exclusive access to the clipped cylinder region
//! (single-threaded use, disjoint subdomains, or stencil-scheduled
//! subdomains — see `stkde_grid::shared`). The safe entry points
//! ([`apply_points_seq`], [`apply_points_seq_with`]) wrap an exclusive
//! `&mut Grid3`.

use crate::problem::Problem;
use stkde_data::Point;
use stkde_grid::{axpy_row, Grid3, Scalar, SharedGrid, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// One Y-row's nonzero X-span inside the write region: voxels
/// `x ∈ [x0, x1)` with the packed disk values starting at `off`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Chord {
    /// Inclusive start (absolute grid X).
    pub(crate) x0: u32,
    /// Exclusive end (absolute grid X).
    pub(crate) x1: u32,
    /// Start of this row's values in the packed disk buffer.
    pub(crate) off: u32,
}

impl Chord {
    #[inline(always)]
    pub(crate) fn is_empty(&self) -> bool {
        self.x0 >= self.x1
    }

    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        (self.x1 - self.x0) as usize
    }
}

/// Reusable per-worker buffers holding one point's precomputed scatter
/// state: axis offset tables, per-row chords, and the kernel invariants in
/// the grid's native scalar. Reusing one `Scratch` across points (and
/// batches — see [`apply_points_seq_with`]) keeps the hot path free of
/// heap allocation.
#[derive(Debug, Default, Clone)]
pub struct Scratch<S = f64> {
    /// `u[X - r.x0] = (cx − px)/hs` — spatial offset along X.
    pub(crate) u: Vec<f64>,
    /// `v[Y - r.y0] = (cy − py)/hs` — spatial offset along Y.
    pub(crate) v: Vec<f64>,
    /// `w[T - r.t0] = (ct − pt)/ht` — temporal offset along T.
    pub(crate) w: Vec<f64>,
    /// Per-Y-row nonzero X-spans.
    pub(crate) chords: Vec<Chord>,
    /// Packed chord values `Ks · norm`, native scalar.
    pub(crate) disk: Vec<S>,
    /// Temporal invariant `Kt[T]` (f64 — used for exact zero tests).
    pub(crate) bar: Vec<f64>,
    /// The nonzero planes of the bar as `(absolute T, Kt)` pairs, `Kt`
    /// converted to the native scalar once per point. Zero planes are
    /// dropped here so the scatter loop never branches on them.
    pub(crate) planes: Vec<(u32, S)>,
}

impl<S: Scalar> Scratch<S> {
    /// Fill the per-axis offset tables for point `p` over region `r` —
    /// `O(W+H+T)` geometry replacing per-voxel `voxel_center` calls.
    ///
    /// The expressions mirror [`Problem::uv`] / [`Problem::w`] exactly, so
    /// table entries are bitwise identical to the per-voxel evaluation.
    pub(crate) fn fill_axes(&mut self, problem: &Problem, p: &Point, r: VoxelRange) {
        let domain = &problem.domain;
        let (hs, ht) = (problem.bw.hs, problem.bw.ht);
        self.u.clear();
        self.u
            .extend((r.x0..r.x1).map(|x| (domain.voxel_center(x, 0, 0)[0] - p.x) / hs));
        self.v.clear();
        self.v
            .extend((r.y0..r.y1).map(|y| (domain.voxel_center(0, y, 0)[1] - p.y) / hs));
        self.w.clear();
        self.w
            .extend((r.t0..r.t1).map(|t| (domain.voxel_center(0, 0, t)[2] - p.t) / ht));
    }

    /// Compute each Y-row's chord `[x0, x1)` from the unit-disk support:
    /// the in-support voxels of row `y` satisfy `u(x)² + v(y)² < 1`, and
    /// `u` is affine in `x`, so the bounds are two closed-form divisions.
    /// Bounds are widened by up to a voxel per side (floor/ceil) so float
    /// rounding can only add guaranteed-zero entries, never drop support.
    ///
    /// Requires [`fill_axes`](Self::fill_axes) for the `v` table.
    pub(crate) fn fill_chords(&mut self, problem: &Problem, p: &Point, r: VoxelRange) {
        // u(x) crosses ±umax at x = center ± umax·hs/sres.
        let center = problem.domain.frac_voxel_x(p.x);
        let hs_vox = problem.bw.hs / problem.domain.resolution().sres;
        self.chords.clear();
        for &v in &self.v {
            let d = 1.0 - v * v;
            if d <= 0.0 {
                // Whole row is outside the disk (u² + v² ≥ 1 for any u).
                self.chords.push(Chord::default());
                continue;
            }
            let half = d.sqrt() * hs_vox;
            let lo = (center - half).floor();
            let hi = (center + half).ceil();
            let x0 = if lo <= r.x0 as f64 { r.x0 } else { lo as usize };
            let x1 = if hi + 1.0 >= r.x1 as f64 {
                r.x1
            } else {
                hi as usize + 1
            };
            self.chords.push(Chord {
                x0: x0 as u32,
                x1: x1.max(x0) as u32,
                off: 0,
            });
        }
    }

    /// Evaluate the spatial invariant `Ks · norm` over the chords into the
    /// packed `disk` buffer (native scalar, converted once per entry here
    /// rather than once per voxel update in the T loop).
    ///
    /// Requires [`fill_axes`](Self::fill_axes) and
    /// [`fill_chords`](Self::fill_chords).
    pub(crate) fn fill_disk<K: SpaceTimeKernel>(&mut self, kernel: &K, r: VoxelRange, norm: f64) {
        let Self {
            u, v, chords, disk, ..
        } = self;
        disk.clear();
        for (c, &vv) in chords.iter_mut().zip(v.iter()) {
            c.off = disk.len() as u32;
            if c.is_empty() {
                continue;
            }
            let urow = &u[c.x0 as usize - r.x0..c.x1 as usize - r.x0];
            disk.extend(
                urow.iter()
                    .map(|&uu| S::from_f64(kernel.spatial(uu, vv) * norm)),
            );
        }
    }

    /// Evaluate the temporal invariant `Kt[T]`, keeping the `f64` values
    /// (for exact zero tests) and the packed nonzero-plane list with the
    /// native-scalar conversion.
    ///
    /// Requires [`fill_axes`](Self::fill_axes).
    pub(crate) fn fill_bar<K: SpaceTimeKernel>(&mut self, kernel: &K) {
        let Self { w, bar, .. } = self;
        bar.clear();
        bar.extend(w.iter().map(|&ww| kernel.temporal(ww)));
    }

    /// Pack the nonzero planes of the bar as `(absolute T, Kt)` pairs in
    /// the native scalar — the form [`scatter_rows`] consumes. Separate
    /// from [`fill_bar`](Self::fill_bar) because consumers that do their
    /// own T loop in `f64` (the sparse backend) only need the bar.
    pub(crate) fn fill_planes(&mut self, r: VoxelRange) {
        let Self { bar, planes, .. } = self;
        planes.clear();
        planes.extend(
            bar.iter()
                .enumerate()
                .filter(|&(_, &kt)| kt != 0.0)
                .map(|(ti, &kt)| ((r.t0 + ti) as u32, S::from_f64(kt))),
        );
    }

    /// Prepare the full `PB-SYM` state (axes, chords, disk, bar) for one
    /// point over region `r`.
    pub(crate) fn prepare_sym<K: SpaceTimeKernel>(
        &mut self,
        problem: &Problem,
        kernel: &K,
        p: &Point,
        r: VoxelRange,
    ) {
        self.fill_axes(problem, p, r);
        self.fill_chords(problem, p, r);
        self.fill_disk(kernel, r, problem.norm);
        self.fill_bar(kernel);
        self.fill_planes(r);
    }
}

/// Which §3 evaluation strategy to use for a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKernel {
    /// `PB`: evaluate both kernels at every voxel.
    Plain,
    /// `PB-DISK`: hoist the spatial invariant.
    Disk,
    /// `PB-BAR`: hoist the temporal invariant.
    Bar,
    /// `PB-SYM`: hoist both invariants.
    Sym,
}

/// The clipped cylinder region a point writes to.
#[inline]
pub(crate) fn write_region(problem: &Problem, p: &Point, clip: VoxelRange) -> VoxelRange {
    let v = problem.domain.voxel_of(p.as_array());
    problem
        .domain
        .cylinder_range(v, problem.vbw)
        .intersect(clip)
}

/// The engine's outer-product loop: for every nonempty chord row, axpy
/// the row's packed disk slice onto each nonzero `(T, Kt)` plane. The Y
/// loop is outermost so a chord's `Ks` values are loaded once and reused
/// across all `2Ht+1` planes. `t_off` re-hosts the loop onto a slab
/// buffer whose layer `l` holds global layer `t_off + l` (0 for a full
/// grid — see `distmem::apply`).
///
/// # Safety
/// The caller must hold exclusive access to the chords' voxels on the
/// given planes (shifted by `t_off`) of `grid`, and the chords/planes
/// must be in-bounds for `grid`.
pub(crate) unsafe fn scatter_rows<S: Scalar>(
    grid: &SharedGrid<'_, S>,
    t_off: usize,
    r: VoxelRange,
    chords: &[Chord],
    disk: &[S],
    planes: &[(u32, S)],
) {
    for (yi, y) in (r.y0..r.y1).enumerate() {
        let c = chords[yi];
        if c.is_empty() {
            continue;
        }
        let ks = &disk[c.off as usize..c.off as usize + c.len()];
        for &(t, kt) in planes {
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t as usize - t_off, c.x0 as usize, c.x1 as usize) };
            axpy_row(row, ks, kt);
        }
    }
}

/// `PB` (Algorithm 2): test and evaluate both kernel factors per voxel.
/// This is the engine's naive reference; only the axis-table geometry is
/// shared, the kernel work is deliberately per-voxel.
///
/// # Safety
/// The caller must hold exclusive access to `p`'s clipped cylinder region
/// of `grid` (see module docs).
pub unsafe fn apply_point_pb<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    scratch.fill_axes(problem, p, r);
    let norm = problem.norm;
    for (ti, t) in (r.t0..r.t1).enumerate() {
        let w = scratch.w[ti];
        for (yi, y) in (r.y0..r.y1).enumerate() {
            let v = scratch.v[yi];
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, r.x0, r.x1) };
            for (out, &u) in row.iter_mut().zip(&scratch.u) {
                // kernel.eval is zero outside the support, which is exactly
                // the paper's `d < hs && |dt| <= ht` membership test.
                let val = kernel.eval(u, v, w);
                if val != 0.0 {
                    *out += S::from_f64(val * norm);
                }
            }
        }
    }
}

/// `PB-DISK`: spatial invariant `Ks[X][Y]` computed once; the temporal
/// factor is evaluated per T-plane (`w` is constant across a plane, so
/// per-voxel re-evaluation would repeat the same call `W·H` times).
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point_disk<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    scratch.fill_axes(problem, p, r);
    scratch.fill_chords(problem, p, r);
    scratch.fill_disk(kernel, r, problem.norm);
    let Scratch {
        w, chords, disk, ..
    } = scratch;
    for (ti, t) in (r.t0..r.t1).enumerate() {
        // Temporal factor evaluated once per plane — `w` is constant
        // across a plane, so the old per-voxel evaluation repeated the
        // same call `W·H` times. PB-SYM's bar table removes even the
        // per-plane re-evaluation.
        let kt = kernel.temporal(w[ti]);
        if kt == 0.0 {
            continue;
        }
        let kt_s = S::from_f64(kt);
        for (yi, y) in (r.y0..r.y1).enumerate() {
            let c = chords[yi];
            if c.is_empty() {
                continue;
            }
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, c.x0 as usize, c.x1 as usize) };
            axpy_row(row, &disk[c.off as usize..c.off as usize + c.len()], kt_s);
        }
    }
}

/// `PB-BAR`: temporal invariant `Kt[T]` computed once, spatial factor
/// still evaluated per voxel (over the chords only — voxels outside the
/// disk contribute exactly zero).
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point_bar<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    scratch.fill_axes(problem, p, r);
    scratch.fill_chords(problem, p, r);
    scratch.fill_bar(kernel);
    let norm = problem.norm;
    for (ti, t) in (r.t0..r.t1).enumerate() {
        let kt = scratch.bar[ti];
        if kt == 0.0 {
            continue;
        }
        for (yi, y) in (r.y0..r.y1).enumerate() {
            let c = scratch.chords[yi];
            if c.is_empty() {
                continue;
            }
            let v = scratch.v[yi];
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, c.x0 as usize, c.x1 as usize) };
            for (i, out) in row.iter_mut().enumerate() {
                let u = scratch.u[c.x0 as usize - r.x0 + i];
                let ks = kernel.spatial(u, v);
                if ks != 0.0 {
                    *out += S::from_f64(ks * kt * norm);
                }
            }
        }
    }
}

/// `PB-SYM` (Algorithm 3): both invariants hoisted; the triple loop is a
/// pure outer product `stkde[X][Y][T] += Ks[X][Y] · Kt[T]`, executed by
/// the engine as chord-clipped [`axpy_row`] calls in the native scalar.
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point_sym<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    scratch.prepare_sym(problem, kernel, p, r);
    #[cfg(feature = "obs")]
    tally::sym_scatter(&scratch.chords, scratch.planes.len());
    let Scratch {
        chords,
        disk,
        planes,
        ..
    } = scratch;
    // SAFETY: forwarded from the caller contract.
    unsafe {
        scatter_rows(grid, 0, r, chords, disk, planes);
    }
}

/// Dispatch one point through the chosen evaluation strategy.
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point<S: Scalar, K: SpaceTimeKernel>(
    which: PointKernel,
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    #[cfg(feature = "obs")]
    tally::point(write_region(problem, p, clip));
    // SAFETY: forwarded from the caller contract.
    unsafe {
        match which {
            PointKernel::Plain => apply_point_pb(grid, problem, kernel, p, clip, scratch),
            PointKernel::Disk => apply_point_disk(grid, problem, kernel, p, clip, scratch),
            PointKernel::Bar => apply_point_bar(grid, problem, kernel, p, clip, scratch),
            PointKernel::Sym => apply_point_sym(grid, problem, kernel, p, clip, scratch),
        }
    }
}

/// Scatter-engine tallies (`obs` feature only): counters behind the
/// paper's skipped-zero argument — voxels the PB-SYM engine actually
/// writes vs the clipped bounding boxes a naive scatter would visit.
/// Handles are cached per call site, so steady state is one `Relaxed`
/// `fetch_add` per counter per point.
#[cfg(feature = "obs")]
mod tally {
    use super::{Chord, VoxelRange};
    use stkde_obs::names;

    pub(super) fn point(r: VoxelRange) {
        stkde_obs::counter!(names::SCATTER_POINTS).inc();
        stkde_obs::counter!(names::SCATTER_BOX_VOXELS).add(r.volume() as u64);
    }

    pub(super) fn sym_scatter(chords: &[Chord], planes: usize) {
        let mut rows = 0u64;
        let mut chord_voxels = 0u64;
        for c in chords {
            if !c.is_empty() {
                rows += 1;
                chord_voxels += c.len() as u64;
            }
        }
        stkde_obs::counter!(names::SCATTER_CHORD_ROWS).add(rows);
        stkde_obs::counter!(names::SCATTER_VOXELS_WRITTEN).add(chord_voxels * planes as u64);
    }
}

/// Safe sequential driver: scatter `points` into an exclusively borrowed
/// grid using the chosen strategy, clipped to `clip`.
///
/// Allocates a fresh [`Scratch`] per call; long-lived callers (server
/// ingest, streaming windows) should hold one and use
/// [`apply_points_seq_with`] instead.
pub fn apply_points_seq<S: Scalar, K: SpaceTimeKernel>(
    which: PointKernel,
    grid: &mut Grid3<S>,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    clip: VoxelRange,
) {
    apply_points_seq_with(
        which,
        grid,
        problem,
        kernel,
        points,
        clip,
        &mut Scratch::default(),
    );
}

/// [`apply_points_seq`] with caller-provided scratch buffers, so repeated
/// batches reuse one allocation instead of churning per call.
pub fn apply_points_seq_with<S: Scalar, K: SpaceTimeKernel>(
    which: PointKernel,
    grid: &mut Grid3<S>,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    clip: VoxelRange,
    scratch: &mut Scratch<S>,
) {
    let shared = SharedGrid::new(grid);
    for p in points {
        // SAFETY: `grid` is exclusively borrowed and this loop is the only
        // writer — trivially race-free.
        unsafe {
            apply_point(which, &shared, problem, kernel, p, clip, scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup() -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(24, 24, 12));
        let points = vec![
            Point::new(12.0, 12.0, 6.0),
            Point::new(2.0, 3.0, 1.0),    // near corner: tests clipping
            Point::new(23.5, 23.5, 11.5), // at far corner
        ];
        (
            Problem::new(domain, Bandwidth::new(3.0, 2.0), points.len()),
            points,
        )
    }

    fn run(which: PointKernel) -> Grid3<f64> {
        let (problem, points) = setup();
        let mut grid = Grid3::zeros(problem.domain.dims());
        let clip = VoxelRange::full(problem.domain.dims());
        apply_points_seq(which, &mut grid, &problem, &Epanechnikov, &points, clip);
        grid
    }

    #[test]
    fn all_strategies_agree() {
        let base = run(PointKernel::Plain);
        for which in [PointKernel::Disk, PointKernel::Bar, PointKernel::Sym] {
            let g = run(which);
            assert!(
                base.max_rel_diff(&g, 1e-14) < 1e-10,
                "{which:?} diverges from PB"
            );
        }
    }

    #[test]
    fn chords_cover_the_support_exactly() {
        // Every voxel with nonzero spatial kernel value must lie inside
        // its row's chord; the widened boundary entries must all be zero.
        let (problem, points) = setup();
        let r = VoxelRange::full(problem.domain.dims());
        let mut scratch: Scratch<f64> = Scratch::default();
        for p in &points {
            let r = write_region(&problem, p, r);
            scratch.fill_axes(&problem, p, r);
            scratch.fill_chords(&problem, p, r);
            for (yi, y) in (r.y0..r.y1).enumerate() {
                let c = scratch.chords[yi];
                let cy = problem.domain.voxel_center(0, y, 0)[1];
                for x in r.x0..r.x1 {
                    let cx = problem.domain.voxel_center(x, 0, 0)[0];
                    let (u, v) = problem.uv(cx, cy, p);
                    let ks = Epanechnikov.spatial(u, v);
                    let inside = (x as u32) >= c.x0 && (x as u32) < c.x1;
                    assert!(
                        inside || ks == 0.0,
                        "nonzero voxel ({x},{y}) outside chord {c:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_idempotent() {
        // The same scratch driven through different strategies and points
        // must not leak state between uses.
        let (problem, points) = setup();
        let clip = VoxelRange::full(problem.domain.dims());
        let mut fresh: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut fresh,
            &problem,
            &Epanechnikov,
            &points,
            clip,
        );
        let mut reused: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        let mut scratch = Scratch::default();
        // Warm the scratch with other strategies first.
        let mut warmup: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        for which in [PointKernel::Plain, PointKernel::Bar, PointKernel::Disk] {
            apply_points_seq_with(
                which,
                &mut warmup,
                &problem,
                &Epanechnikov,
                &points,
                clip,
                &mut scratch,
            );
        }
        apply_points_seq_with(
            PointKernel::Sym,
            &mut reused,
            &problem,
            &Epanechnikov,
            &points,
            clip,
            &mut scratch,
        );
        assert_eq!(fresh, reused);
    }

    #[test]
    fn density_positive_near_point_zero_far() {
        let g = run(PointKernel::Sym);
        assert!(g.get(12, 12, 6) > 0.0);
        assert!(g.get(12, 12, 0) == 0.0, "outside temporal bandwidth");
        assert!(g.get(0, 12, 6) == 0.0, "outside spatial bandwidth");
    }

    #[test]
    fn total_mass_close_to_one() {
        // With a normalized kernel fully inside the grid, the discrete sum
        // times the voxel volume approximates 1/n per point.
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let problem = Problem::new(domain, Bandwidth::new(6.0, 4.0), 1);
        let points = vec![Point::new(20.0, 20.0, 10.0)];
        let mut grid: Grid3<f64> = Grid3::zeros(domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut grid,
            &problem,
            &Epanechnikov,
            &points,
            VoxelRange::full(domain.dims()),
        );
        let mass: f64 = grid.as_slice().iter().sum();
        assert!(
            (mass - 1.0).abs() < 0.05,
            "discrete mass {mass} should approximate 1"
        );
    }

    #[test]
    fn clipping_restricts_writes() {
        let (problem, points) = setup();
        let mut grid: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        let clip = VoxelRange {
            x0: 0,
            x1: 12,
            y0: 0,
            y1: 24,
            t0: 0,
            t1: 12,
        };
        apply_points_seq(
            PointKernel::Sym,
            &mut grid,
            &problem,
            &Epanechnikov,
            &points,
            clip,
        );
        for (x, y, t) in grid.dims().iter() {
            if !clip.contains(x, y, t) {
                assert_eq!(
                    grid.get(x, y, t),
                    0.0,
                    "write outside clip at ({x},{y},{t})"
                );
            }
        }
    }

    #[test]
    fn split_clips_sum_to_whole() {
        // Applying with two complementary clips equals one full application
        // — the core correctness fact behind PB-SYM-DD.
        let (problem, points) = setup();
        let dims = problem.domain.dims();
        let full = {
            let mut g: Grid3<f64> = Grid3::zeros(dims);
            apply_points_seq(
                PointKernel::Sym,
                &mut g,
                &problem,
                &Epanechnikov,
                &points,
                VoxelRange::full(dims),
            );
            g
        };
        let mut left: Grid3<f64> = Grid3::zeros(dims);
        let mut clip_l = VoxelRange::full(dims);
        clip_l.x1 = 13;
        let mut clip_r = VoxelRange::full(dims);
        clip_r.x0 = 13;
        apply_points_seq(
            PointKernel::Sym,
            &mut left,
            &problem,
            &Epanechnikov,
            &points,
            clip_l,
        );
        apply_points_seq(
            PointKernel::Sym,
            &mut left,
            &problem,
            &Epanechnikov,
            &points,
            clip_r,
        );
        assert!(full.max_rel_diff(&left, 1e-14) < 1e-10);
    }

    #[test]
    fn empty_clip_writes_nothing() {
        let (problem, points) = setup();
        let mut grid: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut grid,
            &problem,
            &Epanechnikov,
            &points,
            VoxelRange::empty(),
        );
        assert!(grid.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_points_is_noop() {
        let (problem, _) = setup();
        let mut grid: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        apply_points_seq(
            PointKernel::Plain,
            &mut grid,
            &problem,
            &Epanechnikov,
            &[],
            VoxelRange::full(problem.domain.dims()),
        );
        assert!(grid.as_slice().iter().all(|&v| v == 0.0));
    }
}
