//! The per-point rasterization kernels shared by every point-based
//! algorithm.
//!
//! Each function scatters one event's density cylinder into the grid,
//! restricted to a clip range (the full grid for undecomposed algorithms,
//! a subdomain for `PB-SYM-DD`). The four variants mirror the paper's §3:
//!
//! | function | spatial kernel evaluated | temporal kernel evaluated |
//! |---|---|---|
//! | [`apply_point_pb`]   | per voxel | per voxel |
//! | [`apply_point_disk`] | once per (X, Y) | per voxel |
//! | [`apply_point_bar`]  | per voxel | once per T |
//! | [`apply_point_sym`]  | once per (X, Y) | once per T |
//!
//! All writes go through [`SharedGrid`]; the **safety contract** is that
//! the caller holds exclusive access to the clipped cylinder region
//! (single-threaded use, disjoint subdomains, or stencil-scheduled
//! subdomains — see `stkde_grid::shared`). The safe entry points
//! ([`apply_points_seq`]) wrap an exclusive `&mut Grid3`.

use crate::problem::Problem;
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar, SharedGrid, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Reusable per-worker scratch buffers for the kernel invariants
/// (avoids a heap allocation per point).
#[derive(Debug, Default, Clone)]
pub struct Scratch {
    disk: Vec<f64>,
    bar: Vec<f64>,
}

/// Which §3 evaluation strategy to use for a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKernel {
    /// `PB`: evaluate both kernels at every voxel.
    Plain,
    /// `PB-DISK`: hoist the spatial invariant.
    Disk,
    /// `PB-BAR`: hoist the temporal invariant.
    Bar,
    /// `PB-SYM`: hoist both invariants.
    Sym,
}

/// The clipped cylinder region a point writes to.
#[inline]
pub(crate) fn write_region(problem: &Problem, p: &Point, clip: VoxelRange) -> VoxelRange {
    let v = problem.domain.voxel_of(p.as_array());
    problem
        .domain
        .cylinder_range(v, problem.vbw)
        .intersect(clip)
}

/// `PB` (Algorithm 2): test and evaluate both kernel factors per voxel.
///
/// # Safety
/// The caller must hold exclusive access to `p`'s clipped cylinder region
/// of `grid` (see module docs).
pub unsafe fn apply_point_pb<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    let norm = problem.norm;
    for t in r.t0..r.t1 {
        let ct = problem.domain.voxel_center(0, 0, t)[2];
        let w = problem.w(ct, p);
        for y in r.y0..r.y1 {
            let cy = problem.domain.voxel_center(0, y, 0)[1];
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, r.x0, r.x1) };
            for (i, out) in row.iter_mut().enumerate() {
                let cx = problem.domain.voxel_center(r.x0 + i, 0, 0)[0];
                let (u, v) = problem.uv(cx, cy, p);
                // kernel.eval is zero outside the support, which is exactly
                // the paper's `d < hs && |dt| <= ht` membership test.
                let val = kernel.eval(u, v, w);
                if val != 0.0 {
                    *out += S::from_f64(val * norm);
                }
            }
        }
    }
}

/// `PB-DISK`: spatial invariant `Ks[X][Y]` computed once, temporal factor
/// still evaluated per voxel.
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point_disk<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    fill_disk(problem, kernel, p, r, &mut scratch.disk);
    let width = r.width_x();
    for t in r.t0..r.t1 {
        let ct = problem.domain.voxel_center(0, 0, t)[2];
        let w = problem.w(ct, p);
        for (yi, y) in (r.y0..r.y1).enumerate() {
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, r.x0, r.x1) };
            let disk_row = &scratch.disk[yi * width..(yi + 1) * width];
            for (out, &ks) in row.iter_mut().zip(disk_row) {
                if ks != 0.0 {
                    // Temporal factor evaluated per voxel — the cost PB-SYM
                    // later removes.
                    let val = ks * kernel.temporal(w);
                    *out += S::from_f64(val);
                }
            }
        }
    }
}

/// `PB-BAR`: temporal invariant `Kt[T]` computed once, spatial factor still
/// evaluated per voxel.
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point_bar<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    fill_bar(problem, kernel, p, r, &mut scratch.bar);
    let norm = problem.norm;
    for (ti, t) in (r.t0..r.t1).enumerate() {
        let kt = scratch.bar[ti];
        if kt == 0.0 {
            continue;
        }
        for y in r.y0..r.y1 {
            let cy = problem.domain.voxel_center(0, y, 0)[1];
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, r.x0, r.x1) };
            for (i, out) in row.iter_mut().enumerate() {
                let cx = problem.domain.voxel_center(r.x0 + i, 0, 0)[0];
                let (u, v) = problem.uv(cx, cy, p);
                let ks = kernel.spatial(u, v);
                if ks != 0.0 {
                    *out += S::from_f64(ks * kt * norm);
                }
            }
        }
    }
}

/// `PB-SYM` (Algorithm 3): both invariants hoisted; the triple loop is a
/// pure outer product `stkde[X][Y][T] += Ks[X][Y] · Kt[T]`.
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point_sym<S: Scalar, K: SpaceTimeKernel>(
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch,
) {
    let r = write_region(problem, p, clip);
    if r.is_empty() {
        return;
    }
    fill_disk(problem, kernel, p, r, &mut scratch.disk);
    fill_bar(problem, kernel, p, r, &mut scratch.bar);
    let width = r.width_x();
    for (ti, t) in (r.t0..r.t1).enumerate() {
        let kt = scratch.bar[ti];
        if kt == 0.0 {
            continue;
        }
        for (yi, y) in (r.y0..r.y1).enumerate() {
            // SAFETY: forwarded from the caller contract.
            let row = unsafe { grid.row_mut(y, t, r.x0, r.x1) };
            let disk_row = &scratch.disk[yi * width..(yi + 1) * width];
            // Stride-1 fused multiply-add over the X row.
            for (out, &ks) in row.iter_mut().zip(disk_row) {
                *out += S::from_f64(ks * kt);
            }
        }
    }
}

/// Dispatch one point through the chosen evaluation strategy.
///
/// # Safety
/// Same contract as [`apply_point_pb`].
pub unsafe fn apply_point<S: Scalar, K: SpaceTimeKernel>(
    which: PointKernel,
    grid: &SharedGrid<'_, S>,
    problem: &Problem,
    kernel: &K,
    p: &Point,
    clip: VoxelRange,
    scratch: &mut Scratch,
) {
    // SAFETY: forwarded from the caller contract.
    unsafe {
        match which {
            PointKernel::Plain => apply_point_pb(grid, problem, kernel, p, clip),
            PointKernel::Disk => apply_point_disk(grid, problem, kernel, p, clip, scratch),
            PointKernel::Bar => apply_point_bar(grid, problem, kernel, p, clip, scratch),
            PointKernel::Sym => apply_point_sym(grid, problem, kernel, p, clip, scratch),
        }
    }
}

/// Safe sequential driver: scatter `points` into an exclusively borrowed
/// grid using the chosen strategy, clipped to `clip`.
pub fn apply_points_seq<S: Scalar, K: SpaceTimeKernel>(
    which: PointKernel,
    grid: &mut Grid3<S>,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    clip: VoxelRange,
) {
    let shared = SharedGrid::new(grid);
    let mut scratch = Scratch::default();
    for p in points {
        // SAFETY: `grid` is exclusively borrowed and this loop is the only
        // writer — trivially race-free.
        unsafe {
            apply_point(which, &shared, problem, kernel, p, clip, &mut scratch);
        }
    }
}

/// The spatial invariant `Ks[X][Y] = ks(u, v) / (n·hs²·ht)` over the clip
/// region (paper Algorithm 3, first block). The normalization is folded in
/// here, as in the paper.
pub(crate) fn fill_disk<K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    p: &Point,
    r: VoxelRange,
    disk: &mut Vec<f64>,
) {
    disk.clear();
    disk.reserve(r.width_x() * r.width_y());
    let norm = problem.norm;
    for y in r.y0..r.y1 {
        let cy = problem.domain.voxel_center(0, y, 0)[1];
        for x in r.x0..r.x1 {
            let cx = problem.domain.voxel_center(x, 0, 0)[0];
            let (u, v) = problem.uv(cx, cy, p);
            disk.push(kernel.spatial(u, v) * norm);
        }
    }
}

/// The temporal invariant `Kt[T] = kt(w)` over the clip region
/// (paper Algorithm 3, second block).
pub(crate) fn fill_bar<K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    p: &Point,
    r: VoxelRange,
    bar: &mut Vec<f64>,
) {
    bar.clear();
    bar.reserve(r.width_t());
    for t in r.t0..r.t1 {
        let ct = problem.domain.voxel_center(0, 0, t)[2];
        bar.push(kernel.temporal(problem.w(ct, p)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn setup() -> (Problem, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(24, 24, 12));
        let points = vec![
            Point::new(12.0, 12.0, 6.0),
            Point::new(2.0, 3.0, 1.0),    // near corner: tests clipping
            Point::new(23.5, 23.5, 11.5), // at far corner
        ];
        (
            Problem::new(domain, Bandwidth::new(3.0, 2.0), points.len()),
            points,
        )
    }

    fn run(which: PointKernel) -> Grid3<f64> {
        let (problem, points) = setup();
        let mut grid = Grid3::zeros(problem.domain.dims());
        let clip = VoxelRange::full(problem.domain.dims());
        apply_points_seq(which, &mut grid, &problem, &Epanechnikov, &points, clip);
        grid
    }

    #[test]
    fn all_strategies_agree() {
        let base = run(PointKernel::Plain);
        for which in [PointKernel::Disk, PointKernel::Bar, PointKernel::Sym] {
            let g = run(which);
            assert!(
                base.max_rel_diff(&g, 1e-14) < 1e-10,
                "{which:?} diverges from PB"
            );
        }
    }

    #[test]
    fn density_positive_near_point_zero_far() {
        let g = run(PointKernel::Sym);
        assert!(g.get(12, 12, 6) > 0.0);
        assert!(g.get(12, 12, 0) == 0.0, "outside temporal bandwidth");
        assert!(g.get(0, 12, 6) == 0.0, "outside spatial bandwidth");
    }

    #[test]
    fn total_mass_close_to_one() {
        // With a normalized kernel fully inside the grid, the discrete sum
        // times the voxel volume approximates 1/n per point.
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let problem = Problem::new(domain, Bandwidth::new(6.0, 4.0), 1);
        let points = vec![Point::new(20.0, 20.0, 10.0)];
        let mut grid: Grid3<f64> = Grid3::zeros(domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut grid,
            &problem,
            &Epanechnikov,
            &points,
            VoxelRange::full(domain.dims()),
        );
        let mass: f64 = grid.as_slice().iter().sum();
        assert!(
            (mass - 1.0).abs() < 0.05,
            "discrete mass {mass} should approximate 1"
        );
    }

    #[test]
    fn clipping_restricts_writes() {
        let (problem, points) = setup();
        let mut grid: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        let clip = VoxelRange {
            x0: 0,
            x1: 12,
            y0: 0,
            y1: 24,
            t0: 0,
            t1: 12,
        };
        apply_points_seq(
            PointKernel::Sym,
            &mut grid,
            &problem,
            &Epanechnikov,
            &points,
            clip,
        );
        for (x, y, t) in grid.dims().iter() {
            if !clip.contains(x, y, t) {
                assert_eq!(
                    grid.get(x, y, t),
                    0.0,
                    "write outside clip at ({x},{y},{t})"
                );
            }
        }
    }

    #[test]
    fn split_clips_sum_to_whole() {
        // Applying with two complementary clips equals one full application
        // — the core correctness fact behind PB-SYM-DD.
        let (problem, points) = setup();
        let dims = problem.domain.dims();
        let full = {
            let mut g: Grid3<f64> = Grid3::zeros(dims);
            apply_points_seq(
                PointKernel::Sym,
                &mut g,
                &problem,
                &Epanechnikov,
                &points,
                VoxelRange::full(dims),
            );
            g
        };
        let mut left: Grid3<f64> = Grid3::zeros(dims);
        let mut clip_l = VoxelRange::full(dims);
        clip_l.x1 = 13;
        let mut clip_r = VoxelRange::full(dims);
        clip_r.x0 = 13;
        apply_points_seq(
            PointKernel::Sym,
            &mut left,
            &problem,
            &Epanechnikov,
            &points,
            clip_l,
        );
        apply_points_seq(
            PointKernel::Sym,
            &mut left,
            &problem,
            &Epanechnikov,
            &points,
            clip_r,
        );
        assert!(full.max_rel_diff(&left, 1e-14) < 1e-10);
    }

    #[test]
    fn empty_clip_writes_nothing() {
        let (problem, points) = setup();
        let mut grid: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut grid,
            &problem,
            &Epanechnikov,
            &points,
            VoxelRange::empty(),
        );
        assert!(grid.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_points_is_noop() {
        let (problem, _) = setup();
        let mut grid: Grid3<f64> = Grid3::zeros(problem.domain.dims());
        apply_points_seq(
            PointKernel::Plain,
            &mut grid,
            &problem,
            &Epanechnikov,
            &[],
            VoxelRange::full(problem.domain.dims()),
        );
        assert!(grid.as_slice().iter().all(|&v| v == 0.0));
    }
}
