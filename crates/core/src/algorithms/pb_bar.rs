//! `PB-BAR` — point-based with the temporal invariant hoisted (paper §3.2).
//!
//! The temporal factor `Kt[T]` does not depend on `(X, Y)`, so it is
//! computed once per time layer instead of once per voxel. Complementary to
//! `PB-DISK`; the bar is only `2Ht+1` long while the disk has `(2Hs+1)²`
//! entries, which is why the paper finds PB-BAR's gain more modest.

use crate::kernel_apply::PointKernel;
use crate::problem::Problem;
use crate::timing::PhaseTimings;
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB-BAR`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    super::pb::run_with(PointKernel::Bar, problem, kernel, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    #[test]
    fn matches_pb() {
        let domain = Domain::from_dims(GridDims::new(12, 16, 10));
        let problem = Problem::new(domain, Bandwidth::new(2.0, 3.0), 15);
        let points = synth::uniform(15, domain.extent(), 4).into_vec();
        let (bar, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let (pb, _) = super::super::pb::run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(pb.max_rel_diff(&bar, 1e-14) < 1e-10);
    }
}
