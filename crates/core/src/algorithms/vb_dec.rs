//! `VB-DEC` — voxel-based with point blocking (paper §6.2).
//!
//! The paper's improved voxel-based baseline: points are partitioned into
//! blocks of size equal to the bandwidth, so each voxel only computes
//! distances against points in the 3×3×3 neighborhood of blocks that could
//! possibly reach it. Still voxel-driven (and unable to exploit the kernel
//! symmetries), but one to two orders of magnitude faster than plain `VB`
//! (Table 3).

use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar};
use stkde_kernels::SpaceTimeKernel;

/// Run `VB-DEC`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    let mut sw = Stopwatch::start();
    let dims = problem.domain.dims();
    let mut grid = Grid3::zeros_touched(dims);
    let init = sw.lap();

    // Block sizes equal the voxel bandwidths (min 1): any point affecting a
    // voxel lies in the voxel's own block or an adjacent one.
    let bs = problem.vbw.hs.max(1);
    let bt = problem.vbw.ht.max(1);
    let nbx = dims.gx.div_ceil(bs);
    let nby = dims.gy.div_ceil(bs);
    let nbt = dims.gt.div_ceil(bt);
    let block_of = |x: usize, y: usize, t: usize| (x / bs, y / bs, t / bt);
    let block_idx = |bx: usize, by: usize, bz: usize| (bz * nby + by) * nbx + bx;

    let mut blocks: Vec<Vec<u32>> = vec![Vec::new(); nbx * nby * nbt];
    for (i, p) in points.iter().enumerate() {
        let (x, y, t) = problem.domain.voxel_of(p.as_array());
        let (bx, by, bz) = block_of(x, y, t);
        blocks[block_idx(bx, by, bz)].push(i as u32);
    }
    let bin = sw.lap();

    let norm = problem.norm;
    let mut candidates: Vec<u32> = Vec::new();
    // Iterate voxels block by block so the candidate gather happens once
    // per block instead of once per voxel.
    for bz in 0..nbt {
        for by in 0..nby {
            for bx in 0..nbx {
                candidates.clear();
                for nz in bz.saturating_sub(1)..(bz + 2).min(nbt) {
                    for ny in by.saturating_sub(1)..(by + 2).min(nby) {
                        for nx in bx.saturating_sub(1)..(bx + 2).min(nbx) {
                            candidates.extend_from_slice(&blocks[block_idx(nx, ny, nz)]);
                        }
                    }
                }
                if candidates.is_empty() {
                    continue;
                }
                let (x0, x1) = (bx * bs, ((bx + 1) * bs).min(dims.gx));
                let (y0, y1) = (by * bs, ((by + 1) * bs).min(dims.gy));
                let (t0, t1) = (bz * bt, ((bz + 1) * bt).min(dims.gt));
                for t in t0..t1 {
                    let ct = problem.domain.voxel_center(0, 0, t)[2];
                    for y in y0..y1 {
                        let cy = problem.domain.voxel_center(0, y, 0)[1];
                        for x in x0..x1 {
                            let cx = problem.domain.voxel_center(x, 0, 0)[0];
                            let mut sum = 0.0;
                            for &pi in &candidates {
                                let p = &points[pi as usize];
                                let (u, v) = problem.uv(cx, cy, p);
                                let w = problem.w(ct, p);
                                sum += kernel.eval(u, v, w);
                            }
                            if sum != 0.0 {
                                *grid.get_mut(x, y, t) = S::from_f64(sum * norm);
                            }
                        }
                    }
                }
            }
        }
    }
    let compute = sw.lap();
    (
        grid,
        PhaseTimings {
            init,
            bin,
            compute,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    #[test]
    fn matches_vb_on_random_points() {
        let domain = Domain::from_dims(GridDims::new(17, 13, 9));
        let problem = Problem::new(domain, Bandwidth::new(2.5, 1.5), 30);
        let points = synth::uniform(30, domain.extent(), 9).into_vec();
        let (dec, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let (vb, _) = super::super::vb::run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(vb.max_rel_diff(&dec, 1e-14) < 1e-10);
    }

    #[test]
    fn block_coverage_when_bandwidth_exceeds_grid() {
        // Bandwidth larger than the whole grid: a single block, and every
        // voxel sees the point.
        let domain = Domain::from_dims(GridDims::new(5, 5, 5));
        let problem = Problem::new(domain, Bandwidth::new(50.0, 50.0), 1);
        let points = [stkde_data::Point::new(2.5, 2.5, 2.5)];
        let (g, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(g.as_slice().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn empty_regions_skipped_cheaply() {
        let domain = Domain::from_dims(GridDims::new(30, 30, 10));
        let problem = Problem::new(domain, Bandwidth::new(1.0, 1.0), 1);
        let points = [stkde_data::Point::new(0.5, 0.5, 0.5)];
        let (g, timings) = run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(g.get(0, 0, 0) > 0.0);
        assert!(g.get(29, 29, 9) == 0.0);
        assert!(timings.bin.as_nanos() > 0 || timings.bin.is_zero());
    }
}
