//! The sequential STKDE algorithms (paper §2–3).
//!
//! All take a [`Problem`](crate::Problem), a kernel, and a point slice, and
//! return the density grid plus a phase-timing breakdown. Each module's
//! `run` matches the pseudocode of the corresponding paper algorithm.

pub mod pb;
pub mod pb_bar;
pub mod pb_disk;
pub mod pb_sym;
pub mod vb;
pub mod vb_dec;

#[cfg(test)]
mod equivalence_tests {
    //! The central correctness invariant of the repository: every algorithm
    //! computes the same density field as the gold-standard `VB`.

    use crate::problem::Problem;
    use proptest::prelude::*;
    use stkde_data::{synth, Point};
    use stkde_grid::{Bandwidth, Domain, Grid3, GridDims};
    use stkde_kernels::{Epanechnikov, PaperLiteral, TruncatedGaussian};

    fn random_problem(seed: u64, n: usize) -> (Problem, Vec<Point>) {
        let dims = GridDims::new(
            8 + (seed % 13) as usize,
            8 + (seed % 7) as usize,
            4 + (seed % 5) as usize,
        );
        let domain = Domain::from_dims(dims);
        let bw = Bandwidth::new(1.0 + (seed % 4) as f64, 1.0 + (seed % 3) as f64);
        let points = synth::uniform(n, domain.extent(), seed).into_vec();
        (Problem::new(domain, bw, n), points)
    }

    fn all_grids(problem: &Problem, points: &[Point]) -> Vec<(&'static str, Grid3<f64>)> {
        let k = Epanechnikov;
        vec![
            ("VB", super::vb::run(problem, &k, points).0),
            ("VB-DEC", super::vb_dec::run(problem, &k, points).0),
            ("PB", super::pb::run(problem, &k, points).0),
            ("PB-DISK", super::pb_disk::run(problem, &k, points).0),
            ("PB-BAR", super::pb_bar::run(problem, &k, points).0),
            ("PB-SYM", super::pb_sym::run(problem, &k, points).0),
        ]
    }

    #[test]
    fn all_sequential_algorithms_agree_small() {
        let (problem, points) = random_problem(3, 25);
        let grids = all_grids(&problem, &points);
        let (_, vb) = &grids[0];
        for (name, g) in &grids[1..] {
            let diff = vb.max_rel_diff(g, 1e-14);
            assert!(diff < 1e-9, "{name} differs from VB by {diff}");
        }
    }

    #[test]
    fn agreement_with_other_kernels() {
        let (problem, points) = random_problem(11, 12);
        for (kname, grid_pair) in [
            ("paper-literal", {
                let k = PaperLiteral;
                (
                    super::vb::run::<f64, _>(&problem, &k, &points).0,
                    super::pb_sym::run::<f64, _>(&problem, &k, &points).0,
                )
            }),
            ("gaussian", {
                let k = TruncatedGaussian::default();
                (
                    super::vb::run::<f64, _>(&problem, &k, &points).0,
                    super::pb_sym::run::<f64, _>(&problem, &k, &points).0,
                )
            }),
        ] {
            let diff = grid_pair.0.max_rel_diff(&grid_pair.1, 1e-14);
            assert!(diff < 1e-9, "{kname}: PB-SYM differs from VB by {diff}");
        }
    }

    #[test]
    fn empty_points_all_zero() {
        let (problem, _) = random_problem(5, 0);
        for (name, g) in all_grids(&problem, &[]) {
            assert!(
                g.as_slice().iter().all(|&v| v == 0.0),
                "{name} non-zero for empty input"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_equivalence(seed in 0u64..1000, n in 1usize..40) {
            let (problem, points) = random_problem(seed, n);
            let grids = all_grids(&problem, &points);
            let (_, vb) = &grids[0];
            for (name, g) in &grids[1..] {
                let diff = vb.max_rel_diff(g, 1e-13);
                prop_assert!(diff < 1e-8, "{} differs from VB by {}", name, diff);
            }
        }
    }
}
