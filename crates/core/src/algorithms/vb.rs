//! `VB` — the voxel-based gold standard (paper Algorithm 1).
//!
//! For every voxel, scan *all* points, test the cylinder membership
//! (`d < hs`, `|Δt| ≤ ht`), and sum the kernel contributions. Complexity
//! `Θ(Gx·Gy·Gt·n)` — orders of magnitude slower than the point-based
//! algorithms (Table 3), but the semantics are the definition itself, which
//! is why every other algorithm is validated against it.

use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar};
use stkde_kernels::SpaceTimeKernel;

/// Run `VB`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    let mut sw = Stopwatch::start();
    let dims = problem.domain.dims();
    let mut grid = Grid3::zeros_touched(dims);
    let init = sw.lap();

    let norm = problem.norm;
    for t in 0..dims.gt {
        let ct = problem.domain.voxel_center(0, 0, t)[2];
        for y in 0..dims.gy {
            let cy = problem.domain.voxel_center(0, y, 0)[1];
            for x in 0..dims.gx {
                let cx = problem.domain.voxel_center(x, 0, 0)[0];
                let mut sum = 0.0;
                for p in points {
                    let (u, v) = problem.uv(cx, cy, p);
                    let w = problem.w(ct, p);
                    // kernel.eval vanishes outside the support, realizing
                    // the `d < hs && |Δt| <= ht` test of Algorithm 1.
                    sum += kernel.eval(u, v, w);
                }
                if sum != 0.0 {
                    *grid.get_mut(x, y, t) = S::from_f64(sum * norm);
                }
            }
        }
    }
    let compute = sw.lap();
    (
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    fn problem() -> Problem {
        Problem::new(
            Domain::from_dims(GridDims::new(10, 10, 6)),
            Bandwidth::new(2.0, 1.5),
            1,
        )
    }

    #[test]
    fn single_point_peak_at_its_voxel() {
        let problem = problem();
        let points = [Point::new(5.5, 5.5, 3.5)];
        let (g, t) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let peak = g.get(5, 5, 3);
        assert!(peak > 0.0);
        for (x, y, tt) in g.dims().iter() {
            assert!(g.get(x, y, tt) <= peak + 1e-15);
        }
        assert!(t.total().as_nanos() > 0);
    }

    #[test]
    fn support_is_respected() {
        let problem = problem();
        let points = [Point::new(5.5, 5.5, 3.5)];
        let (g, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        // Voxel centers farther than hs in space or ht in time are zero.
        assert_eq!(g.get(0, 5, 3), 0.0); // 5 voxels away > hs = 2
        assert_eq!(g.get(5, 5, 0), 0.0); // 3 voxels away > ht = 1.5
    }

    #[test]
    fn two_identical_points_double_density() {
        let problem1 = problem();
        let p1 = [Point::new(5.5, 5.5, 3.5)];
        let (g1, _) = run::<f64, _>(&problem1, &Epanechnikov, &p1);
        let problem2 = Problem::new(problem1.domain, problem1.bw, 2);
        let p2 = [Point::new(5.5, 5.5, 3.5), Point::new(5.5, 5.5, 3.5)];
        let (g2, _) = run::<f64, _>(&problem2, &Epanechnikov, &p2);
        // Two coincident points with n=2 normalization give the same
        // density as one point with n=1.
        assert!(g1.max_abs_diff(&g2) < 1e-12);
    }
}
