//! `PB-SYM` — point-based with both invariants hoisted (paper Algorithm 3).
//!
//! The paper's best sequential algorithm: per point, compute the spatial
//! disk `Ks[X][Y]` and temporal bar `Kt[T]` once each, then fill the
//! cylinder with the outer product `Ks[X][Y] · Kt[T]` — a pure multiply-add
//! over stride-1 rows. Same `Θ(Gx·Gy·Gt + n·Hs²·Ht)` complexity as `PB`,
//! but up to ~7× fewer flops (Table 3: speedup 6.97 on PollenUS Hr-Hb).
//!
//! This exploitation of separability is impossible for voxel-based
//! algorithms, and is the foundation every parallel variant builds on.

use crate::kernel_apply::PointKernel;
use crate::problem::Problem;
use crate::timing::PhaseTimings;
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB-SYM`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    super::pb::run_with(PointKernel::Sym, problem, kernel, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::{Epanechnikov, Quartic};

    #[test]
    fn matches_pb() {
        let domain = Domain::from_dims(GridDims::new(16, 12, 8));
        let problem = Problem::new(domain, Bandwidth::new(3.0, 2.0), 25);
        let points = synth::uniform(25, domain.extent(), 6).into_vec();
        let (sym, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let (pb, _) = super::super::pb::run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(pb.max_rel_diff(&sym, 1e-14) < 1e-10);
    }

    #[test]
    fn works_with_f32_grids() {
        // Paper parity: 4-byte voxels (Table 2 sizes are at 4 B/voxel).
        let domain = Domain::from_dims(GridDims::new(16, 12, 8));
        let problem = Problem::new(domain, Bandwidth::new(3.0, 2.0), 10);
        let points = synth::uniform(10, domain.extent(), 7).into_vec();
        let (g32, _) = run::<f32, _>(&problem, &Epanechnikov, &points);
        let (g64, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let diff = g64
            .as_slice()
            .iter()
            .zip(g32.as_slice())
            .map(|(&a, &b)| (a - b as f64).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-6, "f32 deviates too much: {diff}");
    }

    #[test]
    fn separable_extension_kernel_works() {
        let domain = Domain::from_dims(GridDims::new(12, 12, 6));
        let problem = Problem::new(domain, Bandwidth::new(2.0, 1.0), 5);
        let points = synth::uniform(5, domain.extent(), 8).into_vec();
        let (sym, _) = run::<f64, _>(&problem, &Quartic, &points);
        let (vb, _) = super::super::vb::run::<f64, _>(&problem, &Quartic, &points);
        assert!(vb.max_rel_diff(&sym, 1e-14) < 1e-10);
    }
}
