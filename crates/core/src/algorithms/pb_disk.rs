//! `PB-DISK` — point-based with the spatial invariant hoisted (paper §3.2).
//!
//! The spatial factor `Ks[X][Y]` of a point's contribution does not depend
//! on `T`, so it is computed once per point instead of once per voxel. The
//! temporal factor is still evaluated per voxel; `PB-SYM` removes that too.

use crate::kernel_apply::PointKernel;
use crate::problem::Problem;
use crate::timing::PhaseTimings;
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB-DISK`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    super::pb::run_with(PointKernel::Disk, problem, kernel, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::synth;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    #[test]
    fn matches_pb() {
        let domain = Domain::from_dims(GridDims::new(14, 14, 8));
        let problem = Problem::new(domain, Bandwidth::new(3.0, 2.0), 20);
        let points = synth::uniform(20, domain.extent(), 2).into_vec();
        let (disk, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        let (pb, _) = super::super::pb::run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(pb.max_rel_diff(&disk, 1e-14) < 1e-10);
    }
}
