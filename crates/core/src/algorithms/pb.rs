//! `PB` — the point-based algorithm (paper Algorithm 2, §3.1).
//!
//! Instead of asking "which points affect this voxel?", each point scatters
//! its own density cylinder: complexity drops from `Θ(Gx·Gy·Gt·n)` to
//! `Θ(Gx·Gy·Gt + n·Hs²·Ht)` — initialization plus per-point work, the two
//! terms whose balance drives everything in the paper's evaluation.

use crate::kernel_apply::{apply_points_seq, PointKernel};
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use stkde_data::Point;
use stkde_grid::{Grid3, Scalar, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Run `PB`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    run_with(PointKernel::Plain, problem, kernel, points)
}

/// Shared driver for the four sequential point-based variants.
pub(crate) fn run_with<S: Scalar, K: SpaceTimeKernel>(
    which: PointKernel,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) -> (Grid3<S>, PhaseTimings) {
    let mut sw = Stopwatch::start();
    let dims = problem.domain.dims();
    let mut grid = Grid3::zeros_touched(dims);
    let init = sw.lap();
    apply_points_seq(
        which,
        &mut grid,
        problem,
        kernel,
        points,
        VoxelRange::full(dims),
    );
    let compute = sw.lap();
    (
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::{Bandwidth, Domain, GridDims};
    use stkde_kernels::Epanechnikov;

    #[test]
    fn boundary_points_are_clipped_not_dropped() {
        let domain = Domain::from_dims(GridDims::new(10, 10, 10));
        let problem = Problem::new(domain, Bandwidth::new(3.0, 3.0), 1);
        // A point in the corner voxel: its cylinder extends outside the
        // grid and must be clipped.
        let points = [Point::new(0.1, 0.1, 0.1)];
        let (g, _) = run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(g.get(0, 0, 0) > 0.0);
        let mass: f64 = g.as_slice().iter().sum();
        // Clipping discards roughly 7/8 of the cylinder.
        assert!(mass < 0.6, "clipped mass should be well below 1: {mass}");
        assert!(mass > 0.0);
    }

    #[test]
    fn density_sums_points_independently() {
        let domain = Domain::from_dims(GridDims::new(20, 10, 10));
        let problem = Problem::new(domain, Bandwidth::new(2.0, 2.0), 2);
        let p1 = Point::new(5.0, 5.0, 5.0);
        let p2 = Point::new(15.0, 5.0, 5.0);
        let (both, _) = run::<f64, _>(&problem, &Epanechnikov, &[p1, p2]);
        let (only1, _) = run::<f64, _>(&problem, &Epanechnikov, &[p1]);
        let (only2, _) = run::<f64, _>(&problem, &Epanechnikov, &[p2]);
        // With the same n=2 normalization, densities superpose.
        let mut sum = only1.clone();
        for (o, (&a, &b)) in sum
            .as_mut_slice()
            .iter_mut()
            .zip(only1.as_slice().iter().zip(only2.as_slice()))
        {
            *o = a + b;
        }
        // only1/only2 were computed with norm 1/(2·hs²·ht) via problem.n=2.
        assert!(both.max_abs_diff(&sum) < 1e-12);
    }
}
