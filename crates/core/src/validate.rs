//! Cross-algorithm validation helpers.

use stkde_grid::{Grid3, Scalar};

/// The outcome of comparing two grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Maximum absolute voxel difference.
    pub max_abs: f64,
    /// Maximum relative voxel difference (with absolute floor `atol`).
    pub max_rel: f64,
}

/// Compare two grids; `atol` is the absolute floor below which differences
/// are ignored in the relative metric.
pub fn compare<S: Scalar>(a: &Grid3<S>, b: &Grid3<S>, atol: f64) -> Comparison {
    Comparison {
        max_abs: a.max_abs_diff(b),
        max_rel: a.max_rel_diff(b, atol),
    }
}

/// `true` if the grids agree within `rtol` (relative, with `atol` floor) —
/// the acceptance criterion used by the integration tests and the
/// benchmark harnesses' self-checks.
pub fn grids_agree<S: Scalar>(a: &Grid3<S>, b: &Grid3<S>, rtol: f64, atol: f64) -> bool {
    compare(a, b, atol).max_rel <= rtol
}

/// Suggested tolerances per scalar type: floating-point summation order
/// differs across algorithms/thread counts, so exact equality is not
/// expected.
pub fn default_tolerance<S: Scalar>() -> (f64, f64) {
    if std::mem::size_of::<S>() == 4 {
        (1e-3, 1e-9) // f32: kernel sums of ~1e3 terms
    } else {
        (1e-9, 1e-14) // f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::GridDims;

    #[test]
    fn identical_grids_agree() {
        let mut a: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        a.add(1, 1, 1, 0.5);
        let b = a.clone();
        assert!(grids_agree(&a, &b, 1e-12, 1e-15));
        let c = compare(&a, &b, 1e-15);
        assert_eq!(c.max_abs, 0.0);
    }

    #[test]
    fn detects_disagreement() {
        let mut a: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        let mut b: Grid3<f64> = Grid3::zeros(GridDims::new(4, 4, 4));
        a.add(0, 0, 0, 1.0);
        b.add(0, 0, 0, 1.1);
        assert!(!grids_agree(&a, &b, 1e-3, 1e-12));
        assert!(grids_agree(&a, &b, 0.2, 1e-12));
    }

    #[test]
    fn tolerance_depends_on_scalar() {
        let (r32, _) = default_tolerance::<f32>();
        let (r64, _) = default_tolerance::<f64>();
        assert!(r32 > r64);
    }
}
