//! Adaptive-bandwidth STKDE — the extension named in the paper's
//! conclusion (*"a bandwidth that adapts to the density of population of
//! the area is also of interest"*).
//!
//! Instead of one global `(hs, ht)`, every event `i` carries its own
//! bandwidth pair, and the estimate becomes
//!
//! ```text
//! f̂(x,y,t) = 1/n · Σᵢ 1/(hsᵢ²·htᵢ) · ks((x−xi)/hsᵢ, (y−yi)/hsᵢ) · kt((t−ti)/htᵢ)
//! ```
//!
//! Bandwidths are chosen by Silverman's two-stage adaptive rule (Silverman
//! 1986 §5.3, the paper's KDE reference): a *pilot* fixed-bandwidth
//! estimate `f̃` is evaluated at every event, and each event's bandwidth is
//! scaled by `λᵢ = (f̃(xᵢ)/g)^(−α)` with `g` the geometric mean of the
//! pilot densities — dense clusters get sharper kernels, sparse regions
//! get wider ones.
//!
//! Algorithmically everything survives: each point still rasterizes a
//! cylinder (now of its own size), `PB-SYM`'s invariant hoisting still
//! applies per point, and the point-decomposed parallel schedule is safe
//! as long as subdomains are at least twice the **maximum** bandwidth.

use crate::error::StkdeError;
use crate::kernel_apply::{apply_point_sym, Scratch};
use crate::problem::Problem;
use crate::timing::{PhaseTimings, Stopwatch};
use stkde_data::{binning, Point};
use stkde_grid::{
    Bandwidth, Decomp, Decomposition, Domain, Grid3, Scalar, SharedGrid, SubdomainId, VoxelRange,
};
use stkde_kernels::SpaceTimeKernel;
use stkde_sched::{greedy_coloring, order_by_weight_desc, run_dag, StencilGraph, TaskDag};

/// Parameters of Silverman's adaptive rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// Sensitivity exponent `α ∈ [0, 1]` (0 = fixed bandwidth, ½ = the
    /// classic choice).
    pub alpha: f64,
    /// Clamp on the scale factor `λᵢ` (and its reciprocal), keeping
    /// bandwidths within `[h/λmax, h·λmax]`.
    pub lambda_max: f64,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            lambda_max: 4.0,
        }
    }
}

/// Compute per-point bandwidths with Silverman's two-stage rule: a pilot
/// `PB-SYM` pass at the base bandwidth, sampled at each event's voxel.
///
/// Returns one [`Bandwidth`] per point (same order).
pub fn silverman_bandwidths<K: SpaceTimeKernel>(
    domain: &Domain,
    base: Bandwidth,
    kernel: &K,
    points: &[Point],
    params: AdaptiveParams,
) -> Vec<Bandwidth> {
    assert!(
        (0.0..=1.0).contains(&params.alpha),
        "alpha must be in [0, 1]"
    );
    assert!(params.lambda_max >= 1.0, "lambda_max must be >= 1");
    if points.is_empty() {
        return Vec::new();
    }
    // Pilot estimate (fixed bandwidth).
    let problem = Problem::new(*domain, base, points.len());
    let (pilot, _) = crate::algorithms::pb_sym::run::<f64, _>(&problem, kernel, points);

    // Pilot density at each event (floored to avoid log(0) for isolated
    // points sitting in zero voxels of their own making — cannot happen
    // since each point contributes to its own voxel, but stay defensive).
    let f: Vec<f64> = points
        .iter()
        .map(|p| {
            let (x, y, t) = domain.voxel_of(p.as_array());
            pilot.get(x, y, t).max(1e-300)
        })
        .collect();
    let log_gmean = f.iter().map(|v| v.ln()).sum::<f64>() / f.len() as f64;
    let gmean = log_gmean.exp();

    f.iter()
        .map(|&fi| {
            let lambda = (fi / gmean)
                .powf(-params.alpha)
                .clamp(1.0 / params.lambda_max, params.lambda_max);
            Bandwidth::new(base.hs * lambda, base.ht * lambda)
        })
        .collect()
}

/// The largest voxel bandwidth over all points — the safety radius for the
/// adaptive point-decomposed schedule.
fn max_voxel_bandwidth(domain: &Domain, bws: &[Bandwidth]) -> stkde_grid::VoxelBandwidth {
    let mut hs = 1;
    let mut ht = 1;
    for bw in bws {
        let v = domain.voxel_bandwidth(*bw);
        hs = hs.max(v.hs);
        ht = ht.max(v.ht);
    }
    stkde_grid::VoxelBandwidth::new(hs, ht)
}

/// Per-point problem description under a per-point bandwidth: the
/// normalization becomes `1/(n·hsᵢ²·htᵢ)`.
#[inline]
fn point_problem(domain: &Domain, bw: Bandwidth, n: usize) -> Problem {
    Problem::new(*domain, bw, n)
}

/// Sequential adaptive STKDE (`PB-SYM` applied with per-point bandwidths).
///
/// # Panics
/// Panics if `bandwidths.len() != points.len()`.
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    domain: &Domain,
    kernel: &K,
    points: &[Point],
    bandwidths: &[Bandwidth],
) -> (Grid3<S>, PhaseTimings) {
    assert_eq!(
        bandwidths.len(),
        points.len(),
        "one bandwidth per point required"
    );
    let mut sw = Stopwatch::start();
    let dims = domain.dims();
    let mut grid = Grid3::zeros_touched(dims);
    let init = sw.lap();
    {
        let shared = SharedGrid::new(&mut grid);
        let mut scratch = Scratch::default();
        let full = VoxelRange::full(dims);
        let n = points.len();
        for (p, bw) in points.iter().zip(bandwidths) {
            let problem = point_problem(domain, *bw, n);
            // SAFETY: exclusive single-threaded access to `grid`.
            unsafe {
                apply_point_sym(&shared, &problem, kernel, p, full, &mut scratch);
            }
        }
    }
    let compute = sw.lap();
    (
        grid,
        PhaseTimings {
            init,
            compute,
            ..Default::default()
        },
    )
}

/// Parallel adaptive STKDE: the `PD-SCHED` strategy with the subdomain
/// size rule driven by the **maximum** per-point bandwidth.
///
/// # Panics
/// Panics if `bandwidths.len() != points.len()`.
pub fn run_parallel<S: Scalar, K: SpaceTimeKernel>(
    domain: &Domain,
    kernel: &K,
    points: &[Point],
    bandwidths: &[Bandwidth],
    decomp: Decomp,
    threads: usize,
) -> Result<(Grid3<S>, PhaseTimings), StkdeError> {
    assert_eq!(
        bandwidths.len(),
        points.len(),
        "one bandwidth per point required"
    );
    if threads == 0 {
        return Err(StkdeError::InvalidConfig("threads must be > 0".into()));
    }
    let dims = domain.dims();
    let mut sw = Stopwatch::start();

    // Safety radius: subdomains at least twice the *largest* bandwidth.
    let max_vbw = max_voxel_bandwidth(domain, bandwidths);
    let decomposition = Decomposition::adjusted(dims, decomp, max_vbw);
    let bins = binning::bin_points(domain, &decomposition, points);

    // Weights: per-subdomain sum of each point's own cylinder box volume.
    let n = points.len();
    let box_vols: Vec<f64> = bandwidths
        .iter()
        .map(|bw| domain.voxel_bandwidth(*bw).cylinder_box_volume() as f64)
        .collect();
    let weights: Vec<f64> = (0..decomposition.count())
        .map(|sd| {
            bins.points_of(SubdomainId(sd))
                .iter()
                .map(|&pi| box_vols[pi as usize])
                .sum::<f64>()
                + 1.0
        })
        .collect();
    let graph = StencilGraph::from_decomposition(&decomposition);
    let coloring = greedy_coloring(&graph, &order_by_weight_desc(&weights));
    let dag = TaskDag::from_coloring(&graph, &coloring, weights.clone());
    let bin = sw.lap();

    let mut grid = Grid3::zeros_parallel(dims);
    let init = sw.lap();
    {
        let shared = SharedGrid::new(&mut grid);
        let shared = &shared;
        let full = VoxelRange::full(dims);
        run_dag(&dag, threads, &weights, |task| {
            let mut scratch = Scratch::default();
            for &pi in bins.points_of(SubdomainId(task)) {
                let p = &points[pi as usize];
                let problem = point_problem(domain, bandwidths[pi as usize], n);
                // SAFETY: the DAG orders adjacent subdomains, and the
                // decomposition is adjusted to twice the *maximum*
                // bandwidth, so concurrent tasks write disjoint halos even
                // under per-point bandwidths.
                unsafe {
                    apply_point_sym(shared, &problem, kernel, p, full, &mut scratch);
                }
            }
        });
    }
    let compute = sw.lap();
    Ok((
        grid,
        PhaseTimings {
            init,
            bin,
            compute,
            ..Default::default()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_grid::GridDims;
    use stkde_kernels::Epanechnikov;

    fn setup(n: usize) -> (Domain, Vec<Point>) {
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let points = synth::uniform(n, domain.extent(), 3).into_vec();
        (domain, points)
    }

    #[test]
    fn equal_bandwidths_reduce_to_fixed_pb_sym() {
        let (domain, points) = setup(50);
        let bw = Bandwidth::new(3.0, 2.0);
        let bws = vec![bw; points.len()];
        let (adaptive, _) = run::<f64, _>(&domain, &Epanechnikov, &points, &bws);
        let problem = Problem::new(domain, bw, points.len());
        let (fixed, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
        assert!(fixed.max_rel_diff(&adaptive, 1e-14) < 1e-10);
    }

    #[test]
    fn alpha_zero_gives_base_bandwidth() {
        let (domain, points) = setup(30);
        let base = Bandwidth::new(3.0, 2.0);
        let bws = silverman_bandwidths(
            &domain,
            base,
            &Epanechnikov,
            &points,
            AdaptiveParams {
                alpha: 0.0,
                lambda_max: 4.0,
            },
        );
        for bw in bws {
            assert!((bw.hs - base.hs).abs() < 1e-12);
            assert!((bw.ht - base.ht).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_points_get_wider_bandwidths_than_clustered() {
        // 30 points in a tight cluster + 3 isolated points far away.
        let domain = Domain::from_dims(GridDims::new(60, 60, 20));
        let mut pts: Vec<Point> = (0..30)
            .map(|i| {
                Point::new(
                    10.0 + (i % 6) as f64 * 0.3,
                    10.0 + (i / 6) as f64 * 0.3,
                    10.0,
                )
            })
            .collect();
        pts.push(Point::new(50.0, 50.0, 5.0));
        pts.push(Point::new(45.0, 8.0, 15.0));
        pts.push(Point::new(8.0, 50.0, 3.0));
        let base = Bandwidth::new(4.0, 3.0);
        let bws = silverman_bandwidths(
            &domain,
            base,
            &Epanechnikov,
            &pts,
            AdaptiveParams::default(),
        );
        let cluster_mean: f64 = bws[..30].iter().map(|b| b.hs).sum::<f64>() / 30.0;
        let isolated_mean: f64 = bws[30..].iter().map(|b| b.hs).sum::<f64>() / 3.0;
        assert!(
            isolated_mean > 1.5 * cluster_mean,
            "isolated {isolated_mean:.2} should be much wider than clustered {cluster_mean:.2}"
        );
        // Clamps respected.
        for bw in &bws {
            assert!(bw.hs <= base.hs * 4.0 + 1e-9 && bw.hs >= base.hs / 4.0 - 1e-9);
        }
    }

    #[test]
    fn parallel_matches_sequential_adaptive() {
        let (domain, points) = setup(80);
        let base = Bandwidth::new(2.0, 2.0);
        let bws = silverman_bandwidths(
            &domain,
            base,
            &Epanechnikov,
            &points,
            AdaptiveParams::default(),
        );
        let (seq, _) = run::<f64, _>(&domain, &Epanechnikov, &points, &bws);
        for threads in [1, 2, 4] {
            let (par, _) = run_parallel::<f64, _>(
                &domain,
                &Epanechnikov,
                &points,
                &bws,
                Decomp::cubic(6),
                threads,
            )
            .unwrap();
            assert!(
                seq.max_rel_diff(&par, 1e-13) < 1e-9,
                "threads {threads} diverges"
            );
        }
    }

    #[test]
    fn adaptive_mass_is_conserved() {
        // Interior points with normalized kernels: discrete mass ≈ 1.
        let domain = Domain::from_dims(GridDims::new(64, 64, 32));
        let points: Vec<Point> = (0..20)
            .map(|i| {
                Point::new(
                    24.0 + (i % 5) as f64 * 2.0,
                    24.0 + (i / 5) as f64 * 2.0,
                    16.0,
                )
            })
            .collect();
        let bws: Vec<Bandwidth> = (0..20)
            .map(|i| Bandwidth::new(3.0 + (i % 4) as f64, 3.0 + (i % 3) as f64))
            .collect();
        let (g, _) = run::<f64, _>(&domain, &Epanechnikov, &points, &bws);
        let mass: f64 = g.as_slice().iter().sum();
        assert!((mass - 1.0).abs() < 0.05, "mass {mass}");
    }

    #[test]
    fn empty_points_ok() {
        let (domain, _) = setup(0);
        let bws = silverman_bandwidths(
            &domain,
            Bandwidth::new(2.0, 2.0),
            &Epanechnikov,
            &[],
            AdaptiveParams::default(),
        );
        assert!(bws.is_empty());
        let (g, _) = run::<f64, _>(&domain, &Epanechnikov, &[], &bws);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "one bandwidth per point")]
    fn mismatched_lengths_panic() {
        let (domain, points) = setup(5);
        let _ = run::<f64, _>(&domain, &Epanechnikov, &points, &[]);
    }
}
