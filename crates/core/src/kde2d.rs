//! Classical 2-D spatial kernel density estimation — the baseline STKDE
//! extends.
//!
//! §2.1 of the paper introduces STKDE as "a temporal extension of the
//! traditional 2D kernel density estimation [Silverman 1986] which
//! generates density surface ('heatmap')". This module provides that
//! traditional estimator over the same substrates, for two reasons:
//!
//! * downstream users routinely want the plain heatmap next to the
//!   space-time cube (the "collapse time" view of the same events);
//! * it makes the paper's framing executable: the tests pin down the
//!   exact relationship between the 2-D surface and the 3-D cube
//!   (integrating the cube over time with a uniform temporal kernel
//!   recovers the 2-D estimate).
//!
//! The estimator is
//!
//! ```text
//! f̂(x, y) = 1/(n·hs²) · Σ_{i : di < hs} ks((x−xi)/hs, (y−yi)/hs)
//! ```
//!
//! computed point-based with the hoisted disk invariant (the `PB-DISK`
//! idea restricted to two dimensions). The result is returned as a
//! `Gx×Gy×1` [`Grid3`] so every slice/statistics/export helper applies
//! unchanged.

use crate::problem::Problem;
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, Grid3, GridDims, Scalar, VoxelRange};
use stkde_kernels::SpaceTimeKernel;

/// Compute the classical 2-D spatial KDE of `points` over the spatial
/// extent of `domain`, with spatial bandwidth `hs` and the spatial factor
/// of `kernel`.
///
/// Returns a `Gx×Gy×1` grid (time axis collapsed); the temporal
/// coordinates of the events and the domain's temporal discretization are
/// ignored.
///
/// ```
/// use stkde_core::kde2d;
/// use stkde_data::Point;
/// use stkde_grid::{Domain, GridDims};
/// use stkde_kernels::Epanechnikov;
///
/// let domain = Domain::from_dims(GridDims::new(32, 32, 8));
/// let points = [Point::new(16.0, 16.0, 3.0)];
/// let heat = kde2d::run::<f64, _>(&domain, 5.0, &Epanechnikov, &points);
/// assert_eq!(heat.dims(), GridDims::new(32, 32, 1));
/// assert!(heat.get(16, 16, 0) > 0.0);
/// assert_eq!(heat.get(0, 0, 0), 0.0); // outside the bandwidth disk
/// ```
pub fn run<S: Scalar, K: SpaceTimeKernel>(
    domain: &Domain,
    hs: f64,
    kernel: &K,
    points: &[Point],
) -> Grid3<S> {
    let dims3 = domain.dims();
    let dims = GridDims::new(dims3.gx, dims3.gy, 1);
    let mut grid = Grid3::zeros(dims);
    if points.is_empty() {
        return grid;
    }
    // Reuse the 3-D geometry with the time axis neutralized: unit temporal
    // bandwidth, and the 2-D normalization 1/(n·hs²).
    let problem = Problem::new(*domain, Bandwidth::new(hs, 1.0), points.len());
    let norm_2d = 1.0 / (points.len() as f64 * hs * hs);
    let hs_vox = problem.vbw.hs;

    for p in points {
        let (px, py, _) = domain.voxel_of(p.as_array());
        let r = VoxelRange {
            x0: px.saturating_sub(hs_vox),
            x1: (px + hs_vox + 1).min(dims.gx),
            y0: py.saturating_sub(hs_vox),
            y1: (py + hs_vox + 1).min(dims.gy),
            t0: 0,
            t1: 1,
        };
        for y in r.y0..r.y1 {
            let cy = domain.voxel_center(0, y, 0)[1];
            let row = grid.row_mut(y, 0, r.x0, r.x1);
            for (i, out) in row.iter_mut().enumerate() {
                let cx = domain.voxel_center(r.x0 + i, 0, 0)[0];
                let (u, v) = problem.uv(cx, cy, p);
                let ks = kernel.spatial(u, v);
                if ks != 0.0 {
                    *out += S::from_f64(ks * norm_2d);
                }
            }
        }
    }
    grid
}

/// Collapse an STKDE cube to the 2-D surface by summing over time,
/// weighted by the temporal voxel pitch: `Σ_T f̂(x, y, T) · tres`.
///
/// With a temporal kernel that integrates to one, this is the discrete
/// marginalization of the space-time density onto the map plane and
/// approximates [`run`]'s surface (tests pin the relationship).
pub fn collapse_time<S: Scalar>(cube: &Grid3<S>, tres: f64) -> Grid3<S> {
    let dims = cube.dims();
    let flat = GridDims::new(dims.gx, dims.gy, 1);
    let mut out = Grid3::zeros(flat);
    for t in 0..dims.gt {
        let slice = cube.time_slice(t);
        for (o, &v) in out.as_mut_slice().iter_mut().zip(slice) {
            *o += S::from_f64(v.to_f64() * tres);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::pb_sym;
    use stkde_data::synth;
    use stkde_kernels::Epanechnikov;

    fn domain() -> Domain {
        Domain::from_dims(GridDims::new(40, 40, 20))
    }

    #[test]
    fn matches_direct_definition() {
        // Voxel-based reference: evaluate the 2-D estimator definition at
        // every cell.
        let domain = domain();
        let points = synth::uniform(25, domain.extent(), 51).into_vec();
        let hs = 6.0;
        let fast = run::<f64, _>(&domain, hs, &Epanechnikov, &points);
        let norm = 1.0 / (points.len() as f64 * hs * hs);
        for y in 0..40 {
            for x in 0..40 {
                let c = domain.voxel_center(x, y, 0);
                let expect: f64 = points
                    .iter()
                    .map(|p| Epanechnikov.spatial((c[0] - p.x) / hs, (c[1] - p.y) / hs) * norm)
                    .sum();
                let got = fast.get(x, y, 0);
                assert!((got - expect).abs() < 1e-12, "({x},{y}): {got} vs {expect}");
            }
        }
    }

    #[test]
    fn surface_mass_is_approximately_one() {
        // Fully interior kernel: the discrete surface integrates to ~1.
        let domain = domain();
        let points = [Point::new(20.0, 20.0, 10.0)];
        let heat = run::<f64, _>(&domain, 8.0, &Epanechnikov, &points);
        let mass: f64 = heat.as_slice().iter().sum(); // voxel area = 1
        assert!((mass - 1.0).abs() < 0.05, "mass {mass}");
    }

    #[test]
    fn collapsing_the_cube_recovers_the_surface() {
        // ∫ f̂(x,y,t) dt ≈ f̂₂d(x,y) because ∫kt = 1: the executable form
        // of "STKDE is a temporal extension of 2-D KDE" (§2.1).
        let domain = domain();
        let points = synth::uniform(30, domain.extent(), 52).into_vec();
        let hs = 6.0;
        // A temporal bandwidth small enough that no cylinder is clipped in
        // time (events are uniform in [0,20); keep 3 < t < 17).
        let interior: Vec<Point> = points
            .iter()
            .filter(|p| p.t > 3.0 && p.t < 17.0)
            .copied()
            .collect();
        let problem = Problem::new(domain, Bandwidth::new(hs, 3.0), interior.len());
        let (cube, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &interior);
        let collapsed = collapse_time(&cube, 1.0);
        let direct = run::<f64, _>(&domain, hs, &Epanechnikov, &interior);
        // Discretization of the temporal integral costs a few percent.
        let peak = direct.as_slice().iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            collapsed.max_abs_diff(&direct) < 0.07 * peak,
            "collapse diverges: {} vs peak {peak}",
            collapsed.max_abs_diff(&direct)
        );
    }

    #[test]
    fn empty_points_zero_surface() {
        let heat = run::<f64, _>(&domain(), 4.0, &Epanechnikov, &[]);
        assert!(heat.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn boundary_points_are_clipped_not_dropped() {
        let domain = domain();
        let heat = run::<f64, _>(&domain, 5.0, &Epanechnikov, &[Point::new(0.1, 0.1, 0.0)]);
        assert!(heat.get(0, 0, 0) > 0.0);
        let mass: f64 = heat.as_slice().iter().sum();
        assert!(mass < 1.0, "clipped kernel must lose mass: {mass}");
        assert!(mass > 0.1);
    }

    #[test]
    fn works_with_f32() {
        let domain = domain();
        let points = synth::uniform(10, domain.extent(), 53).into_vec();
        let a = run::<f32, _>(&domain, 5.0, &Epanechnikov, &points);
        let b = run::<f64, _>(&domain, 5.0, &Epanechnikov, &points);
        let diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| (x as f64 - y).abs())
            .fold(0.0f64, f64::max);
        assert!(diff < 1e-6);
    }

    #[test]
    fn collapse_time_sums_layers() {
        let mut cube: Grid3<f64> = Grid3::zeros(GridDims::new(2, 2, 3));
        cube.add(0, 0, 0, 1.0);
        cube.add(0, 0, 1, 2.0);
        cube.add(1, 1, 2, 5.0);
        let flat = collapse_time(&cube, 0.5);
        assert_eq!(flat.get(0, 0, 0), 1.5); // (1+2)·0.5
        assert_eq!(flat.get(1, 1, 0), 2.5);
        assert_eq!(flat.get(0, 1, 0), 0.0);
    }
}
