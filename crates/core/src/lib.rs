//! The STKDE algorithms of Saule et al., *Parallel Space-Time Kernel
//! Density Estimation*, ICPP 2017.
//!
//! # The problem
//!
//! Given `n` events `(xi, yi, ti)`, a spatial bandwidth `hs` and temporal
//! bandwidth `ht`, compute on a discretized `Gx×Gy×Gt` voxel grid
//!
//! ```text
//! f̂(x,y,t) = 1/(n·hs²·ht) · Σ_{i : di<hs, |t−ti|≤ht} ks((x−xi)/hs, (y−yi)/hs) · kt((t−ti)/ht)
//! ```
//!
//! # The algorithms
//!
//! Sequential (paper §2–3): [`algorithms::vb`] (gold standard),
//! [`algorithms::vb_dec`], [`algorithms::pb`], [`algorithms::pb_disk`],
//! [`algorithms::pb_bar`], [`algorithms::pb_sym`].
//!
//! Parallel (paper §4–5): [`parallel::dr`] (domain replication),
//! [`parallel::dd`] (domain decomposition), [`parallel::pd`] (phased
//! point decomposition), [`parallel::pd_sched`] (load-aware coloring +
//! DAG execution), [`parallel::pd_rep`] (critical-path replication).
//!
//! # Quick start
//!
//! ```
//! use stkde_core::{Stkde, Algorithm};
//! use stkde_grid::{Domain, GridDims, Bandwidth};
//! use stkde_data::{Point, PointSet};
//!
//! let domain = Domain::from_dims(GridDims::new(32, 32, 16));
//! let points = PointSet::from_vec(vec![Point::new(16.0, 16.0, 8.0)]);
//! let result = Stkde::new(domain, Bandwidth::new(4.0, 2.0))
//!     .algorithm(Algorithm::PbSym)
//!     .compute::<f64>(&points)
//!     .unwrap();
//! assert!(result.grid.get(16, 16, 8) > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod algorithms;
pub mod distmem;
pub mod engine;
pub mod error;
pub mod incremental;
pub mod kde2d;
pub mod kernel_apply;
pub mod model;
pub mod parallel;
pub mod problem;
pub mod sharded;
pub mod sparse;
pub mod timing;
pub mod validate;

pub use engine::{Algorithm, Stkde, StkdeResult};
pub use error::StkdeError;
pub use incremental::{BatchPush, IncrementalStkde, SlidingWindowStkde};
pub use problem::Problem;
pub use sharded::{
    ApproxRange, ApproxSlice, CubeSnapshot, PyramidBuildReport, ShardBatchStats, ShardPlanes,
    ShardedWindowStkde,
};
pub use sparse::SparseResult;
pub use timing::PhaseTimings;
